"""Ablation: compression-level sweep vs single compression levels.

Quorum sweeps every compression level (number of qubits reset) inside each
ensemble group (Fig. 6).  This ablation compares the sweep against using only the
shallowest or only the deepest bottleneck.
"""

from _harness import run_once

from repro.data.registry import load_dataset
from repro.experiments.common import ExperimentSettings, markdown_table, run_quorum
from repro.metrics.classification import evaluate_top_k

SETTINGS = ExperimentSettings(ensemble_groups=40, seed=11)
VARIANTS = {
    "level 1 only": (1,),
    "level 2 only": (2,),
    "sweep (1, 2)": (1, 2),
}


def _sweep():
    results = {}
    for dataset_name in ("breast_cancer", "letter"):
        dataset = load_dataset(dataset_name, seed=SETTINGS.seed)
        per_variant = {}
        for label, levels in VARIANTS.items():
            config = SETTINGS.quorum_config(dataset_name,
                                            compression_levels=levels)
            scores, _ = run_quorum(dataset, config)
            report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
            per_variant[label] = report.f1
        results[dataset_name] = per_variant
    return results


def test_ablation_compression_levels(benchmark):
    results = run_once(benchmark, _sweep)
    print("\n[Ablation] Compression-level sweep vs single levels (F1)\n")
    rows = []
    for dataset_name, per_variant in results.items():
        for label, f1 in per_variant.items():
            rows.append((dataset_name, label, f"{f1:.3f}"))
    print(markdown_table(["Dataset", "Compression", "F1"], rows))

    for dataset_name, per_variant in results.items():
        best_single = max(per_variant["level 1 only"], per_variant["level 2 only"])
        # The multi-level sweep is competitive with the best single level.
        assert per_variant["sweep (1, 2)"] >= best_single - 0.15
