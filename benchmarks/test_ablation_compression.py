"""Ablation: compression-level sweep vs single compression levels.

Quorum sweeps every compression level (number of qubits reset) inside each
ensemble group (Fig. 6).  This ablation compares the sweep against using only the
shallowest or only the deepest bottleneck, and benchmarks the prefix-checkpointed
noisy multi-level walk against the historical per-level walk.
"""

import time

import numpy as np
from _harness import run_once

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.core.ensemble import batch_amplitudes
from repro.core.execution import DensityMatrixEngine
from repro.data.registry import load_dataset
from repro.experiments.common import ExperimentSettings, markdown_table, run_quorum
from repro.metrics.classification import evaluate_top_k
from repro.quantum.backends import FakeBrisbane

SETTINGS = ExperimentSettings(ensemble_groups=40, seed=11)
VARIANTS = {
    "level 1 only": (1,),
    "level 2 only": (2,),
    "sweep (1, 2)": (1, 2),
}


def _sweep():
    results = {}
    for dataset_name in ("breast_cancer", "letter"):
        dataset = load_dataset(dataset_name, seed=SETTINGS.seed)
        per_variant = {}
        for label, levels in VARIANTS.items():
            config = SETTINGS.quorum_config(dataset_name,
                                            compression_levels=levels)
            scores, _ = run_quorum(dataset, config)
            report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
            per_variant[label] = report.f1
        results[dataset_name] = per_variant
    return results


def test_ablation_compression_levels(benchmark):
    results = run_once(benchmark, _sweep)
    print("\n[Ablation] Compression-level sweep vs single levels (F1)\n")
    rows = []
    for dataset_name, per_variant in results.items():
        for label, f1 in per_variant.items():
            rows.append((dataset_name, label, f"{f1:.3f}"))
    print(markdown_table(["Dataset", "Compression", "F1"], rows))

    for dataset_name, per_variant in results.items():
        best_single = max(per_variant["level 1 only"], per_variant["level 2 only"])
        # The multi-level sweep is competitive with the best single level.
        assert per_variant["sweep (1, 2)"] >= best_single - 0.15


def _noisy_sweep_timings():
    """Compiled vs checkpointed vs per-level noisy sweep on one 7-qubit member.

    32 samples x 4 compression levels under the Brisbane-like noise model with
    gate-level state preparation -- the exact shape of one noisy ensemble
    member's compression sweep.  Three generations of the same computation:

    * per-level: the original walk, re-simulating the full circuit per level;
    * checkpointed: the PR 3 walk -- shared prefix evolved once, the suffix
      interpreted gate by gate per level (``compile_circuits=False``);
    * compiled: the current default -- shared prefix runs execute as fused
      operators and each level's suffix is one cached Heisenberg-picture
      observable, i.e. a single batched matmul against the checkpoint.
    """
    ansatz = RandomAutoencoderAnsatz(3, seed=5)
    rng = np.random.default_rng(0)
    amplitudes = batch_amplitudes(
        rng.uniform(0.0, 1.0 / np.sqrt(7), size=(32, 7)), 3
    )
    levels = (0, 1, 2, 3)
    noise = FakeBrisbane(7).to_noise_model()
    compiled_engine = DensityMatrixEngine(shots=None, noise_model=noise,
                                          gate_level_encoding=True)
    interpreted_engine = DensityMatrixEngine(shots=None, noise_model=noise,
                                             gate_level_encoding=True,
                                             compile_circuits=False)

    compiled_seconds = checkpointed_seconds = per_level_seconds = float("inf")
    for _ in range(2):  # best-of-two damps scheduler jitter on shared CI hosts
        start = time.perf_counter()
        compiled = compiled_engine.p1_levels_batch(amplitudes, ansatz, levels)
        compiled_seconds = min(compiled_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        checkpointed = interpreted_engine.p1_levels_batch(amplitudes, ansatz,
                                                          levels)
        checkpointed_seconds = min(checkpointed_seconds,
                                   time.perf_counter() - start)
        start = time.perf_counter()
        per_level = np.stack([
            interpreted_engine.p1_batch_circuit_level(amplitudes, ansatz, level)
            for level in levels
        ])
        per_level_seconds = min(per_level_seconds, time.perf_counter() - start)

    reference = np.stack([
        interpreted_engine.p1_per_sample_circuit_level(amplitudes, ansatz, level)
        for level in levels
    ])
    return {
        "compiled_seconds": compiled_seconds,
        "checkpointed_seconds": checkpointed_seconds,
        "per_level_seconds": per_level_seconds,
        "per_level_error": float(np.max(np.abs(checkpointed - per_level))),
        "reference_error": float(np.max(np.abs(checkpointed - reference))),
        "compiled_error": float(np.max(np.abs(compiled - reference))),
    }


def test_noisy_checkpointed_sweep_beats_per_level_walk(benchmark, request):
    results = run_once(benchmark, _noisy_sweep_timings)
    checkpoint_speedup = (results["per_level_seconds"]
                          / results["checkpointed_seconds"])
    compile_speedup = (results["checkpointed_seconds"]
                       / results["compiled_seconds"])
    print("\n[Ablation] Noisy level sweep "
          "(32 samples x 4 levels, Brisbane noise)\n")
    print(markdown_table(
        ["Walk", "Seconds", "Max error vs per-sample reference"],
        [("per-level", f"{results['per_level_seconds']:.3f}", "--"),
         ("checkpointed", f"{results['checkpointed_seconds']:.3f}",
          f"{results['reference_error']:.2e}"),
         ("compiled", f"{results['compiled_seconds']:.3f}",
          f"{results['compiled_error']:.2e}")]))
    print(f"\ncheckpoint speedup: {checkpoint_speedup:.2f}x, "
          f"compilation speedup on top: {compile_speedup:.2f}x")

    # Correctness gates every run: both fast walks must match the per-sample
    # reference (and the checkpointed walk its per-level twin).
    assert results["per_level_error"] <= 1e-10
    assert results["reference_error"] <= 1e-10
    assert results["compiled_error"] <= 1e-10
    # The wall-clock claims -- the checkpoint walks the prefix once per sweep
    # (~1.9x observed), and compilation turns the per-level suffix into one
    # cached matmul (~3x observed on top of the checkpoint; 1.5x leaves
    # headroom for CI noise) -- are only asserted where timings are the job's
    # purpose: the tier-1 suite runs these files with --benchmark-disable (and
    # coverage tracing), where a wall-clock assert would just add flake to
    # unrelated changes.
    if not request.config.getoption("--benchmark-disable"):
        assert checkpoint_speedup >= 1.5
        assert compile_speedup >= 1.5
