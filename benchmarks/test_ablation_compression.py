"""Ablation: compression-level sweep vs single compression levels.

Quorum sweeps every compression level (number of qubits reset) inside each
ensemble group (Fig. 6).  This ablation compares the sweep against using only the
shallowest or only the deepest bottleneck, and benchmarks the prefix-checkpointed
noisy multi-level walk against the historical per-level walk.
"""

import time

import numpy as np
from _harness import run_once

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.core.ensemble import batch_amplitudes
from repro.core.execution import DensityMatrixEngine
from repro.data.registry import load_dataset
from repro.experiments.common import ExperimentSettings, markdown_table, run_quorum
from repro.metrics.classification import evaluate_top_k
from repro.quantum.backends import FakeBrisbane

SETTINGS = ExperimentSettings(ensemble_groups=40, seed=11)
VARIANTS = {
    "level 1 only": (1,),
    "level 2 only": (2,),
    "sweep (1, 2)": (1, 2),
}


def _sweep():
    results = {}
    for dataset_name in ("breast_cancer", "letter"):
        dataset = load_dataset(dataset_name, seed=SETTINGS.seed)
        per_variant = {}
        for label, levels in VARIANTS.items():
            config = SETTINGS.quorum_config(dataset_name,
                                            compression_levels=levels)
            scores, _ = run_quorum(dataset, config)
            report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
            per_variant[label] = report.f1
        results[dataset_name] = per_variant
    return results


def test_ablation_compression_levels(benchmark):
    results = run_once(benchmark, _sweep)
    print("\n[Ablation] Compression-level sweep vs single levels (F1)\n")
    rows = []
    for dataset_name, per_variant in results.items():
        for label, f1 in per_variant.items():
            rows.append((dataset_name, label, f"{f1:.3f}"))
    print(markdown_table(["Dataset", "Compression", "F1"], rows))

    for dataset_name, per_variant in results.items():
        best_single = max(per_variant["level 1 only"], per_variant["level 2 only"])
        # The multi-level sweep is competitive with the best single level.
        assert per_variant["sweep (1, 2)"] >= best_single - 0.15


def _noisy_sweep_timings():
    """Checkpointed vs per-level noisy multi-level sweep on one 7-qubit member.

    32 samples x 4 compression levels under the Brisbane-like noise model with
    gate-level state preparation -- the exact shape of one noisy ensemble
    member's compression sweep.  The checkpointed walk evolves the shared
    encoding+encoder prefix once; the per-level walk re-simulates it per level.
    """
    ansatz = RandomAutoencoderAnsatz(3, seed=5)
    rng = np.random.default_rng(0)
    amplitudes = batch_amplitudes(
        rng.uniform(0.0, 1.0 / np.sqrt(7), size=(32, 7)), 3
    )
    levels = (0, 1, 2, 3)
    noise = FakeBrisbane(7).to_noise_model()
    engine = DensityMatrixEngine(shots=None, noise_model=noise,
                                 gate_level_encoding=True)

    checkpointed_seconds = per_level_seconds = float("inf")
    for _ in range(2):  # best-of-two damps scheduler jitter on shared CI hosts
        start = time.perf_counter()
        checkpointed = engine.p1_levels_batch(amplitudes, ansatz, levels)
        checkpointed_seconds = min(checkpointed_seconds,
                                   time.perf_counter() - start)
        start = time.perf_counter()
        per_level = np.stack([
            engine.p1_batch_circuit_level(amplitudes, ansatz, level)
            for level in levels
        ])
        per_level_seconds = min(per_level_seconds, time.perf_counter() - start)

    reference = np.stack([
        engine.p1_per_sample_circuit_level(amplitudes, ansatz, level)
        for level in levels
    ])
    return {
        "checkpointed_seconds": checkpointed_seconds,
        "per_level_seconds": per_level_seconds,
        "per_level_error": float(np.max(np.abs(checkpointed - per_level))),
        "reference_error": float(np.max(np.abs(checkpointed - reference))),
    }


def test_noisy_checkpointed_sweep_beats_per_level_walk(benchmark, request):
    results = run_once(benchmark, _noisy_sweep_timings)
    speedup = results["per_level_seconds"] / results["checkpointed_seconds"]
    print("\n[Ablation] Prefix-checkpointed noisy level sweep "
          "(32 samples x 4 levels, Brisbane noise)\n")
    print(markdown_table(
        ["Walk", "Seconds", "Max error vs per-sample reference"],
        [("per-level", f"{results['per_level_seconds']:.3f}", "--"),
         ("checkpointed", f"{results['checkpointed_seconds']:.3f}",
          f"{results['reference_error']:.2e}")]))
    print(f"\nspeedup: {speedup:.2f}x")

    # Correctness gates every run: the checkpointed sweep must match both
    # references.
    assert results["per_level_error"] <= 1e-10
    assert results["reference_error"] <= 1e-10
    # The point of the checkpoint -- the prefix is walked once, not once per
    # level (observed ~1.9x locally; 1.5x leaves headroom for CI noise) -- is
    # only asserted where timings are the job's purpose: the tier-1 suite runs
    # these files with --benchmark-disable (and coverage tracing), where a
    # wall-clock assert would just add flake to unrelated changes.
    if not request.config.getoption("--benchmark-disable"):
        assert speedup >= 1.5
