"""Replica-fleet loadtest benchmark: closed-loop throughput through the proxy.

One end-to-end pass of the fleet story on CI-safe scale: two real
``quorum-repro serve`` subprocesses on ephemeral ports behind the in-process
round-robin proxy, measured by the closed-loop worker pool.  The tracked
number is dominated by actual request/score throughput (fleet startup happens
outside the timed section), so a regression here means the serving hot path
-- HTTP handling, keep-alive, micro-batching, or the proxy -- got slower.
"""

import json
import urllib.request

import numpy as np
import pytest
from _harness import run_once

from repro.core.detector import QuorumDetector
from repro.serving.artifact import save_model
from repro.serving.loadtest import ReplicaFleet, run_closed_loop
from repro.serving.proxy import RoundRobinProxy

MEMBERS = 8
TRAIN_SAMPLES = 64
FEATURES = 6

REPLICAS = 2
CONCURRENCY = 4
DURATION_S = 1.5
WARMUP_S = 0.3


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    rng = np.random.default_rng(29)
    detector = QuorumDetector(ensemble_groups=MEMBERS, seed=31, shots=1024)
    detector.fit(rng.normal(size=(TRAIN_SAMPLES, FEATURES)))
    return save_model(detector, tmp_path_factory.mktemp("loadtest") / "m.json")


def _fleet_throughput(fleet, proxy):
    """The timed section: closed-loop load against an already-warm fleet."""
    probes = np.random.default_rng(3).normal(size=(2, FEATURES))
    body = json.dumps({"samples": probes.tolist()}).encode()
    result = run_closed_loop(proxy.base_url, "/score", body,
                             concurrency=CONCURRENCY, duration_s=DURATION_S,
                             warmup_s=WARMUP_S)
    result["per_replica_requests"] = proxy.request_counts()
    return result


def test_loadtest_fleet_throughput(benchmark, model_path):
    fleet = ReplicaFleet(model_path, replicas=REPLICAS, batch_window_ms=2.0)
    exit_codes = None
    try:
        fleet.start()
        with RoundRobinProxy(fleet.addresses) as proxy:
            health = proxy.check_backends()
            assert all(health.values()), health
            # Warm every replica's compiled-program cache outside the timing.
            with urllib.request.urlopen(proxy.base_url + "/v1/healthz",
                                        timeout=30):
                pass
            result = run_once(benchmark, _fleet_throughput, fleet, proxy)
    finally:
        exit_codes = fleet.close()

    counts = result["per_replica_requests"]
    print(f"\n[Loadtest] {REPLICAS} replicas x {MEMBERS} members, "
          f"concurrency {CONCURRENCY}: {result['throughput_rps']:.1f} req/s, "
          f"p50 {result['latency_ms']['p50']:.1f} ms, "
          f"p99 {result['latency_ms']['p99']:.1f} ms, "
          f"split {sorted(counts.values())}")
    assert exit_codes == [0] * REPLICAS  # every replica shut down cleanly
    assert result["errors"] == 0
    assert result["requests"] > 0
    # Round-robin must have spread the load across both replicas.
    assert all(count > 0 for count in counts.values())
