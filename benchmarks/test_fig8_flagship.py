"""Benchmark regenerating Fig. 8: Quorum vs the supervised QNN on four metrics.

Paper claims checked here (shape, not absolute numbers):

* Quorum's F1 is at least the QNN's on every dataset (23% higher on average in the
  paper).
* The QNN is conservative: high precision, low recall on the easy datasets.
* The QNN effectively fails on the letter dataset (F1 ~ 0).
"""

from _harness import run_once

from repro.experiments.common import ExperimentSettings
from repro.experiments.fig8 import format_fig8, run_fig8

SETTINGS = ExperimentSettings(ensemble_groups=60, shots=4096, seed=11,
                              qnn_epochs=60)


def test_fig8_quorum_vs_qnn(benchmark):
    result = run_once(benchmark, run_fig8, SETTINGS)
    print("\n[Fig. 8] Quorum vs QNN across four datasets\n")
    print(format_fig8(result))

    # Quorum wins on F1 everywhere (the paper's headline result).
    assert result.quorum_wins_everywhere()
    assert result.average_f1_advantage > 0.0

    # The QNN is conservative where it works at all: recall never exceeds
    # precision by a wide margin, and recall stays below Quorum's.
    for entry in result.entries:
        assert entry.qnn.recall <= entry.quorum.recall + 1e-9

    # The QNN collapses on the hardest dataset (letter).
    assert result.entry_for("letter").qnn.f1 <= 0.1
