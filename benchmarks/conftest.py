"""Pytest bootstrap for the benchmark harness: make ``src/`` importable.

Every benchmark regenerates one table or figure of the paper at a reduced but
representative scale (see ``EXPERIMENTS.md`` for the mapping and the observed
numbers).
"""

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for path in (_ROOT / "src", _ROOT / "benchmarks"):
    if str(path) not in sys.path:
        sys.path.insert(0, str(path))
