"""Ablation: encoding register size (Section IV-F, "Scalability and Flexibility").

The paper's primary experiments use 3-qubit encodings (7-qubit circuits) and note
that larger encodings "would introduce additional moments ... potentially
capturing even more nuanced relationships".  This ablation runs 2-, 3-, and
4-qubit encodings on the letter dataset (the hardest one, where extra capacity
should matter most).
"""

from _harness import run_once

from repro.experiments.ablations import run_register_size_ablation
from repro.experiments.common import ExperimentSettings, markdown_table

SETTINGS = ExperimentSettings(ensemble_groups=40, seed=11)


def test_ablation_register_size(benchmark):
    result = run_once(benchmark, run_register_size_ablation, SETTINGS, "letter",
                      (2, 3, 4))
    print("\n[Ablation] Encoding register size (letter dataset)\n")
    rows = [
        (f"{qubits} qubits ({result.circuit_qubits[qubits]}-qubit circuits)",
         result.features_per_circuit[qubits],
         f"{result.f1_by_num_qubits[qubits]:.3f}")
        for qubits in sorted(result.f1_by_num_qubits)
    ]
    print(markdown_table(["Encoding", "Features/circuit", "F1"], rows))

    assert result.features_per_circuit == {2: 3, 3: 7, 4: 15}
    assert result.circuit_qubits == {2: 5, 3: 7, 4: 9}
    # Small encodings (the paper's regime) stay clearly above the random-guess
    # F1 (the letter anomaly fraction, ~0.06).  Observed finding: growing the
    # register dilutes the per-feature signal on this dataset, so bigger is not
    # automatically better -- scaling up needs more ensemble members too.
    random_f1 = 33.0 / 533.0
    assert result.f1_by_num_qubits[2] > random_f1
    assert result.f1_by_num_qubits[3] > random_f1
