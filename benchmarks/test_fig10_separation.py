"""Benchmark regenerating Fig. 10: score separation on the breast-cancer dataset.

The paper's figure shows (at 16K shots) that the anomalous samples concentrate at
the top of the sorted "sum absolute std. deviation" axis, well separated from the
normal mass.  Checked here: the mean anomaly score clearly exceeds the mean normal
score and most anomalies land in the top-scoring group.
"""

from _harness import run_once

from repro.experiments.common import ExperimentSettings
from repro.experiments.fig10 import format_fig10, run_fig10

SETTINGS = ExperimentSettings(ensemble_groups=60, seed=11)


def test_fig10_breast_cancer_separation(benchmark):
    result = run_once(benchmark, run_fig10, SETTINGS, "breast_cancer", 16384)
    print("\n[Fig. 10] Score separation on the breast-cancer dataset (16K shots)\n")
    print(format_fig10(result))

    assert result.num_anomalies == 10
    assert result.separation_ratio > 1.5
    # Most of the true anomalies sit inside the top-10 scores.
    assert result.top_k_anomalies >= 7
    # Scores are sorted ascending in the profile.
    assert result.sorted_scores[0] <= result.sorted_scores[-1]
