"""Benchmark regenerating Fig. 9: detection-rate curves, noiseless and noisy.

Paper claims checked here:

* Steep initial gradients: breast cancer and power plant reach >= 80% of their
  anomalies within the top 10% of scores (noiseless).
* Pen and letter reach a substantial fraction (paper: ~60%) within the top 20%,
  clearly above random inspection.
* Brisbane-like noise causes only minimal degradation (curves closely track the
  noiseless ones).
"""

from _harness import run_once

from repro.experiments.common import ExperimentSettings
from repro.experiments.fig9 import format_fig9, run_fig9

SETTINGS = ExperimentSettings(ensemble_groups=50, shots=4096, seed=11,
                              noisy_ensemble_groups=3, noisy_subsample=64)


def test_fig9_detection_rate_curves(benchmark):
    result = run_once(benchmark, run_fig9, SETTINGS)
    print("\n[Fig. 9] Fraction of anomalies detected vs fraction of dataset\n")
    print(format_fig9(result))

    # Steep initial gradient on the separable datasets.
    assert result.entry_for("breast_cancer").noiseless.rate_at(0.10) >= 0.8
    assert result.entry_for("power_plant").noiseless.rate_at(0.10) >= 0.8

    # The harder datasets still beat random inspection by a clear margin.
    assert result.entry_for("pen_global").noiseless.rate_at(0.20) >= 0.4
    assert result.entry_for("letter").noiseless.rate_at(0.20) >= 0.3

    # Noise resilience: compared at the SAME (reduced) scale, the noisy curves
    # stay close to their noiseless counterparts (paper: "only minimal
    # degradation").  The reduced noisy sweep is statistically coarse, so the
    # per-dataset bound is loose and the average bound is the meaningful one.
    degradations = []
    for entry in result.entries:
        assert entry.noisy is not None
        assert entry.noiseless_matched is not None
        degradation = entry.degradation_at(0.5)
        assert degradation is not None
        assert degradation <= 0.6
        degradations.append(degradation)
        assert entry.noisy.rate_at(1.0) == 1.0
    assert sum(degradations) / len(degradations) <= 0.3
