"""Ablation: ranking stability across ensemble growth and across seeds.

Quorum's whole premise is that aggregating many random projections yields a
*stable* anomaly ranking.  This benchmark measures (a) how quickly the partial
ensemble's ranking converges to the full ensemble's, and (b) how strongly
independent seeds agree on the top-scoring samples.
"""

from _harness import run_once

from repro.experiments.ablations import run_stability_analysis
from repro.experiments.common import ExperimentSettings, markdown_table

SETTINGS = ExperimentSettings(seed=11)


def test_ablation_ranking_stability(benchmark):
    result = run_once(benchmark, run_stability_analysis, SETTINGS, "power_plant",
                      (5, 15, 30, 60), 3)
    print("\n[Ablation] Ranking stability (power plant)\n")
    print(markdown_table(
        ["Ensemble members", "Spearman vs full ensemble"],
        [(size, f"{value:.3f}") for size, value in result.stability_curve.items()]))
    print("\nCross-seed agreement (15-member runs):")
    print(markdown_table(
        ["Metric", "Value"],
        [(key, f"{value:.3f}") for key, value in result.cross_seed_agreement.items()]))

    # The ranking converges monotonically-ish toward the full ensemble ...
    checkpoints = sorted(result.stability_curve)
    assert result.stability_curve[checkpoints[-1]] >= 0.999
    assert result.stability_curve[checkpoints[-2]] >= 0.8
    # ... and independent seeds broadly agree on the ranking.
    assert result.cross_seed_agreement["mean_spearman"] >= 0.5
    assert result.cross_seed_agreement["mean_top_k_jaccard"] >= 0.5
