"""Members-scaling benchmark: ensemble-wide fused execution vs serial.

The fused executor groups members by compiled-circuit structure signature and
runs each group as one ``(members x levels x samples)`` stacked batch per
sweep step, amortizing the noise-model build, the circuit walk bookkeeping,
and the per-level observable contractions across the whole ensemble.  This
benchmark sweeps the ensemble size on the noisy Brisbane density-matrix path
(the paper's hardware-model configuration, where per-member overhead is
largest) and records the wall-clock ratio.

Two claims are asserted:

* fused and serial runs are **bitwise identical** -- per-member deviations and
  post-run RNG streams -- at every ensemble size (always checked);
* at 32 members the fused path is at least 1.5x faster (checked only when
  timings are the job's purpose, i.e. not under ``--benchmark-disable``).
"""

import time

import numpy as np

from _harness import run_once
from repro.core.config import QuorumConfig
from repro.core.parallel import derive_member_seeds, run_ensemble_members

MEMBER_COUNTS = (8, 16, 32)
NUM_SAMPLES = 24  # one walk chunk at 7 simulated qubits: fused fast path
SEED = 9


def _normalized_rows():
    """Positive, pre-normalized feature rows (no zero-amplitude elision)."""
    rng = np.random.default_rng(SEED)
    return rng.uniform(0.05, 0.45, size=(NUM_SAMPLES, 4))


def _config(members, executor):
    return QuorumConfig(ensemble_groups=members, shots=256, seed=SEED,
                        num_qubits=2, backend="density_matrix", noisy=True,
                        executor=executor)


def _run(data, members, executor):
    seeds = derive_member_seeds(SEED, members)
    started = time.perf_counter()
    results, plans = run_ensemble_members(data, _config(members, executor),
                                          seeds, return_plans=True)
    elapsed = time.perf_counter() - started
    return results, plans, elapsed


def _members_scaling_sweep():
    data = _normalized_rows()
    # Warm the compiled-program caches on both paths so the timed runs
    # measure execution, not one-off lowering.
    _run(data, MEMBER_COUNTS[0], "serial")
    _run(data, MEMBER_COUNTS[0], "fused")
    timings = {}
    for members in MEMBER_COUNTS:
        serial_results, serial_plans, serial_s = _run(data, members, "serial")
        fused_results, fused_plans, fused_s = _run(data, members, "fused")
        for serial_result, fused_result in zip(serial_results, fused_results):
            assert np.array_equal(serial_result.deviations,
                                  fused_result.deviations), (
                f"fused deviations diverged at {members} members")
        for serial_plan, fused_plan in zip(serial_plans, fused_plans):
            assert (serial_plan.rng.bit_generator.state
                    == fused_plan.rng.bit_generator.state), (
                f"fused RNG stream diverged at {members} members")
        timings[members] = {"serial_s": serial_s, "fused_s": fused_s,
                            "speedup": serial_s / fused_s}
    return timings


def test_members_scaling_fused_vs_serial(benchmark, request):
    timings = run_once(benchmark, _members_scaling_sweep)
    print(f"\n[Fused execution] noisy Brisbane, {NUM_SAMPLES} samples:")
    for members, row in timings.items():
        print(f"  {members:3d} members: serial {row['serial_s'] * 1e3:7.1f} ms"
              f"  fused {row['fused_s'] * 1e3:7.1f} ms"
              f"  ({row['speedup']:.2f}x)")
    # Bitwise parity was already asserted inside the sweep at every size.
    # The wall-clock claim is asserted only where timings are the job's
    # purpose: tier-1 runs this file with --benchmark-disable (and coverage
    # tracing), where a wall-clock assert would just add flake.
    if not request.config.getoption("--benchmark-disable"):
        assert timings[32]["speedup"] >= 1.5
