"""Extended comparison: Quorum vs the classical unsupervised baselines.

The paper only compares against the supervised QNN; its background section,
however, positions Quorum relative to clustering, Isolation Forests, PCA-style
reduction, and classical autoencoders.  This benchmark runs all of them on the
two easiest datasets and checks that Quorum is competitive (within the top half of
the field), which is the implicit claim of a "practical quantum alternative".
"""

from _harness import run_once

from repro.experiments.ablations import run_baseline_comparison
from repro.experiments.common import ExperimentSettings, markdown_table

SETTINGS = ExperimentSettings(ensemble_groups=50, seed=11)
DATASETS = ("breast_cancer", "power_plant")


def test_extended_baseline_comparison(benchmark):
    result = run_once(benchmark, run_baseline_comparison, SETTINGS, DATASETS)
    print("\n[Extended] Quorum vs classical unsupervised baselines (F1)\n")
    methods = list(next(iter(result.f1_scores.values())))
    rows = []
    for dataset, scores in result.f1_scores.items():
        for method in methods:
            rows.append((dataset, method, f"{scores[method]:.3f}"))
    print(markdown_table(["Dataset", "Method", "F1"], rows))

    for dataset in DATASETS:
        scores = result.f1_scores[dataset]
        # Quorum detects a substantial share of the anomalies...
        assert scores["Quorum"] >= 0.5
        # ...and stays within striking distance of the best classical detector
        # (the mature classical methods saturate these easy surrogates).
        best_classical = max(value for method, value in scores.items()
                             if method != "Quorum")
        assert scores["Quorum"] >= best_classical - 0.25
