"""Fleet self-healing benchmark: SIGKILL-to-recovered wall-clock time.

One crash/heal cycle against a real 2-replica fleet under the supervisor's
health loop: the timed section starts at the SIGKILL and ends when the fleet
is back to full strength (crash detected, backoff elapsed, replica respawned,
startup probe passed, re-admitted to the proxy rotation).  Fleet startup and
teardown stay outside the timing.  The recovery time is dominated by the
policy knobs (health interval, backoff base) plus one replica cold start, so
a regression here means detection, respawn, or admission got slower.

Not tracked in BENCH_baseline.json: recovery time is policy-bound, not
hot-path-bound, so the printed number is informational.
"""

import time

import numpy as np
import pytest
from _harness import run_once

from repro.core.detector import QuorumDetector
from repro.serving.artifact import save_model
from repro.serving.faults import FaultInjector
from repro.serving.supervisor import FleetSupervisor, SupervisorPolicy

MEMBERS = 4
TRAIN_SAMPLES = 32
FEATURES = 4

REPLICAS = 2
POLICY = SupervisorPolicy(health_interval_s=0.25, probe_timeout_s=1.0,
                          eject_after=2, readmit_after=2,
                          backoff_base_s=0.3, backoff_max_s=2.0)


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    rng = np.random.default_rng(41)
    detector = QuorumDetector(ensemble_groups=MEMBERS, seed=43, shots=512)
    detector.fit(rng.normal(size=(TRAIN_SAMPLES, FEATURES)))
    return save_model(detector,
                      tmp_path_factory.mktemp("supervision") / "m.json")


def _kill_and_heal(supervisor):
    """The timed section: one SIGKILL-to-full-strength recovery."""
    started = time.monotonic()
    victim = supervisor.status()["slots"][0]
    FaultInjector().kill(victim["pid"])
    # First wait for the crash to be *detected* (the slot leaves healthy);
    # only then is "back to full strength" a real recovery, not stale state.
    deadline = time.monotonic() + 30.0
    while supervisor.healthy_count() >= REPLICAS:
        assert time.monotonic() < deadline, supervisor.status()
        time.sleep(0.02)
    assert supervisor.wait_for_healthy(REPLICAS, timeout_s=60.0,
                                       poll_s=0.05), supervisor.status()
    status = supervisor.status()
    status["recovery_s"] = time.monotonic() - started
    return status


def test_sigkill_recovery_time(benchmark, model_path):
    supervisor = FleetSupervisor(model_path, replicas=REPLICAS,
                                 policy=POLICY, batch_window_ms=1.0)
    try:
        supervisor.start()
        supervisor.start_health_loop()
        assert supervisor.wait_for_healthy(REPLICAS, timeout_s=120.0), \
            supervisor.status()
        status = run_once(benchmark, _kill_and_heal, supervisor)
    finally:
        exit_codes = supervisor.close()

    recovered = status["slots"][0]
    print(f"\n[Supervision] {REPLICAS} replicas, SIGKILL slot 0: healed in "
          f"{status['recovery_s']:.2f} s "
          f"(health interval {POLICY.health_interval_s} s, backoff base "
          f"{POLICY.backoff_base_s} s + one replica cold start)")
    assert status["healthy"] == REPLICAS
    assert recovered["restarts"] >= 1
    # The survivor drained cleanly; the respawned replica drained cleanly.
    assert exit_codes == [0] * REPLICAS
