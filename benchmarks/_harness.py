"""Helpers shared by the benchmark harness."""


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiment benchmarks are full evaluation sweeps (minutes, not
    microseconds), so a single round is both sufficient and necessary.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
