"""Helpers shared by the benchmark harness, plus the perf-regression gate.

Besides the ``run_once`` pytest-benchmark wrapper, this module implements the
CI performance gate: the repository commits a ``BENCH_baseline.json`` snapshot
of benchmark means, and ``python benchmarks/_harness.py check <results.json>``
diffs a fresh pytest-benchmark JSON artifact against it, failing (exit code 1)
when any *tracked* benchmark slowed down by more than the tolerance (25% by
default; override with ``--tolerance`` or ``QUORUM_BENCH_TOLERANCE``).

Benchmarks present in the results but absent from the baseline are untracked
and ignored; tracked benchmarks missing from the results are reported (they
usually indicate a renamed test) but do not fail the gate.  Refresh the
baseline after an intentional perf change or a CI-hardware change with::

    PYTHONPATH=src python -m pytest benchmarks -q --benchmark-json=results.json
    python benchmarks/_harness.py update results.json
"""

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_baseline.json"
DEFAULT_TOLERANCE = 0.25


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiment benchmarks are full evaluation sweeps (minutes, not
    microseconds), so a single round is both sufficient and necessary.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def load_benchmark_means(results_path):
    """``{fullname: mean seconds}`` from a pytest-benchmark JSON artifact."""
    with open(results_path) as handle:
        data = json.load(handle)
    return {entry["fullname"]: float(entry["stats"]["mean"])
            for entry in data.get("benchmarks", [])}


def load_baseline(baseline_path=DEFAULT_BASELINE):
    """The committed baseline: ``{"benchmarks": {fullname: mean seconds}}``."""
    with open(baseline_path) as handle:
        return json.load(handle)


def diff_against_baseline(means, baseline, tolerance=DEFAULT_TOLERANCE):
    """Compare fresh means against a baseline mapping.

    Returns ``(regressions, missing)``: ``regressions`` holds
    ``(name, baseline_seconds, measured_seconds, slowdown_fraction)`` tuples
    for every tracked benchmark that exceeded the tolerated slowdown;
    ``missing`` lists tracked benchmarks absent from the fresh results.
    """
    regressions = []
    missing = []
    for name, baseline_seconds in sorted(baseline["benchmarks"].items()):
        if name not in means:
            missing.append(name)
            continue
        measured = means[name]
        slowdown = measured / baseline_seconds - 1.0
        if slowdown > tolerance:
            regressions.append((name, baseline_seconds, measured, slowdown))
    return regressions, missing


def check(results_path, baseline_path=DEFAULT_BASELINE, tolerance=None):
    """Gate a results artifact against the baseline; returns the exit code."""
    if tolerance is None:
        tolerance = float(os.environ.get("QUORUM_BENCH_TOLERANCE",
                                         DEFAULT_TOLERANCE))
    means = load_benchmark_means(results_path)
    baseline = load_baseline(baseline_path)
    regressions, missing = diff_against_baseline(means, baseline, tolerance)
    for name in missing:
        print(f"[bench-gate] WARNING: tracked benchmark missing from results: "
              f"{name}")
    tracked = len(baseline["benchmarks"]) - len(missing)
    if regressions:
        print(f"[bench-gate] FAIL: {len(regressions)} of {tracked} tracked "
              f"benchmarks regressed beyond {tolerance:.0%}:")
        for name, base, measured, slowdown in regressions:
            print(f"  {name}: {base:.3f}s -> {measured:.3f}s "
                  f"(+{slowdown:.0%})")
        return 1
    if tracked == 0:
        # Fail closed: an empty artifact (misconfigured benchmark run, mass
        # rename) must not read as a passing gate.
        print("[bench-gate] FAIL: no tracked benchmark present in the results")
        return 1
    print(f"[bench-gate] OK: {tracked} tracked benchmarks within "
          f"{tolerance:.0%} of the baseline")
    return 0


def update(results_path, baseline_path=DEFAULT_BASELINE, min_seconds=0.5):
    """Rewrite the committed baseline from a fresh results artifact.

    Benchmarks faster than ``min_seconds`` are left untracked: below ~0.5 s
    a 25% relative gate measures scheduler jitter on shared CI runners, not
    regressions, and the macro benchmarks cover the same code paths.
    """
    means = load_benchmark_means(results_path)
    tracked = {name: round(mean, 4) for name, mean in sorted(means.items())
               if mean >= min_seconds}
    skipped = len(means) - len(tracked)
    if skipped:
        print(f"[bench-gate] leaving {skipped} sub-{min_seconds}s benchmarks "
              f"untracked")
    payload = {
        "note": ("Benchmark means (seconds) recorded by "
                 "`python benchmarks/_harness.py update`; the CI gate fails on "
                 ">25% slowdown of any entry.  Refresh after intentional perf "
                 "changes or CI-hardware changes.  Benchmarks faster than "
                 "0.5s stay untracked (jitter-dominated)."),
        "benchmarks": tracked,
    }
    with open(baseline_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench-gate] baseline updated: {len(tracked)} tracked benchmarks "
          f"-> {baseline_path}")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Diff pytest-benchmark JSON artifacts against the "
                    "committed BENCH_baseline.json")
    parser.add_argument("command", choices=("check", "update"))
    parser.add_argument("results", help="pytest-benchmark JSON artifact")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--tolerance", type=float, default=None,
                        help="tolerated fractional slowdown (default 0.25, or "
                             "QUORUM_BENCH_TOLERANCE)")
    parser.add_argument("--min-seconds", type=float, default=0.5,
                        help="update only: leave faster benchmarks untracked")
    args = parser.parse_args(argv)
    if args.command == "update":
        return update(args.results, args.baseline,
                      min_seconds=args.min_seconds)
    return check(args.results, args.baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
