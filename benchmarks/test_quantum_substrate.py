"""Microbenchmarks of the quantum substrate (simulator and transpiler throughput).

These are not paper figures; they document the cost of the substrate the
reproduction is built on (statevector vs density-matrix simulation of the 7-qubit
Quorum circuit, and transpilation to the Brisbane basis).
"""

import numpy as np

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.algorithms.autoencoder import build_autoencoder_circuit
from repro.core.ensemble import batch_amplitudes
from repro.quantum.simulator import DensityMatrixSimulator, StatevectorSimulator
from repro.quantum.transpiler import transpile


def _quorum_circuit(measure=True, gate_level=False):
    rng = np.random.default_rng(0)
    amplitudes = batch_amplitudes(rng.uniform(0, 1 / np.sqrt(7), size=(1, 7)), 3)[0]
    ansatz = RandomAutoencoderAnsatz(3, seed=11)
    return build_autoencoder_circuit(amplitudes, ansatz, 1,
                                     gate_level_encoding=gate_level,
                                     measure=measure)


def test_statevector_simulation_of_quorum_circuit(benchmark):
    circuit = _quorum_circuit(measure=True)
    simulator = StatevectorSimulator(seed=1, max_trajectories=16)
    result = benchmark(simulator.run, circuit, 1024)
    assert sum(result.counts.values()) == 1024


def test_density_matrix_simulation_of_quorum_circuit(benchmark):
    circuit = _quorum_circuit(measure=False)
    simulator = DensityMatrixSimulator()
    state = benchmark(simulator.evolve, circuit)
    assert abs(state.trace() - 1.0) < 1e-9


def test_transpile_quorum_circuit_to_brisbane_basis(benchmark):
    circuit = _quorum_circuit(measure=True, gate_level=True)
    transpiled = benchmark(transpile, circuit, ("rz", "sx", "x", "cx"))
    allowed = {"rz", "sx", "x", "cx", "barrier", "reset", "measure"}
    assert all(instr.name in allowed for instr in transpiled.instructions)
    assert transpiled.two_qubit_gate_count() >= circuit.count_ops().get("cswap", 0)
