"""Online-serving benchmarks: cold start, warm latency, micro-batch speedup.

The serving subsystem's contract is train-once / score-many: a fitted ensemble
is persisted once and then serves scoring requests whose marginal cost is the
sample-dependent work only (the compiled encoder unitaries and reference
statistics are frozen in the artifact and reused across requests).  These
benchmarks measure that contract:

* cold path -- ``load_model`` + scorer construction + the first request
  (includes the one-time compiles);
* warm path -- amortized per-request latency at request sizes 1 / 8 / 64;
* micro-batching -- many concurrent single-sample requests coalesced into
  fused batches vs the same requests scored one at a time;
* job overhead -- the async ``submit -> poll -> result`` lifecycle of the
  runtime service's JobManager vs the same work scored synchronously.
"""

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from _harness import run_once

from repro.core.detector import QuorumDetector
from repro.experiments.common import markdown_table
from repro.quantum.compiler import CircuitCompiler
from repro.serving.artifact import load_model, save_model
from repro.serving.jobs import JobManager
from repro.serving.models import JobSubmitRequest
from repro.serving.registry import ModelRegistry
from repro.serving.scorer import OnlineScorer

#: One mid-sized frozen ensemble shared by every benchmark in this module.
MEMBERS = 32
TRAIN_SAMPLES = 192
FEATURES = 9


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    rng = np.random.default_rng(7)
    detector = QuorumDetector(ensemble_groups=MEMBERS, seed=23, shots=4096)
    detector.fit(rng.normal(size=(TRAIN_SAMPLES, FEATURES)))
    return save_model(detector, tmp_path_factory.mktemp("serving") / "m.json")


def _probes(samples, seed=1):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(samples, FEATURES))


def _cold_start(model_path):
    """Fresh artifact load + scorer build + first single-sample request."""
    start = time.perf_counter()
    scorer = OnlineScorer(load_model(model_path))
    loaded = time.perf_counter() - start
    start = time.perf_counter()
    scorer.score(_probes(1))
    first_score = time.perf_counter() - start
    scorer.close()
    return {"load_seconds": loaded, "first_score_seconds": first_score}


def test_serving_cold_load_first_score(benchmark, model_path):
    results = run_once(benchmark, _cold_start, model_path)
    print(f"\n[Serving] cold start ({MEMBERS} members): "
          f"load {results['load_seconds'] * 1e3:.1f} ms, "
          f"first score {results['first_score_seconds'] * 1e3:.1f} ms")
    assert results["load_seconds"] > 0
    assert results["first_score_seconds"] > 0


def _warm_latencies(model_path):
    """Amortized per-request latency at request sizes 1 / 8 / 64."""
    scorer = OnlineScorer(load_model(model_path))
    scorer.score(_probes(1))  # warm the compiled-program cache
    timings = {}
    for size, repeats in ((1, 40), (8, 20), (64, 10)):
        probes = _probes(size, seed=size)
        start = time.perf_counter()
        for _ in range(repeats):
            scorer.score(probes)
        elapsed = time.perf_counter() - start
        timings[size] = {
            "per_request_ms": elapsed / repeats * 1e3,
            "per_sample_ms": elapsed / (repeats * size) * 1e3,
        }
    scorer.close()
    return timings


def test_serving_warm_latency(benchmark, model_path, request):
    timings = run_once(benchmark, _warm_latencies, model_path)
    print(f"\n[Serving] warm request latency ({MEMBERS} members)\n")
    print(markdown_table(
        ["Batch size", "ms / request", "ms / sample"],
        [(size, f"{stats['per_request_ms']:.2f}",
          f"{stats['per_sample_ms']:.3f}")
         for size, stats in timings.items()]))
    # Batching must amortize: per-sample cost at 64 clearly below size-1 cost.
    # Wall-clock comparison, so asserted only where timings are the job's
    # purpose (tier-1 runs this file with --benchmark-disable under coverage
    # tracing, where it would just add flake).
    if not request.config.getoption("--benchmark-disable"):
        assert timings[64]["per_sample_ms"] < timings[1]["per_sample_ms"]


def _microbatch_vs_sequential(model_path):
    """64 single-sample requests: coalesced micro-batches vs one at a time."""
    scorer = OnlineScorer(load_model(model_path), max_batch_samples=256,
                          batch_window_s=0.004)
    requests = [_probes(1, seed=100 + i) for i in range(64)]
    scorer.score(requests[0])  # warm the compiled-program cache

    sequential_seconds = batched_seconds = float("inf")
    for _ in range(2):  # best-of-two damps scheduler jitter on shared CI hosts
        start = time.perf_counter()
        sequential = [scorer.score(request).scores[0] for request in requests]
        sequential_seconds = min(sequential_seconds,
                                 time.perf_counter() - start)

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=16) as pool:
            futures = list(pool.map(scorer.submit, requests))
        batched = [future.result(timeout=120).scores[0] for future in futures]
        batched_seconds = min(batched_seconds, time.perf_counter() - start)

    diagnostics = scorer.diagnostics()
    scorer.close()
    # Determinism gate: coalescing must not change a single score.
    assert sequential == batched
    return {
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "batches": diagnostics["serving"]["batches"],
        "coalesced_requests": diagnostics["serving"]["coalesced_requests"],
    }


def _job_overhead(model_path, cycles=48):
    """Full async job lifecycles (submit -> poll -> result) vs direct scoring.

    Each cycle runs one single-sample ``score`` job through the JobManager's
    worker pool and polls it to completion the way an HTTP client would; the
    direct pass scores the identical probes through the scorer's micro-batch
    queue.  The difference is the bookkeeping the runtime service adds per
    job (uuid allocation, table locking, worker handoff, poll latency).
    """
    probes = [_probes(1, seed=300 + i).tolist() for i in range(cycles)]
    with ModelRegistry(compiler=CircuitCompiler()) as registry:
        entry = registry.load(model_path, model_id="bench")
        entry.scorer.submit(probes[0]).result(timeout=120)  # warm the cache

        start = time.perf_counter()
        for probe in probes:
            entry.scorer.submit(probe).result(timeout=120)
        direct_seconds = time.perf_counter() - start

        with JobManager(registry, workers=2) as manager:
            start = time.perf_counter()
            for probe in probes:
                job = manager.submit(JobSubmitRequest(
                    kind="score", model_id="bench",
                    params={"samples": probe}))
                while manager.get(job.job_id).status not in (
                        "succeeded", "failed", "cancelled"):
                    time.sleep(0.0005)
                manager.result(job.job_id)
            job_seconds = time.perf_counter() - start

    return {
        "cycles": cycles,
        "direct_seconds": direct_seconds,
        "job_seconds": job_seconds,
        "overhead_ms_per_job": (job_seconds - direct_seconds) / cycles * 1e3,
    }


def test_serving_job_overhead(benchmark, model_path):
    results = run_once(benchmark, _job_overhead, model_path)
    print(f"\n[Serving] {results['cycles']} submit->poll->result job cycles "
          f"({MEMBERS} members): direct {results['direct_seconds'] * 1e3:.0f} "
          f"ms, via jobs {results['job_seconds'] * 1e3:.0f} ms "
          f"(+{results['overhead_ms_per_job']:.2f} ms/job)")
    # The job machinery must add bookkeeping, not re-scoring: per-job overhead
    # stays far below one member sweep (hundreds of ms for this ensemble).
    assert results["overhead_ms_per_job"] < 100.0


def test_serving_microbatch_speedup(benchmark, model_path, request):
    results = run_once(benchmark, _microbatch_vs_sequential, model_path)
    speedup = results["sequential_seconds"] / results["batched_seconds"]
    per_request = results["coalesced_requests"] / max(results["batches"], 1)
    print(f"\n[Serving] 64 single-sample requests x {MEMBERS} members: "
          f"sequential {results['sequential_seconds'] * 1e3:.0f} ms, "
          f"micro-batched {results['batched_seconds'] * 1e3:.0f} ms "
          f"({speedup:.1f}x, ~{per_request:.1f} requests/batch)")
    # Requests must actually have been coalesced, not trickled one per batch.
    assert per_request > 1.0
    # The wall-clock claim is asserted only where timings are the job's
    # purpose: tier-1 runs this file with --benchmark-disable (and coverage
    # tracing), where a wall-clock assert would just add flake.
    if not request.config.getoption("--benchmark-disable"):
        assert speedup >= 1.5
