"""Ablation: effect of ensemble size and shot count (Section V, "Experimental
Framework": "Increasing both shot count and ensemble members has significant
impacts on performance, with benefits diminishing as they increase past a certain
point").

Checked here: detection quality improves (or saturates) as the ensemble grows, and
the largest sweep is no worse than the smallest one.
"""

from _harness import run_once

from repro.data.registry import load_dataset
from repro.experiments.common import ExperimentSettings, markdown_table, run_quorum
from repro.metrics.classification import evaluate_top_k

SETTINGS = ExperimentSettings(seed=11)
ENSEMBLE_SIZES = (5, 20, 60)
SHOT_COUNTS = (256, 4096, None)


def _sweep():
    dataset = load_dataset("breast_cancer", seed=SETTINGS.seed)
    ensemble_f1 = {}
    for groups in ENSEMBLE_SIZES:
        config = SETTINGS.quorum_config("breast_cancer", ensemble_groups=groups)
        scores, _ = run_quorum(dataset, config)
        report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
        ensemble_f1[groups] = report.f1
    shot_f1 = {}
    for shots in SHOT_COUNTS:
        config = SETTINGS.quorum_config("breast_cancer", ensemble_groups=30,
                                        shots=shots)
        scores, _ = run_quorum(dataset, config)
        report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
        shot_f1[shots] = report.f1
    return ensemble_f1, shot_f1


def test_ablation_ensemble_and_shot_scaling(benchmark):
    ensemble_f1, shot_f1 = run_once(benchmark, _sweep)
    print("\n[Ablation] Ensemble-size scaling (breast cancer)\n")
    print(markdown_table(["Ensemble members", "F1"],
                         [(k, f"{v:.3f}") for k, v in ensemble_f1.items()]))
    print("\n[Ablation] Shot-count scaling (breast cancer, 30 members)\n")
    print(markdown_table(["Shots", "F1"],
                         [("exact" if k is None else k, f"{v:.3f}")
                          for k, v in shot_f1.items()]))

    # More ensemble members never hurts substantially; the largest sweep matches
    # or beats the smallest.
    assert ensemble_f1[ENSEMBLE_SIZES[-1]] >= ensemble_f1[ENSEMBLE_SIZES[0]] - 0.05
    # Exact probabilities are at least as good as the lowest shot count.
    assert shot_f1[None] >= shot_f1[SHOT_COUNTS[0]] - 0.05
