"""Ablation: execution-engine comparison (analytic fast path vs full circuits).

DESIGN.md calls out the analytic reduced-density-matrix fast path as a
substitution for full circuit simulation; this benchmark shows the two agree on
the scores they produce and quantifies the speed difference, plus the cost of the
Brisbane-like noisy simulation.
"""

import numpy as np

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.core.ensemble import batch_amplitudes
from repro.core.execution import AnalyticEngine, DensityMatrixEngine
from repro.quantum.backends import FakeBrisbane


def _batch(num_samples=32, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.0, 1.0 / np.sqrt(7), size=(num_samples, 7))
    return batch_amplitudes(values, 3)


ANSATZ = RandomAutoencoderAnsatz(3, seed=11)
BATCH = _batch()


def test_engine_analytic_fast_path(benchmark):
    engine = AnalyticEngine(shots=None)
    result = benchmark(engine.p1_batch, BATCH, ANSATZ, 1)
    assert result.shape == (32,)
    assert np.all(result <= 0.5 + 1e-12)


def test_engine_density_matrix_circuit_level(benchmark):
    engine = DensityMatrixEngine(shots=None)
    result = benchmark.pedantic(engine.p1_batch, args=(BATCH, ANSATZ, 1),
                                rounds=3, iterations=1)
    exact = AnalyticEngine(shots=None).p1_batch(BATCH, ANSATZ, 1)
    assert np.allclose(result, exact, atol=1e-9)


def test_engine_density_matrix_noisy_brisbane(benchmark):
    engine = DensityMatrixEngine(shots=None,
                                 noise_model=FakeBrisbane(7).to_noise_model(),
                                 gate_level_encoding=True)
    small_batch = BATCH[:8]
    result = benchmark.pedantic(engine.p1_batch, args=(small_batch, ANSATZ, 1),
                                rounds=1, iterations=1)
    exact = AnalyticEngine(shots=None).p1_batch(small_batch, ANSATZ, 1)
    # Noise perturbs but does not destroy the signal.
    assert np.max(np.abs(result - exact)) < 0.15
