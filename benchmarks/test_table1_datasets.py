"""Benchmark regenerating Table I: dataset inventory and bucket sizing."""

from _harness import run_once

from repro.data.registry import DATASET_SPECS
from repro.experiments.table1 import format_table1, run_table1


def test_table1_dataset_inventory(benchmark):
    result = run_once(benchmark, run_table1)
    print("\n[Table I] Datasets used for Quorum's evaluation\n")
    print(format_table1(result))
    # Every row must match the paper's counts exactly and reach its bucket target.
    for row in result.rows:
        spec = DATASET_SPECS[row.dataset]
        assert row.samples == spec.samples
        assert row.anomalies == spec.anomalies
        assert row.features == spec.features
        assert row.achieved_probability >= row.target_probability - 1e-9
