"""Benchmark regenerating Table II: F1 vs bucket-size target probability.

Paper claims checked here (directionally):

* Very small buckets (p = 0.5) never give the best F1 by a clear margin -- tiny
  buckets degrade the statistics.
* Moderate-to-large buckets (p >= 0.75) achieve each dataset's best F1.
"""

from _harness import run_once

from repro.experiments.common import ExperimentSettings
from repro.experiments.table2 import (
    PAPER_BUCKET_PROBABILITIES,
    format_table2,
    run_table2,
)

SETTINGS = ExperimentSettings(ensemble_groups=40, shots=4096, seed=11)


def test_table2_bucket_size_ablation(benchmark):
    result = run_once(benchmark, run_table2, SETTINGS)
    print("\n[Table II] F1 scores for different bucket sizes\n")
    print(format_table2(result))
    print("\nBucket sizes used:")
    for name, sizes in result.bucket_sizes.items():
        print(f"  {name}: {dict(zip(result.probabilities, sizes))}")

    assert result.probabilities == PAPER_BUCKET_PROBABILITIES
    for name, scores in result.f1_scores.items():
        smallest_bucket_score = scores[0]  # p = 0.5 -> smallest buckets
        best_of_larger_buckets = max(scores[1:])
        # Moderate-to-large buckets match or beat the smallest buckets
        # (the paper's "very small bucket sizes generally lead to degraded
        # performance").
        assert best_of_larger_buckets >= smallest_bucket_score - 0.02
