"""Setuptools shim for environments without the ``wheel`` package.

The project is fully described in ``pyproject.toml``; this file only exists so that
``pip install -e . --no-use-pep517`` (the legacy editable-install path) works in
offline environments where PEP 517 build isolation cannot fetch build dependencies.
"""

from setuptools import setup

setup()
