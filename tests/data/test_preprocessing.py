"""Tests for record preprocessing: hashing, label stripping."""

import numpy as np
import pytest

from repro.data.preprocessing import (
    hash_feature,
    preprocess_records,
    records_to_matrix,
    strip_labels,
)


class TestHashFeature:
    def test_numeric_passthrough(self):
        assert hash_feature(3.5) == 3.5
        assert hash_feature(7) == 7.0

    def test_string_maps_to_unit_interval(self):
        value = hash_feature("hello")
        assert 0.0 <= value < 1.0

    def test_deterministic(self):
        assert hash_feature("abc") == hash_feature("abc")

    def test_distinct_strings_usually_differ(self):
        assert hash_feature("abc") != hash_feature("abd")

    def test_bool_is_hashed_not_passed_through(self):
        # Booleans are categorical flags, not magnitudes.
        assert 0.0 <= hash_feature(True) < 1.0


class TestRecordsToMatrix:
    def test_basic_conversion(self):
        records = [{"x": 1.0, "y": "cat"}, {"x": 2.0, "y": "dog"}]
        matrix, keys = records_to_matrix(records)
        assert matrix.shape == (2, 2)
        assert keys == ["x", "y"]
        assert matrix[0, 0] == 1.0

    def test_missing_keys_become_zero(self):
        records = [{"x": 1.0}, {"y": 5.0}]
        matrix, keys = records_to_matrix(records)
        assert matrix.shape == (2, 2)
        assert matrix[0, keys.index("y")] == 0.0

    def test_empty_records_raise(self):
        with pytest.raises(ValueError):
            records_to_matrix([])

    def test_explicit_feature_order(self):
        records = [{"a": 1, "b": 2}]
        matrix, keys = records_to_matrix(records, feature_keys=["b", "a"])
        assert keys == ["b", "a"]
        assert matrix[0, 0] == 2.0


class TestStripLabels:
    def test_numeric_labels(self):
        records = [{"x": 1, "label": 0}, {"x": 2, "label": 1}]
        cleaned, labels = strip_labels(records, "label")
        assert labels.tolist() == [0, 1]
        assert all("label" not in record for record in cleaned)

    def test_string_labels(self):
        records = [{"x": 1, "y": "anomaly"}, {"x": 2, "y": "normal"}]
        _, labels = strip_labels(records, "y")
        assert labels.tolist() == [1, 0]

    def test_missing_label_defaults_to_normal(self):
        _, labels = strip_labels([{"x": 1}], "label")
        assert labels.tolist() == [0]


class TestPreprocessRecords:
    def test_full_pipeline(self):
        records = [
            {"amount": 10.0, "merchant": "grocer", "fraud": 0},
            {"amount": 9000.0, "merchant": "casino", "fraud": 1},
            {"amount": 12.0, "merchant": "grocer", "fraud": 0},
        ]
        dataset = preprocess_records(records, label_key="fraud", name="fraud_demo")
        assert dataset.num_samples == 3
        assert dataset.num_anomalies == 1
        assert dataset.num_features == 2
        assert dataset.name == "fraud_demo"
        assert np.issubdtype(dataset.data.dtype, np.floating)
