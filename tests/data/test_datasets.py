"""Tests for the synthetic dataset generators and the registry."""

import numpy as np
import pytest

from repro.data.datasets import (
    make_breast_cancer_like,
    make_gaussian_anomaly_dataset,
    make_letter_like,
    make_pen_global_like,
    make_power_plant_like,
)
from repro.data.registry import DATASET_SPECS, available_datasets, load_dataset


class TestGaussianGenerator:
    def test_shapes_and_counts(self):
        dataset = make_gaussian_anomaly_dataset(
            "toy", num_samples=100, num_anomalies=10, num_features=5,
            num_clusters=2, separation=3.0, anomaly_spread=1.0, seed=0,
        )
        assert dataset.num_samples == 100
        assert dataset.num_anomalies == 10
        assert dataset.num_features == 5

    def test_determinism(self):
        first = make_gaussian_anomaly_dataset(
            "toy", 60, 6, 4, 2, 2.0, 1.0, seed=3)
        second = make_gaussian_anomaly_dataset(
            "toy", 60, 6, 4, 2, 2.0, 1.0, seed=3)
        assert np.allclose(first.data, second.data)
        assert np.array_equal(first.labels, second.labels)

    def test_different_seeds_differ(self):
        first = make_gaussian_anomaly_dataset("toy", 60, 6, 4, 2, 2.0, 1.0, seed=1)
        second = make_gaussian_anomaly_dataset("toy", 60, 6, 4, 2, 2.0, 1.0, seed=2)
        assert not np.allclose(first.data, second.data)

    def test_too_many_anomalies_raise(self):
        with pytest.raises(ValueError):
            make_gaussian_anomaly_dataset("toy", 10, 10, 3, 1, 1.0, 1.0)

    def test_separation_increases_anomaly_distance(self):
        near = make_gaussian_anomaly_dataset("near", 300, 20, 8, 1, 1.0, 1.0, seed=5)
        far = make_gaussian_anomaly_dataset("far", 300, 20, 8, 1, 6.0, 1.0, seed=5)

        def mean_anomaly_distance(dataset):
            normal_mean = dataset.data[dataset.labels == 0].mean(axis=0)
            anomalies = dataset.data[dataset.labels == 1]
            return np.linalg.norm(anomalies - normal_mean, axis=1).mean()

        assert mean_anomaly_distance(far) > mean_anomaly_distance(near)


class TestTableIDatasets:
    @pytest.mark.parametrize("name", ["breast_cancer", "pen_global", "letter",
                                      "power_plant"])
    def test_counts_match_table1(self, name):
        spec = DATASET_SPECS[name]
        dataset = load_dataset(name, seed=0)
        assert dataset.num_samples == spec.samples
        assert dataset.num_anomalies == spec.anomalies
        assert dataset.num_features == spec.features

    def test_generators_callable_directly(self):
        assert make_breast_cancer_like(0).name == "breast_cancer"
        assert make_pen_global_like(0).name == "pen_global"
        assert make_letter_like(0).name == "letter"
        assert make_power_plant_like(0).name == "power_plant"

    def test_power_plant_feature_semantics(self):
        dataset = make_power_plant_like(0)
        assert dataset.feature_names == ["ambient_temp", "vacuum", "pressure",
                                         "humidity", "output"]
        temps = dataset.data[dataset.labels == 0, 0]
        assert temps.min() > -10.0
        assert temps.max() < 45.0

    def test_power_plant_output_correlates_negatively_with_temperature(self):
        dataset = make_power_plant_like(0)
        normal = dataset.data[dataset.labels == 0]
        correlation = np.corrcoef(normal[:, 0], normal[:, 4])[0, 1]
        assert correlation < -0.5


class TestRegistry:
    def test_available_datasets(self):
        assert available_datasets() == ["breast_cancer", "pen_global", "letter",
                                        "power_plant"]

    def test_name_normalization(self):
        assert load_dataset("Pen-Global").name == "pen_global"
        assert load_dataset("breast cancer").name == "breast_cancer"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("mnist")

    def test_load_is_deterministic_per_seed(self):
        first = load_dataset("letter", seed=4)
        second = load_dataset("letter", seed=4)
        assert np.allclose(first.data, second.data)
