"""Tests for plausible-anomaly injection."""

import numpy as np
import pytest

from repro.data.anomalies import inject_plausible_anomalies, scatter_anomalies


class TestInjection:
    def test_counts_and_labels(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(50, 3))
        stacked, labels = inject_plausible_anomalies(data, 5, rng=rng)
        assert stacked.shape == (55, 3)
        assert labels.sum() == 5
        assert labels[:50].sum() == 0

    def test_zero_anomalies(self):
        data = np.zeros((10, 2))
        stacked, labels = inject_plausible_anomalies(data, 0)
        assert stacked.shape == (10, 2)
        assert labels.sum() == 0

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            inject_plausible_anomalies(np.zeros((5, 2)), -1)

    def test_rejects_1d_data(self):
        with pytest.raises(ValueError):
            inject_plausible_anomalies(np.zeros(5), 1)

    def test_explicit_ranges_respected(self):
        rng = np.random.default_rng(1)
        data = rng.uniform(0.4, 0.6, size=(30, 2))
        ranges = [(0.0, 1.0), (0.0, 1.0)]
        stacked, labels = inject_plausible_anomalies(data, 10, feature_ranges=ranges,
                                                     rng=rng, edge_fraction=0.1)
        anomalies = stacked[labels == 1]
        assert np.all(anomalies >= 0.0)
        assert np.all(anomalies <= 1.0)
        # Every anomalous value sits within 10% of a range edge.
        near_edge = (anomalies <= 0.1) | (anomalies >= 0.9)
        assert np.all(near_edge)

    def test_wrong_ranges_length_raises(self):
        with pytest.raises(ValueError):
            inject_plausible_anomalies(np.zeros((5, 2)), 1, feature_ranges=[(0, 1)])

    def test_anomalies_are_extreme_relative_to_normals(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(200, 4))
        stacked, labels = inject_plausible_anomalies(data, 20, rng=rng)
        normal_std = data.std()
        anomaly_deviation = np.abs(stacked[labels == 1] - data.mean(axis=0)).mean()
        assert anomaly_deviation > normal_std


class TestScatter:
    def test_shuffling_preserves_pairing(self):
        data = np.arange(20, dtype=float).reshape(10, 2)
        labels = np.array([0] * 8 + [1] * 2)
        shuffled_data, shuffled_labels = scatter_anomalies(
            data, labels, np.random.default_rng(3)
        )
        assert shuffled_labels.sum() == 2
        # The rows flagged anomalous are still the original anomalous rows.
        original_anomalies = {tuple(row) for row in data[labels == 1]}
        shuffled_anomalies = {tuple(row) for row in shuffled_data[shuffled_labels == 1]}
        assert original_anomalies == shuffled_anomalies

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            scatter_anomalies(np.zeros((5, 2)), np.zeros(4))
