"""Tests for CSV dataset import/export."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.io import load_dataset_csv, save_dataset_csv
from repro.data.registry import load_dataset


class TestRoundTrip:
    def test_save_and_load_preserves_content(self, tmp_path):
        dataset = load_dataset("power_plant", seed=0).subset(range(40))
        path = save_dataset_csv(dataset, tmp_path / "plant.csv")
        loaded = load_dataset_csv(path)
        assert loaded.num_samples == dataset.num_samples
        assert loaded.num_features == dataset.num_features
        assert np.array_equal(loaded.labels, dataset.labels)
        assert np.allclose(loaded.data, dataset.data, rtol=1e-8)
        assert loaded.feature_names == dataset.feature_names

    def test_custom_label_column(self, tmp_path):
        dataset = Dataset("toy", np.arange(6, dtype=float).reshape(3, 2),
                          np.array([0, 1, 0]), feature_names=["a", "b"])
        path = save_dataset_csv(dataset, tmp_path / "toy.csv", label_column="is_bad")
        loaded = load_dataset_csv(path, label_column="is_bad")
        assert loaded.num_anomalies == 1

    def test_label_column_collision_raises(self, tmp_path):
        dataset = Dataset("toy", np.zeros((2, 1)), np.zeros(2), feature_names=["label"])
        with pytest.raises(ValueError):
            save_dataset_csv(dataset, tmp_path / "bad.csv")


class TestLoading:
    def _write(self, tmp_path, text, name="data.csv"):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return path

    def test_non_numeric_cells_are_hashed(self, tmp_path):
        path = self._write(tmp_path, "amount,merchant,label\n10.5,grocer,0\n9000,casino,1\n")
        dataset = load_dataset_csv(path)
        assert dataset.num_features == 2
        assert dataset.num_anomalies == 1
        merchant_column = dataset.feature_names.index("merchant")
        assert 0.0 <= dataset.data[0, merchant_column] < 1.0

    def test_unlabeled_file(self, tmp_path):
        path = self._write(tmp_path, "x,y\n1,2\n3,4\n")
        dataset = load_dataset_csv(path, label_column=None)
        assert dataset.num_anomalies == 0
        assert dataset.num_features == 2

    def test_string_labels_recognized(self, tmp_path):
        path = self._write(tmp_path, "x,label\n1,normal\n2,anomaly\n3,no\n4,yes\n")
        dataset = load_dataset_csv(path)
        assert dataset.labels.tolist() == [0, 1, 0, 1]

    def test_missing_label_column_raises(self, tmp_path):
        path = self._write(tmp_path, "x,y\n1,2\n")
        with pytest.raises(ValueError):
            load_dataset_csv(path, label_column="label")

    def test_empty_file_raises(self, tmp_path):
        path = self._write(tmp_path, "")
        with pytest.raises(ValueError):
            load_dataset_csv(path)

    def test_header_only_raises(self, tmp_path):
        path = self._write(tmp_path, "x,label\n")
        with pytest.raises(ValueError):
            load_dataset_csv(path)

    def test_ragged_row_raises(self, tmp_path):
        path = self._write(tmp_path, "x,y,label\n1,2,0\n3,0\n")
        with pytest.raises(ValueError):
            load_dataset_csv(path)

    def test_empty_cells_become_zero(self, tmp_path):
        path = self._write(tmp_path, "x,y,label\n1,,0\n2,3,1\n")
        dataset = load_dataset_csv(path)
        assert dataset.data[0, dataset.feature_names.index("y")] == 0.0

    def test_dataset_name_defaults_to_stem(self, tmp_path):
        path = self._write(tmp_path, "x,label\n1,0\n2,1\n", name="sensors.csv")
        assert load_dataset_csv(path).name == "sensors"
