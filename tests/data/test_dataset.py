"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.data.dataset import Dataset


def small_dataset():
    data = np.arange(12, dtype=float).reshape(6, 2)
    labels = np.array([0, 0, 1, 0, 1, 0])
    return Dataset(name="toy", data=data, labels=labels,
                   feature_names=["a", "b"])


class TestValidation:
    def test_valid_dataset(self):
        dataset = small_dataset()
        assert dataset.num_samples == 6
        assert dataset.num_features == 2
        assert dataset.num_anomalies == 2
        assert dataset.anomaly_fraction == pytest.approx(1 / 3)

    def test_rejects_1d_data(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.ones(4), np.zeros(4))

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.ones((4, 2)), np.zeros(3))

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.ones((3, 2)), np.array([0, 1, 2]))

    def test_rejects_wrong_feature_names_length(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.ones((3, 2)), np.zeros(3), feature_names=["only_one"])

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.ones((3, 2)), np.zeros((3, 1)))


class TestAccessors:
    def test_anomaly_indices(self):
        assert small_dataset().anomaly_indices.tolist() == [2, 4]

    def test_features_only_is_a_copy(self):
        dataset = small_dataset()
        features = dataset.features_only()
        features[0, 0] = 999.0
        assert dataset.data[0, 0] == 0.0

    def test_subset_preserves_labels(self):
        subset = small_dataset().subset([2, 3, 4])
        assert subset.num_samples == 3
        assert subset.labels.tolist() == [1, 0, 1]

    def test_shuffled_preserves_counts(self):
        shuffled = small_dataset().shuffled(seed=0)
        assert shuffled.num_anomalies == 2
        assert shuffled.num_samples == 6

    def test_summary_matches_table_row(self):
        summary = small_dataset().summary()
        assert summary["samples"] == 6
        assert summary["anomalies"] == 2
        assert summary["features"] == 2

    def test_repr_contains_name(self):
        assert "toy" in repr(small_dataset())
