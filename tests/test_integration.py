"""End-to-end integration tests spanning the whole pipeline.

These tests exercise the public API exactly the way the examples and the paper's
evaluation do: load a dataset, run Quorum, compare against baselines, and check the
qualitative claims (at a reduced, fast scale).
"""

import numpy as np

from repro import (
    QuorumConfig,
    QuorumDetector,
    detection_rate_curve,
    evaluate_top_k,
    load_dataset,
)
from repro.baselines import IsolationForestDetector, QNNClassifier
from repro.data.preprocessing import preprocess_records


class TestPublicApi:
    def test_version_and_exports(self):
        import repro

        assert repro.__version__
        assert "QuorumDetector" in repro.__all__

    def test_quickstart_flow(self):
        dataset = load_dataset("power_plant", seed=3).subset(range(150))
        detector = QuorumDetector(ensemble_groups=10, shots=None, seed=2,
                                  anomaly_fraction_estimate=0.05)
        detector.fit(dataset)
        flags = detector.detect(num_anomalies=dataset.num_anomalies)
        report = evaluate_top_k(detector.anomaly_scores(), dataset.labels,
                                dataset.num_anomalies)
        assert flags.sum() == dataset.num_anomalies
        assert report.f1 > 0.3


class TestPaperClaimsAtSmallScale:
    def test_quorum_separates_breast_cancer_surrogate(self):
        dataset = load_dataset("breast_cancer", seed=0)
        detector = QuorumDetector(ensemble_groups=25, shots=4096, seed=1,
                                  bucket_probability=0.75,
                                  anomaly_fraction_estimate=10 / 367)
        detector.fit(dataset)
        curve = detection_rate_curve(detector.anomaly_scores(), dataset.labels)
        # Paper: ~80%+ of anomalies within the top 10% of scores.
        assert curve.rate_at(0.10) >= 0.6

    def test_quorum_beats_untrained_guess_on_every_dataset(self):
        for name in ("breast_cancer", "power_plant"):
            dataset = load_dataset(name, seed=0)
            detector = QuorumDetector(ensemble_groups=15, shots=None, seed=4)
            detector.fit(dataset)
            report = evaluate_top_k(detector.anomaly_scores(), dataset.labels,
                                    dataset.num_anomalies)
            assert report.f1 > 2 * dataset.anomaly_fraction

    def test_shot_noise_resilience(self):
        dataset = load_dataset("power_plant", seed=0).subset(range(300))
        exact = QuorumDetector(ensemble_groups=12, shots=None, seed=6).fit(dataset)
        shots = QuorumDetector(ensemble_groups=12, shots=1024, seed=6).fit(dataset)
        exact_curve = detection_rate_curve(exact.anomaly_scores(), dataset.labels)
        shots_curve = detection_rate_curve(shots.anomaly_scores(), dataset.labels)
        assert abs(exact_curve.rate_at(0.2) - shots_curve.rate_at(0.2)) <= 0.35

    def test_quorum_competitive_with_isolation_forest_on_easy_data(self):
        dataset = load_dataset("power_plant", seed=0).subset(range(250))
        quorum = QuorumDetector(ensemble_groups=15, shots=None, seed=7).fit(dataset)
        forest_scores = IsolationForestDetector(num_trees=50, seed=7).fit_scores(
            dataset.data)
        quorum_report = evaluate_top_k(quorum.anomaly_scores(), dataset.labels,
                                       dataset.num_anomalies)
        forest_report = evaluate_top_k(forest_scores, dataset.labels,
                                       dataset.num_anomalies)
        assert quorum_report.f1 >= forest_report.f1 - 0.35

    def test_supervised_qnn_is_conservative(self):
        dataset = load_dataset("breast_cancer", seed=0)
        qnn = QNNClassifier(epochs=20, seed=3)
        qnn.fit(dataset.data, dataset.labels)
        predictions = qnn.predict(dataset.data)
        # The supervised baseline flags no more samples than twice the true
        # anomaly count -- the "overly conservative" behaviour the paper reports.
        assert predictions.sum() <= 2 * dataset.num_anomalies


class TestCustomDataFlow:
    def test_record_pipeline_feeds_detector(self):
        rng = np.random.default_rng(0)
        records = []
        for index in range(60):
            records.append({
                "amount": float(rng.normal(50, 5)),
                "merchant": "grocer" if index % 2 else "pharmacy",
                "is_fraud": 0,
            })
        for _ in range(4):
            records.append({
                "amount": float(rng.normal(5000, 100)),
                "merchant": "casino",
                "is_fraud": 1,
            })
        dataset = preprocess_records(records, label_key="is_fraud", name="fraud")
        detector = QuorumDetector(ensemble_groups=10, shots=None, seed=1,
                                  anomaly_fraction_estimate=0.08)
        detector.fit(dataset)
        report = evaluate_top_k(detector.anomaly_scores(), dataset.labels,
                                dataset.num_anomalies)
        assert report.recall >= 0.5
