"""Tests for bucket z-scoring and the AnomalyScores container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bucketing import BucketAssignment, assign_buckets
from repro.core.scoring import (
    AnomalyScores,
    BucketStatistics,
    bucket_deviations,
    bucket_statistics,
    reference_deviations,
)


class TestBucketDeviations:
    def test_outlier_gets_largest_deviation(self):
        buckets = BucketAssignment(buckets=((0, 1, 2, 3, 4),))
        p1 = np.array([0.1, 0.11, 0.09, 0.1, 0.45])
        deviations = bucket_deviations(p1, buckets)
        assert deviations.argmax() == 4
        assert deviations[4] > 1.5

    def test_identical_values_give_zero(self):
        buckets = BucketAssignment(buckets=((0, 1, 2),))
        deviations = bucket_deviations(np.full(3, 0.2), buckets)
        assert np.allclose(deviations, 0.0)

    def test_deviations_computed_per_bucket(self):
        buckets = BucketAssignment(buckets=((0, 1), (2, 3)))
        p1 = np.array([0.1, 0.3, 0.5, 0.7])
        deviations = bucket_deviations(p1, buckets)
        # Within each two-sample bucket, both members are exactly one std away.
        assert np.allclose(deviations, 1.0)

    def test_size_mismatch_raises(self):
        buckets = BucketAssignment(buckets=((0, 1),))
        with pytest.raises(ValueError):
            bucket_deviations(np.zeros(3), buckets)

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_deviations_are_nonnegative_and_finite(self, seed):
        rng = np.random.default_rng(seed)
        p1 = rng.uniform(0, 0.5, size=40)
        buckets = assign_buckets(40, 8, rng)
        deviations = bucket_deviations(p1, buckets)
        assert np.all(deviations >= 0.0)
        assert np.all(np.isfinite(deviations))


class TestBucketStatistics:
    def test_statistics_match_numpy_per_bucket(self):
        buckets = BucketAssignment(buckets=((0, 2), (1, 3, 4)))
        p1 = np.array([0.1, 0.3, 0.5, 0.7, 0.2])
        means, stds = bucket_statistics(p1, buckets)
        assert means[0] == p1[[0, 2]].mean()
        assert stds[0] == p1[[0, 2]].std()
        assert means[1] == p1[[1, 3, 4]].mean()
        assert stds[1] == p1[[1, 3, 4]].std()

    def test_size_mismatch_raises(self):
        buckets = BucketAssignment(buckets=((0, 1),))
        with pytest.raises(ValueError):
            bucket_statistics(np.zeros(5), buckets)

    def test_precomputed_statistics_reproduce_deviations_bitwise(self):
        rng = np.random.default_rng(3)
        p1 = rng.uniform(0, 0.5, size=30)
        buckets = assign_buckets(30, 6, np.random.default_rng(1))
        plain = bucket_deviations(p1, buckets)
        reused = bucket_deviations(p1, buckets,
                                   statistics=bucket_statistics(p1, buckets))
        assert np.array_equal(plain, reused)

    def test_statistics_hoist_degenerate_bucket_mask(self):
        buckets = BucketAssignment(buckets=((0, 1), (2, 3)))
        p1 = np.array([0.1, 0.3, 0.2, 0.2])  # second bucket is degenerate
        statistics = bucket_statistics(p1, buckets)
        assert isinstance(statistics, BucketStatistics)
        assert statistics.live.tolist() == [True, False]
        assert statistics.num_buckets == 2
        # Tuple compatibility: unpacking and indexing see (means, stds).
        means, stds = statistics
        assert means is statistics.means and stds is statistics.stds
        assert statistics[0] is statistics.means
        assert statistics[1] is statistics.stds
        assert len(statistics) == 2

    def test_legacy_tuple_statistics_still_accepted_bitwise(self):
        rng = np.random.default_rng(7)
        p1 = rng.uniform(0, 0.5, size=24)
        buckets = assign_buckets(24, 6, np.random.default_rng(2))
        statistics = bucket_statistics(p1, buckets)
        legacy = bucket_deviations(
            p1, buckets, statistics=(statistics.means, statistics.stds))
        assert np.array_equal(legacy, bucket_deviations(p1, buckets))

    def test_mask_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="live mask"):
            reference_deviations(np.zeros(2), np.zeros(3), np.ones(3),
                                 live=np.ones(2, dtype=bool))

    def test_precomputed_mask_reproduces_reference_deviations_bitwise(self):
        rng = np.random.default_rng(11)
        p1 = rng.uniform(0, 0.5, size=40)
        buckets = assign_buckets(40, 8, rng)
        statistics = bucket_statistics(p1, buckets)
        probes = rng.uniform(0, 1, size=9)
        plain = reference_deviations(probes, statistics.means, statistics.stds)
        masked = reference_deviations(probes, statistics.means,
                                      statistics.stds, live=statistics.live)
        assert np.array_equal(plain, masked)


class TestReferenceDeviations:
    def test_matches_mean_absolute_z_over_buckets(self):
        means = np.array([0.2, 0.4])
        stds = np.array([0.1, 0.2])
        p1 = np.array([0.3])
        expected = (abs(0.3 - 0.2) / 0.1 + abs(0.3 - 0.4) / 0.2) / 2.0
        assert np.allclose(reference_deviations(p1, means, stds), expected)

    def test_degenerate_buckets_contribute_zero(self):
        means = np.array([0.2, 0.4])
        stds = np.array([0.1, 0.0])  # the second bucket had identical values
        p1 = np.array([0.3])
        expected = (abs(0.3 - 0.2) / 0.1) / 2.0  # averaged over ALL buckets
        assert np.allclose(reference_deviations(p1, means, stds), expected)

    def test_all_degenerate_buckets_give_zero(self):
        scores = reference_deviations(np.array([0.1, 0.9]),
                                      np.array([0.5]), np.array([0.0]))
        assert np.array_equal(scores, np.zeros(2))

    def test_far_samples_score_higher(self):
        rng = np.random.default_rng(0)
        p1 = rng.uniform(0.2, 0.3, size=50)
        buckets = assign_buckets(50, 10, rng)
        means, stds = bucket_statistics(p1, buckets)
        near = reference_deviations(np.array([0.25]), means, stds)
        far = reference_deviations(np.array([0.9]), means, stds)
        assert far[0] > near[0]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            reference_deviations(np.zeros(2), np.zeros(3), np.zeros(2))

    def test_empty_reference_raises(self):
        with pytest.raises(ValueError):
            reference_deviations(np.zeros(2), np.zeros(0), np.zeros(0))


class TestAnomalyScores:
    def _scores(self):
        return AnomalyScores(scores=np.array([1.0, 5.0, 3.0, 0.5]), num_runs=2)

    def test_ranking(self):
        assert self._scores().ranking().tolist() == [1, 2, 0, 3]

    def test_top_k(self):
        assert self._scores().top_k(2).tolist() == [1, 2]

    def test_top_k_out_of_range(self):
        with pytest.raises(ValueError):
            self._scores().top_k(10)

    def test_predictions_by_count(self):
        flags = self._scores().predictions(num_flagged=1)
        assert flags.tolist() == [0, 1, 0, 0]

    def test_predictions_by_contamination(self):
        flags = self._scores().predictions(contamination=0.5)
        assert flags.sum() == 2

    def test_predictions_requires_exactly_one_argument(self):
        with pytest.raises(ValueError):
            self._scores().predictions()
        with pytest.raises(ValueError):
            self._scores().predictions(num_flagged=1, contamination=0.5)

    def test_invalid_contamination_raises(self):
        with pytest.raises(ValueError):
            self._scores().predictions(contamination=1.5)

    def test_mean_scores(self):
        assert np.allclose(self._scores().mean_scores(),
                           np.array([0.5, 2.5, 1.5, 0.25]))

    def test_threshold_at_percentile(self):
        assert self._scores().threshold_at_percentile(100) == 5.0

    def test_merge(self):
        merged = self._scores().merged_with(self._scores())
        assert merged.num_runs == 4
        assert np.allclose(merged.scores, np.array([2.0, 10.0, 6.0, 1.0]))

    def test_merge_size_mismatch_raises(self):
        other = AnomalyScores(scores=np.zeros(3))
        with pytest.raises(ValueError):
            self._scores().merged_with(other)

    def test_empty_scores_raise(self):
        with pytest.raises(ValueError):
            AnomalyScores(scores=np.array([]))
