"""Tests for uniform random feature selection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.feature_selection import select_feature_subset


class TestSelection:
    def test_selects_requested_count(self):
        selected = select_feature_subset(30, 7, np.random.default_rng(0))
        assert selected.shape == (7,)
        assert len(set(selected.tolist())) == 7

    def test_small_dataset_uses_all_features(self):
        selected = select_feature_subset(5, 7, np.random.default_rng(0))
        assert sorted(selected.tolist()) == [0, 1, 2, 3, 4]

    def test_indices_sorted_and_in_range(self):
        selected = select_feature_subset(20, 6, np.random.default_rng(1))
        assert list(selected) == sorted(selected)
        assert selected.min() >= 0
        assert selected.max() < 20

    def test_different_rngs_give_different_subsets(self):
        first = select_feature_subset(30, 7, np.random.default_rng(1))
        second = select_feature_subset(30, 7, np.random.default_rng(2))
        assert not np.array_equal(first, second)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            select_feature_subset(0, 3)
        with pytest.raises(ValueError):
            select_feature_subset(3, 0)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_no_duplicates_ever(self, seed):
        selected = select_feature_subset(16, 7, np.random.default_rng(seed))
        assert len(set(selected.tolist())) == len(selected)

    def test_uniform_coverage_over_many_draws(self):
        rng = np.random.default_rng(7)
        counts = np.zeros(10)
        for _ in range(2000):
            counts[select_feature_subset(10, 3, rng)] += 1
        frequencies = counts / counts.sum()
        assert np.all(np.abs(frequencies - 0.1) < 0.02)
