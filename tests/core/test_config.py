"""Tests for QuorumConfig validation and derived properties."""

import pytest

from repro.core.config import QuorumConfig


class TestValidation:
    def test_defaults_are_valid(self):
        config = QuorumConfig()
        assert config.num_qubits == 3
        assert config.total_circuit_qubits == 7
        assert config.features_per_circuit == 7

    @pytest.mark.parametrize("overrides", [
        {"num_qubits": 1},
        {"num_layers": 0},
        {"entanglement": "star"},
        {"ensemble_groups": 0},
        {"shots": 0},
        {"bucket_probability": 1.5},
        {"anomaly_fraction_estimate": 0.0},
        {"default_anomaly_fraction": 1.0},
        {"backend": "qasm"},
        {"n_jobs": 0},
        {"compression_levels": ()},
        {"compression_levels": (0,)},
        {"compression_levels": (5,)},
        {"feature_scaling": "weird"},
        {"noisy": True},  # noisy requires the density_matrix backend
    ])
    def test_invalid_values_raise(self, overrides):
        with pytest.raises(ValueError):
            QuorumConfig(**overrides)

    def test_noisy_with_density_matrix_backend_is_valid(self):
        config = QuorumConfig(backend="density_matrix", noisy=True)
        assert config.noisy


class TestDerivedProperties:
    def test_default_compression_sweep(self):
        assert QuorumConfig(num_qubits=3).effective_compression_levels == (1, 2)
        assert QuorumConfig(num_qubits=4).effective_compression_levels == (1, 2, 3)

    def test_explicit_compression_levels(self):
        config = QuorumConfig(compression_levels=[2])
        assert config.effective_compression_levels == (2,)

    def test_effective_anomaly_fraction(self):
        assert QuorumConfig().effective_anomaly_fraction == 0.05
        assert QuorumConfig(anomaly_fraction_estimate=0.1).effective_anomaly_fraction == 0.1

    def test_feature_ceiling_modes(self):
        config = QuorumConfig(feature_scaling="circuit_sqrt")
        assert config.feature_ceiling(30) == pytest.approx(1.0 / 7 ** 0.5)
        assert config.feature_ceiling(5) == pytest.approx(1.0 / 5 ** 0.5)
        config = QuorumConfig(feature_scaling="dataset_sqrt")
        assert config.feature_ceiling(16) == pytest.approx(0.25)
        config = QuorumConfig(feature_scaling="dataset_linear")
        assert config.feature_ceiling(10) == pytest.approx(0.1)

    def test_feature_ceiling_rejects_empty(self):
        with pytest.raises(ValueError):
            QuorumConfig().feature_ceiling(0)

    def test_with_overrides_returns_new_config(self):
        base = QuorumConfig()
        modified = base.with_overrides(ensemble_groups=5)
        assert base.ensemble_groups == 50
        assert modified.ensemble_groups == 5

    def test_describe_contains_key_fields(self):
        description = QuorumConfig(seed=9).describe()
        assert description["circuit_qubits"] == 7
        assert description["seed"] == 9


class TestDictRoundTrip:
    def test_to_dict_from_dict_round_trips_every_field(self):
        config = QuorumConfig(num_qubits=4, ensemble_groups=7, shots=None,
                              compression_levels=(1, 3), seed=5,
                              executor="threads", n_jobs=2,
                              compile_circuits=False)
        assert QuorumConfig.from_dict(config.to_dict()) == config

    def test_to_dict_is_json_friendly(self):
        import json

        payload = QuorumConfig(compression_levels=(1, 2)).to_dict()
        restored = QuorumConfig.from_dict(json.loads(json.dumps(payload)))
        assert restored.compression_levels == (1, 2)

    def test_from_dict_rejects_unknown_fields(self):
        payload = QuorumConfig().to_dict()
        payload["mystery_knob"] = 1
        with pytest.raises(ValueError, match="mystery_knob"):
            QuorumConfig.from_dict(payload)

    def test_from_dict_validates_values(self):
        payload = QuorumConfig().to_dict()
        payload["backend"] = "quantum_annealer"
        with pytest.raises(ValueError):
            QuorumConfig.from_dict(payload)
