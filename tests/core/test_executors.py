"""Determinism and regression suite for the plan/execute architecture.

Three invariants guard the refactor:

* for a fixed seed, the ``serial``, ``threads``, and ``processes`` executors
  produce *identical* detector scores (the plans carry the member RNG, so the
  strategy that runs a plan cannot change its randomness);
* the fused ``(levels x samples)`` batch reproduces the historical per-level
  loop (bit-identically for the engines that override it);
* the batched noisy circuit walk reproduces the per-sample walk to 1e-10.
"""

import pickle

import numpy as np
import pytest

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.core.config import QuorumConfig
from repro.core.detector import QuorumDetector
from repro.core.ensemble import batch_amplitudes
from repro.core.execution import (
    AnalyticEngine,
    DensityMatrixEngine,
    StatevectorEngine,
)
from repro.core.parallel import (
    FusedExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    get_executor,
)


def toy_data(num_samples=50, num_features=9, seed=3):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(num_samples, num_features))


def make_batch(num_samples=12, num_qubits=3, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.0, 1.0 / np.sqrt(2 ** num_qubits - 1),
                         size=(num_samples, 2 ** num_qubits - 1))
    return batch_amplitudes(values, num_qubits)


class TestExecutorRegistry:
    def test_all_strategies_registered(self):
        assert set(available_executors()) == {"auto", "serial", "threads",
                                              "processes", "fused"}

    def test_get_executor_resolves_each(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("threads"), ThreadExecutor)
        assert isinstance(get_executor("processes"), ProcessExecutor)
        assert isinstance(get_executor("fused"), FusedExecutor)

    def test_unknown_executor_raises(self):
        with pytest.raises(ValueError, match="unknown executor"):
            get_executor("distributed")

    def test_config_validates_executor(self):
        assert QuorumConfig(executor="threads").executor == "threads"
        with pytest.raises(ValueError, match="executor"):
            QuorumConfig(executor="gpu")


class TestExecutorDeterminism:
    """Fixed seed => identical scores, whichever strategy runs the plans."""

    @pytest.mark.parametrize("shots", [None, 4096])
    def test_scores_identical_across_executors(self, shots):
        data = toy_data()
        scores = {}
        for executor in ("serial", "threads", "processes"):
            detector = QuorumDetector(ensemble_groups=4, shots=shots, seed=42,
                                      executor=executor, n_jobs=2)
            scores[executor] = detector.fit(data).anomaly_scores()
        assert np.array_equal(scores["serial"], scores["threads"])
        assert np.array_equal(scores["serial"], scores["processes"])

    def test_noisy_backend_identical_across_executors(self):
        data = toy_data(num_samples=16, num_features=4)
        scores = {}
        for executor in ("serial", "threads"):
            detector = QuorumDetector(ensemble_groups=2, shots=256, seed=9,
                                      num_qubits=2, backend="density_matrix",
                                      noisy=True, executor=executor, n_jobs=2)
            scores[executor] = detector.fit(data).anomaly_scores()
        assert np.array_equal(scores["serial"], scores["threads"])

    @pytest.mark.parametrize("shots", [None, 4096])
    def test_fused_scores_identical_to_serial(self, shots):
        data = toy_data()
        serial = QuorumDetector(ensemble_groups=4, shots=shots, seed=42,
                                executor="serial").fit(data)
        fused = QuorumDetector(ensemble_groups=4, shots=shots, seed=42,
                               executor="fused").fit(data)
        forced = QuorumDetector(ensemble_groups=4, shots=shots, seed=42,
                                fused_members=True).fit(data)
        assert np.array_equal(serial.anomaly_scores(), fused.anomaly_scores())
        assert np.array_equal(serial.anomaly_scores(), forced.anomaly_scores())

    def test_fused_noisy_scores_and_rng_streams_bitwise(self):
        """Fused vs serial on the noisy path: scores AND the post-run member
        RNG streams must match bit for bit (the fused path draws shot noise
        from each member's own restored generator in member-major order)."""
        from repro.core.parallel import derive_member_seeds, run_ensemble_members

        # run_ensemble_members takes normalized rows (squared subsets <= 1).
        data = toy_data(num_samples=16, num_features=4) * 0.4
        seeds = derive_member_seeds(9, 3)
        base = dict(ensemble_groups=3, shots=256, seed=9, num_qubits=2,
                    backend="density_matrix", noisy=True)
        serial_results, serial_plans = run_ensemble_members(
            data, QuorumConfig(**base, executor="serial"), seeds,
            return_plans=True)
        fused_results, fused_plans = run_ensemble_members(
            data, QuorumConfig(**base, executor="fused"), seeds,
            return_plans=True)
        for serial_result, fused_result in zip(serial_results, fused_results):
            assert np.array_equal(serial_result.deviations,
                                  fused_result.deviations)
            for level in serial_result.bucket_statistics:
                for side in (0, 1):
                    assert np.array_equal(
                        serial_result.bucket_statistics[level][side],
                        fused_result.bucket_statistics[level][side])
        for serial_plan, fused_plan in zip(serial_plans, fused_plans):
            assert (serial_plan.rng.bit_generator.state
                    == fused_plan.rng.bit_generator.state)

    def test_fused_statevector_falls_back_per_member(self):
        data = toy_data(num_samples=12, num_features=4)
        base = dict(ensemble_groups=2, shots=128, seed=9, num_qubits=2,
                    backend="statevector")
        serial = QuorumDetector(**base, executor="serial").fit(data)
        fused = QuorumDetector(**base, executor="fused").fit(data)
        assert np.array_equal(serial.anomaly_scores(), fused.anomaly_scores())

    def test_no_fused_members_disables_fusion(self):
        config = QuorumConfig(executor="fused", fused_members=False)
        assert not config.wants_fused_members
        assert QuorumConfig(executor="fused").wants_fused_members
        assert QuorumConfig(fused_members=True).wants_fused_members
        assert not QuorumConfig().wants_fused_members

    def test_auto_matches_explicit_processes(self):
        data = toy_data()
        auto = QuorumDetector(ensemble_groups=3, shots=None, seed=1,
                              executor="auto", n_jobs=2).fit(data)
        explicit = QuorumDetector(ensemble_groups=3, shots=None, seed=1,
                                  executor="processes", n_jobs=2).fit(data)
        assert np.array_equal(auto.anomaly_scores(), explicit.anomaly_scores())

    def test_executor_recorded_in_metadata(self):
        detector = QuorumDetector(ensemble_groups=2, shots=None, seed=1,
                                  executor="threads", n_jobs=2)
        detector.fit(toy_data(num_samples=20))
        assert detector.diagnostics()["executor"] == "threads"


class TestFusedLevelBatch:
    """p1_levels_batch == the historical per-level p1_batch loop."""

    @pytest.mark.parametrize("engine_cls", [AnalyticEngine, DensityMatrixEngine])
    @pytest.mark.parametrize("shots", [None, 2048])
    def test_fused_matches_per_level_loop_bitwise(self, engine_cls, shots):
        ansatz = RandomAutoencoderAnsatz(3, seed=21)
        batch = make_batch(seed=1)
        levels = [1, 2]
        fused = engine_cls(
            shots=shots, rng=np.random.default_rng(5)
        ).p1_levels_batch(batch, ansatz, levels)
        loop_engine = engine_cls(shots=shots, rng=np.random.default_rng(5))
        looped = np.stack([loop_engine.p1_batch(batch, ansatz, level)
                           for level in levels])
        assert fused.shape == (2, batch.shape[0])
        assert np.array_equal(fused, looped)

    def test_statevector_default_stacking_matches_loop(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=22)
        batch = make_batch(seed=2)
        fused = StatevectorEngine(
            shots=128, rng=np.random.default_rng(3)
        ).p1_levels_batch(batch, ansatz, [1, 2])
        loop_engine = StatevectorEngine(shots=128, rng=np.random.default_rng(3))
        looped = np.stack([loop_engine.p1_batch(batch, ansatz, level)
                           for level in [1, 2]])
        assert np.array_equal(fused, looped)

    def test_fused_noisy_matches_per_level_loop(self):
        from repro.quantum.backends import FakeBrisbane

        ansatz = RandomAutoencoderAnsatz(2, seed=23)
        batch = make_batch(num_samples=4, num_qubits=2, seed=3)
        noise = FakeBrisbane(5).to_noise_model()
        fused = DensityMatrixEngine(
            shots=None, noise_model=noise, gate_level_encoding=True
        ).p1_levels_batch(batch, ansatz, [1, 2])
        loop_engine = DensityMatrixEngine(shots=None, noise_model=noise,
                                          gate_level_encoding=True)
        looped = np.stack([loop_engine.p1_batch(batch, ansatz, level)
                           for level in [1, 2]])
        assert np.allclose(fused, looped, atol=1e-10)

    def test_empty_levels_rejected(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=24)
        with pytest.raises(ValueError, match="at least one compression level"):
            AnalyticEngine(shots=None).p1_levels_batch(make_batch(), ansatz, [])

    def test_out_of_range_level_rejected(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=25)
        with pytest.raises(ValueError, match="compression level"):
            AnalyticEngine(shots=None).p1_levels_batch(make_batch(), ansatz,
                                                       [1, 7])


class TestBatchedNoisyWalk:
    """The batched circuit walk == the per-sample reference walk (<= 1e-10)."""

    @pytest.mark.parametrize("gate_level", [False, True])
    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_noiseless_walks_agree(self, gate_level, level):
        ansatz = RandomAutoencoderAnsatz(2, seed=31)
        batch = make_batch(num_samples=5, num_qubits=2, seed=4)
        engine = DensityMatrixEngine(shots=None,
                                     gate_level_encoding=gate_level)
        batched = engine.p1_batch_circuit_level(batch, ansatz, level)
        per_sample = engine.p1_per_sample_circuit_level(batch, ansatz, level)
        assert np.allclose(batched, per_sample, atol=1e-10)

    @pytest.mark.parametrize("gate_level", [False, True])
    def test_noisy_walks_agree(self, gate_level):
        from repro.quantum.backends import FakeBrisbane

        ansatz = RandomAutoencoderAnsatz(2, seed=32)
        batch = make_batch(num_samples=4, num_qubits=2, seed=5)
        noise = FakeBrisbane(5).to_noise_model()
        engine = DensityMatrixEngine(shots=None, noise_model=noise,
                                     gate_level_encoding=gate_level)
        batched = engine.p1_batch_circuit_level(batch, ansatz, 1)
        per_sample = engine.p1_per_sample_circuit_level(batch, ansatz, 1)
        assert np.allclose(batched, per_sample, atol=1e-10)

    def test_chunked_walk_matches_unchunked(self):
        from repro.quantum.simulator import BatchedDensityMatrixSimulator
        from repro.algorithms.autoencoder import build_autoencoder_circuit

        ansatz = RandomAutoencoderAnsatz(2, seed=33)
        batch = make_batch(num_samples=6, num_qubits=2, seed=6)
        circuits = [build_autoencoder_circuit(row, ansatz, 1, measure=False)
                    for row in batch]
        walker = BatchedDensityMatrixSimulator()
        unchunked = walker.evolve_batch(circuits)
        walker.MAX_FLAT_ELEMENTS = 2 ** 5  # forces one-circuit chunks
        chunked = walker.evolve_batch(circuits)
        assert np.allclose(unchunked, chunked, atol=1e-12)

    def test_structurally_different_circuits_grouped_correctly(self):
        """Zero-amplitude features elide prep rotations; grouping must scatter
        results back into input order."""
        ansatz = RandomAutoencoderAnsatz(2, seed=34)
        batch = make_batch(num_samples=4, num_qubits=2, seed=7)
        # Make two samples structurally different: all mass on the overflow
        # state zeroes several multiplexed-RY angles.
        sparse = np.zeros(4)
        sparse[-1] = 1.0
        batch[1] = sparse
        batch[3] = sparse
        engine = DensityMatrixEngine(shots=None, gate_level_encoding=True)
        batched = engine.p1_batch_circuit_level(batch, ansatz, 1)
        per_sample = engine.p1_per_sample_circuit_level(batch, ansatz, 1)
        assert np.allclose(batched, per_sample, atol=1e-10)


class TestMemberPlans:
    def test_plans_are_picklable_and_reusable(self):
        from repro.core.ensemble import execute_member, plan_member

        config = QuorumConfig(ensemble_groups=1, shots=None, seed=0)
        data = toy_data(num_samples=30)
        normalized = data / (np.max(data) * np.sqrt(7))
        plan = plan_member(30, 9, config, member_index=2, member_seed=77)
        restored = pickle.loads(pickle.dumps(plan))
        original = execute_member(normalized, plan, config)
        roundtripped = execute_member(normalized, restored, config)
        assert np.array_equal(original.deviations, roundtripped.deviations)
        assert original.member_index == roundtripped.member_index == 2

    def test_plan_plus_execute_equals_run_ensemble_member(self):
        from repro.core.ensemble import (
            execute_member,
            plan_member,
            run_ensemble_member,
        )

        config = QuorumConfig(ensemble_groups=1, shots=4096, seed=0)
        data = toy_data(num_samples=40)
        normalized = data / (np.max(data) * np.sqrt(7))
        plan = plan_member(40, 9, config, member_index=0, member_seed=5)
        split = execute_member(normalized, plan, config)
        direct = run_ensemble_member(normalized, config, 0, member_seed=5)
        assert np.array_equal(split.deviations, direct.deviations)
        assert np.array_equal(split.selected_features, direct.selected_features)
        assert split.p1_statistics == direct.p1_statistics

    def test_planning_needs_only_the_shape(self):
        from repro.core.ensemble import plan_member

        config = QuorumConfig(ensemble_groups=1, shots=None, seed=0)
        plan = plan_member(100, 20, config, member_index=1, member_seed=3)
        assert plan.selected_features.shape == (7,)
        assert plan.buckets.num_samples == 100
        with pytest.raises(ValueError):
            plan_member(0, 20, config, 0, 0)
