"""Tests for the parallel ensemble dispatcher."""

import numpy as np
import pytest

from repro.core.config import QuorumConfig
from repro.core.parallel import derive_member_seeds, run_ensemble_members


def toy_data(seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0 / np.sqrt(7), size=(30, 8))


class TestSeedDerivation:
    def test_count_and_determinism(self):
        first = derive_member_seeds(42, 5)
        second = derive_member_seeds(42, 5)
        assert len(first) == 5
        assert first == second

    def test_distinct_seeds(self):
        seeds = derive_member_seeds(1, 50)
        assert len(set(seeds)) == 50

    def test_different_master_seed_differs(self):
        assert derive_member_seeds(1, 3) != derive_member_seeds(2, 3)

    def test_none_master_seed_is_random_but_valid(self):
        seeds = derive_member_seeds(None, 4)
        assert len(seeds) == 4

    def test_zero_count_raises(self):
        with pytest.raises(ValueError):
            derive_member_seeds(1, 0)


class TestRunMembers:
    def test_serial_execution(self):
        config = QuorumConfig(ensemble_groups=3, shots=None, seed=0, n_jobs=1)
        seeds = derive_member_seeds(0, 3)
        results = run_ensemble_members(toy_data(), config, seeds)
        assert len(results) == 3
        assert all(result.deviations.shape == (30,) for result in results)

    def test_parallel_matches_serial(self):
        data = toy_data()
        seeds = derive_member_seeds(3, 4)
        serial_config = QuorumConfig(ensemble_groups=4, shots=None, seed=3, n_jobs=1)
        parallel_config = QuorumConfig(ensemble_groups=4, shots=None, seed=3, n_jobs=2)
        serial = run_ensemble_members(data, serial_config, seeds)
        parallel = run_ensemble_members(data, parallel_config, seeds)
        for serial_result, parallel_result in zip(serial, parallel):
            assert np.allclose(serial_result.deviations, parallel_result.deviations)

    def test_explicit_bucket_size_passed_through(self):
        config = QuorumConfig(ensemble_groups=2, shots=None, seed=1)
        results = run_ensemble_members(toy_data(), config, derive_member_seeds(1, 2),
                                       bucket_size=15)
        assert all(result.bucket_size == 15 for result in results)

    def test_member_indices_are_sequential(self):
        config = QuorumConfig(ensemble_groups=3, shots=None, seed=1)
        results = run_ensemble_members(toy_data(), config, derive_member_seeds(1, 3))
        assert [result.member_index for result in results] == [0, 1, 2]
