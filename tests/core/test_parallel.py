"""Tests for the parallel ensemble dispatcher."""

import numpy as np
import pytest

from repro.core.config import QuorumConfig
from repro.core.parallel import derive_member_seeds, run_ensemble_members


def toy_data(seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0 / np.sqrt(7), size=(30, 8))


class TestSeedDerivation:
    def test_count_and_determinism(self):
        first = derive_member_seeds(42, 5)
        second = derive_member_seeds(42, 5)
        assert len(first) == 5
        assert first == second

    def test_distinct_seeds(self):
        seeds = derive_member_seeds(1, 50)
        assert len(set(seeds)) == 50

    def test_different_master_seed_differs(self):
        assert derive_member_seeds(1, 3) != derive_member_seeds(2, 3)

    def test_none_master_seed_is_random_but_valid(self):
        seeds = derive_member_seeds(None, 4)
        assert len(seeds) == 4

    def test_zero_count_raises(self):
        with pytest.raises(ValueError):
            derive_member_seeds(1, 0)


class TestRunMembers:
    def test_serial_execution(self):
        config = QuorumConfig(ensemble_groups=3, shots=None, seed=0, n_jobs=1)
        seeds = derive_member_seeds(0, 3)
        results = run_ensemble_members(toy_data(), config, seeds)
        assert len(results) == 3
        assert all(result.deviations.shape == (30,) for result in results)

    def test_parallel_matches_serial(self):
        data = toy_data()
        seeds = derive_member_seeds(3, 4)
        serial_config = QuorumConfig(ensemble_groups=4, shots=None, seed=3, n_jobs=1)
        parallel_config = QuorumConfig(ensemble_groups=4, shots=None, seed=3, n_jobs=2)
        serial = run_ensemble_members(data, serial_config, seeds)
        parallel = run_ensemble_members(data, parallel_config, seeds)
        for serial_result, parallel_result in zip(serial, parallel):
            assert np.allclose(serial_result.deviations, parallel_result.deviations)

    def test_explicit_bucket_size_passed_through(self):
        config = QuorumConfig(ensemble_groups=2, shots=None, seed=1)
        results = run_ensemble_members(toy_data(), config, derive_member_seeds(1, 2),
                                       bucket_size=15)
        assert all(result.bucket_size == 15 for result in results)

    def test_member_indices_are_sequential(self):
        config = QuorumConfig(ensemble_groups=3, shots=None, seed=1)
        results = run_ensemble_members(toy_data(), config, derive_member_seeds(1, 3))
        assert [result.member_index for result in results] == [0, 1, 2]


class TestExecutorSelectionAndFallback:
    def test_single_job_uses_serial(self, caplog):
        import logging

        config = QuorumConfig(ensemble_groups=2, shots=None, seed=1, n_jobs=1,
                              executor="processes")
        with caplog.at_level(logging.INFO, logger="repro.core.parallel"):
            run_ensemble_members(toy_data(), config, derive_member_seeds(1, 2))
        assert "'serial' executor" in caplog.text

    def test_threads_executor_matches_serial(self):
        data = toy_data()
        seeds = derive_member_seeds(5, 3)
        serial = run_ensemble_members(
            data, QuorumConfig(ensemble_groups=3, shots=4096, seed=5, n_jobs=1),
            seeds)
        threaded = run_ensemble_members(
            data, QuorumConfig(ensemble_groups=3, shots=4096, seed=5, n_jobs=2,
                               executor="threads"),
            seeds)
        for serial_result, threaded_result in zip(serial, threaded):
            assert np.array_equal(serial_result.deviations,
                                  threaded_result.deviations)

    def test_pool_creation_failure_falls_back_to_serial(self, caplog,
                                                        monkeypatch):
        import logging
        import pickle

        from repro.core import parallel

        class ExplodingExecutor(parallel.ProcessExecutor):
            def run(self, normalized_data, plans, config):
                raise pickle.PicklingError("cannot pickle the plans")

        monkeypatch.setitem(parallel._EXECUTORS, "processes", ExplodingExecutor)
        config = QuorumConfig(ensemble_groups=3, shots=None, seed=2, n_jobs=2,
                              executor="processes")
        seeds = derive_member_seeds(2, 3)
        with caplog.at_level(logging.INFO, logger="repro.core.parallel"):
            results = run_ensemble_members(toy_data(), config, seeds)
        assert len(results) == 3
        assert "falling back to serial" in caplog.text
        assert "'serial' executor" in caplog.text
        reference = run_ensemble_members(
            toy_data(), config.with_overrides(n_jobs=1), seeds)
        for result, expected in zip(results, reference):
            assert np.array_equal(result.deviations, expected.deviations)

    def test_runtime_error_from_pool_falls_back(self, monkeypatch):
        from repro.core import parallel

        class BrokenPool(parallel.ThreadExecutor):
            def run(self, normalized_data, plans, config):
                raise RuntimeError("context has already been set")

        monkeypatch.setitem(parallel._EXECUTORS, "threads", BrokenPool)
        config = QuorumConfig(ensemble_groups=2, shots=None, seed=3, n_jobs=2,
                              executor="threads")
        results = run_ensemble_members(toy_data(), config,
                                       derive_member_seeds(3, 2))
        assert [result.member_index for result in results] == [0, 1]

    def test_serial_strategy_errors_propagate(self, monkeypatch):
        from repro.core import parallel

        def broken_execute(normalized_data, plan, config, engine=None):
            raise RuntimeError("member exploded")

        monkeypatch.setattr(parallel, "execute_member", broken_execute)
        config = QuorumConfig(ensemble_groups=2, shots=None, seed=4, n_jobs=1)
        with pytest.raises(RuntimeError, match="member exploded"):
            run_ensemble_members(toy_data(), config, derive_member_seeds(4, 2))

    def test_fallback_after_partial_run_stays_bit_identical(self, monkeypatch):
        """A strategy that executes some members before failing must not leak
        their consumed RNG state into the serial fallback."""
        from repro.core import parallel

        class PartiallyFailingExecutor(parallel.ThreadExecutor):
            def run(self, normalized_data, plans, config):
                # Consume the first plan's RNG exactly like a real run would...
                parallel.execute_member(normalized_data, plans[0], config)
                # ...then die as if the pool broke mid-flight.
                raise RuntimeError("pool collapsed mid-run")

        monkeypatch.setitem(parallel._EXECUTORS, "threads",
                            PartiallyFailingExecutor)
        config = QuorumConfig(ensemble_groups=3, shots=4096, seed=6, n_jobs=2,
                              executor="threads")
        seeds = derive_member_seeds(6, 3)
        results = run_ensemble_members(toy_data(), config, seeds)
        reference = run_ensemble_members(
            toy_data(), config.with_overrides(n_jobs=1), seeds)
        for result, expected in zip(results, reference):
            assert np.array_equal(result.deviations, expected.deviations)
