"""Tests for ensemble members and batch amplitude encoding."""

import numpy as np
import pytest

from repro.core.config import QuorumConfig
from repro.core.ensemble import batch_amplitudes, run_ensemble_member
from repro.encoding.amplitude import amplitudes_from_features


def normalized_toy_data(num_samples=40, num_features=10, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 1.0 / np.sqrt(7), size=(num_samples, num_features))
    return data


class TestBatchAmplitudes:
    def test_matches_single_sample_encoding(self):
        values = normalized_toy_data(5, 7, 1)
        batch = batch_amplitudes(values, 3)
        for row in range(5):
            single = amplitudes_from_features(values[row], 3)
            assert np.allclose(batch[row], single)

    def test_rows_are_normalized(self):
        batch = batch_amplitudes(normalized_toy_data(20, 7, 2), 3)
        assert np.allclose(np.sum(batch ** 2, axis=1), 1.0)

    def test_too_many_features_raise(self):
        with pytest.raises(ValueError):
            batch_amplitudes(np.zeros((3, 8)), 3)

    def test_oversized_values_raise(self):
        with pytest.raises(ValueError):
            batch_amplitudes(np.ones((2, 7)), 3)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            batch_amplitudes(np.zeros(7), 3)


class TestEnsembleMember:
    def _config(self, **overrides):
        defaults = {"ensemble_groups": 1, "shots": None, "seed": 0}
        defaults.update(overrides)
        return QuorumConfig(**defaults)

    def test_result_structure(self):
        data = normalized_toy_data()
        result = run_ensemble_member(data, self._config(), member_index=3,
                                     member_seed=42)
        assert result.member_index == 3
        assert result.deviations.shape == (40,)
        assert result.num_runs == 2  # compression levels 1 and 2
        assert set(result.p1_statistics) == {1, 2}
        assert result.selected_features.shape == (7,)

    def test_deviations_nonnegative(self):
        result = run_ensemble_member(normalized_toy_data(), self._config(),
                                     member_index=0, member_seed=1)
        assert np.all(result.deviations >= 0.0)

    def test_same_seed_reproducible(self):
        data = normalized_toy_data()
        first = run_ensemble_member(data, self._config(), 0, member_seed=5)
        second = run_ensemble_member(data, self._config(), 0, member_seed=5)
        assert np.allclose(first.deviations, second.deviations)
        assert np.array_equal(first.selected_features, second.selected_features)

    def test_different_seeds_differ(self):
        data = normalized_toy_data()
        first = run_ensemble_member(data, self._config(), 0, member_seed=5)
        second = run_ensemble_member(data, self._config(), 0, member_seed=6)
        assert not np.allclose(first.deviations, second.deviations)

    def test_explicit_bucket_size_respected(self):
        data = normalized_toy_data()
        result = run_ensemble_member(data, self._config(), 0, member_seed=2,
                                     bucket_size=10)
        assert result.bucket_size == 10
        assert result.num_buckets == 4

    def test_explicit_compression_levels(self):
        config = self._config(compression_levels=(2,))
        result = run_ensemble_member(normalized_toy_data(), config, 0, member_seed=3)
        assert result.num_runs == 1
        assert set(result.p1_statistics) == {2}

    def test_fewer_features_than_capacity(self):
        data = normalized_toy_data(num_features=4)
        result = run_ensemble_member(data, self._config(), 0, member_seed=4)
        assert result.selected_features.shape == (4,)

    def test_rejects_1d_data(self):
        with pytest.raises(ValueError):
            run_ensemble_member(np.zeros(10), self._config(), 0, 0)


class TestServingState:
    """The plan/result fields the serving artifact persists."""

    def _config(self, **overrides):
        defaults = {"ensemble_groups": 1, "shots": 512, "seed": 0}
        defaults.update(overrides)
        return QuorumConfig(**defaults)

    def test_plan_snapshots_post_planning_rng_state(self):
        from repro.core.ensemble import execute_member, plan_member

        data = normalized_toy_data()
        plan = plan_member(40, 10, self._config(), 0, member_seed=7)
        assert plan.rng_state == plan.rng.bit_generator.state
        snapshot = dict(plan.rng_state)
        execute_member(data, plan, self._config())  # consumes shot noise
        # Execution advanced the live generator but not the snapshot.
        assert plan.rng.bit_generator.state != snapshot
        assert plan.rng_state == snapshot

    def test_restored_rng_replays_the_shot_noise_stream(self):
        from repro.core.ensemble import execute_member, plan_member

        data = normalized_toy_data()
        config = self._config()
        first = execute_member(data, plan_member(40, 10, config, 0, 7), config)
        # Rebuild the plan and execute again: same snapshot, same stream.
        second = execute_member(data, plan_member(40, 10, config, 0, 7), config)
        assert np.array_equal(first.deviations, second.deviations)

    def test_result_carries_per_level_bucket_statistics(self):
        result = run_ensemble_member(normalized_toy_data(), self._config(),
                                     member_index=0, member_seed=3)
        assert set(result.bucket_statistics) == {1, 2}
        for level, (means, stds) in result.bucket_statistics.items():
            assert means.shape == (result.num_buckets,)
            assert stds.shape == (result.num_buckets,)
            assert np.all(np.isfinite(means))
            assert np.all(stds >= 0)
