"""Tests for the SWAP-test execution engines (and their cross-validation)."""

import numpy as np
import pytest

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.core.ensemble import batch_amplitudes
from repro.core.execution import (
    AnalyticEngine,
    DensityMatrixEngine,
    StatevectorEngine,
    make_engine,
)
from repro.quantum.backends import FakeBrisbane


def make_batch(num_samples=8, num_qubits=3, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.0, 1.0 / np.sqrt(2 ** num_qubits - 1),
                         size=(num_samples, 2 ** num_qubits - 1))
    return batch_amplitudes(values, num_qubits)


class TestAnalyticEngine:
    def test_exact_probabilities_in_range(self):
        engine = AnalyticEngine(shots=None)
        ansatz = RandomAutoencoderAnsatz(3, seed=1)
        p1 = engine.p1_batch(make_batch(), ansatz, 1)
        assert p1.shape == (8,)
        assert np.all(p1 >= 0.0)
        assert np.all(p1 <= 0.5 + 1e-12)

    def test_zero_compression_gives_zero(self):
        engine = AnalyticEngine(shots=None)
        ansatz = RandomAutoencoderAnsatz(3, seed=2)
        assert np.allclose(engine.p1_batch(make_batch(), ansatz, 0), 0.0)

    def test_shot_noise_changes_values_but_not_scale(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=3)
        batch = make_batch()
        exact = AnalyticEngine(shots=None).p1_batch(batch, ansatz, 2)
        noisy = AnalyticEngine(shots=256,
                               rng=np.random.default_rng(0)).p1_batch(batch, ansatz, 2)
        assert not np.allclose(exact, noisy)
        assert np.max(np.abs(exact - noisy)) < 0.15

    def test_shot_noise_shrinks_with_more_shots(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=4)
        batch = make_batch(num_samples=40)
        exact = AnalyticEngine(shots=None).p1_batch(batch, ansatz, 1)
        few = AnalyticEngine(shots=64, rng=np.random.default_rng(1)).p1_batch(
            batch, ansatz, 1)
        many = AnalyticEngine(shots=8192, rng=np.random.default_rng(1)).p1_batch(
            batch, ansatz, 1)
        assert np.mean(np.abs(many - exact)) < np.mean(np.abs(few - exact))

    def test_single_sample_helper(self):
        engine = AnalyticEngine(shots=None)
        ansatz = RandomAutoencoderAnsatz(3, seed=5)
        batch = make_batch(num_samples=1)
        assert engine.p1_single(batch[0], ansatz, 1) == pytest.approx(
            engine.p1_batch(batch, ansatz, 1)[0])

    def test_rejects_bad_shapes(self):
        engine = AnalyticEngine(shots=None)
        ansatz = RandomAutoencoderAnsatz(3, seed=6)
        with pytest.raises(ValueError):
            engine.p1_batch(np.ones(8), ansatz, 1)
        with pytest.raises(ValueError):
            engine.p1_batch(np.ones((4, 4)), ansatz, 1)
        with pytest.raises(ValueError):
            engine.p1_batch(make_batch(), ansatz, 5)

    def test_invalid_shots_raise(self):
        with pytest.raises(ValueError):
            AnalyticEngine(shots=0)


class TestEngineCrossValidation:
    def test_analytic_matches_density_matrix(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=7)
        batch = make_batch(num_samples=4, seed=2)
        exact = AnalyticEngine(shots=None).p1_batch(batch, ansatz, 1)
        circuit_level = DensityMatrixEngine(shots=None).p1_batch(batch, ansatz, 1)
        assert np.allclose(exact, circuit_level, atol=1e-9)

    def test_analytic_matches_density_matrix_full_compression(self):
        ansatz = RandomAutoencoderAnsatz(2, seed=8)
        batch = make_batch(num_samples=3, num_qubits=2, seed=3)
        exact = AnalyticEngine(shots=None).p1_batch(batch, ansatz, 2)
        circuit_level = DensityMatrixEngine(shots=None).p1_batch(batch, ansatz, 2)
        assert np.allclose(exact, circuit_level, atol=1e-9)

    def test_statevector_engine_agrees_statistically(self):
        ansatz = RandomAutoencoderAnsatz(2, seed=9)
        batch = make_batch(num_samples=2, num_qubits=2, seed=4)
        exact = AnalyticEngine(shots=None).p1_batch(batch, ansatz, 1)
        sampled = StatevectorEngine(shots=3000, rng=np.random.default_rng(5),
                                    max_trajectories=150).p1_batch(batch, ansatz, 1)
        assert np.max(np.abs(exact - sampled)) < 0.06

    def test_noisy_engine_stays_close_to_ideal(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=10)
        batch = make_batch(num_samples=3, seed=5)
        exact = AnalyticEngine(shots=None).p1_batch(batch, ansatz, 1)
        noisy = DensityMatrixEngine(
            shots=None, noise_model=FakeBrisbane(7).to_noise_model(),
            gate_level_encoding=True,
        ).p1_batch(batch, ansatz, 1)
        assert np.max(np.abs(exact - noisy)) < 0.12


class TestMakeEngine:
    def test_analytic(self):
        assert isinstance(make_engine("analytic", 1024), AnalyticEngine)

    def test_density_matrix_with_noise(self):
        engine = make_engine("density_matrix", 1024, noisy=True)
        assert isinstance(engine, DensityMatrixEngine)
        assert engine.noise_model is not None
        assert engine.gate_level_encoding

    def test_statevector(self):
        assert isinstance(make_engine("statevector", 512), StatevectorEngine)

    def test_statevector_requires_shots(self):
        with pytest.raises(ValueError):
            StatevectorEngine(shots=None)

    def test_analytic_cannot_be_noisy(self):
        with pytest.raises(ValueError):
            make_engine("analytic", 1024, noisy=True)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            make_engine("tensor_network", 1024)
