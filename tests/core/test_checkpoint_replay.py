"""Regression suite for the prefix-checkpointed noisy level sweep.

The checkpointed walk (`DensityMatrixEngine.p1_levels_batch_circuit_level`)
must be indistinguishable from the two slower references it replaced:

* `p1_per_sample_circuit_level` -- one :class:`DensityMatrixSimulator` walk per
  sample per level (the ground truth, <= 1e-10);
* the pre-checkpoint per-level loop over `p1_batch_circuit_level` -- including
  **bitwise** identity of the shot-noise RNG stream, so fixed-seed detector
  scores are unchanged by the checkpoint.

Both pins are exercised across noise models, ``gate_level_encoding``, and both
numpy simulation backends, plus direct coverage of the checkpoint/replay API on
:class:`BatchedDensityMatrixSimulator`.
"""

import numpy as np
import pytest

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.algorithms.autoencoder import (
    build_autoencoder_prefix,
    build_autoencoder_suffix,
)
from repro.core.ensemble import batch_amplitudes
from repro.core.execution import DensityMatrixEngine
from repro.quantum.backends import FakeBrisbane
from repro.quantum.noise import NoiseModel, QuantumError, depolarizing_kraus
from repro.quantum.simulator import BatchedDensityMatrixSimulator


def make_batch(num_samples=6, num_qubits=2, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.0, 1.0 / np.sqrt(2 ** num_qubits - 1),
                         size=(num_samples, 2 ** num_qubits - 1))
    return batch_amplitudes(values, num_qubits)


def depolarizing_model():
    """A second noise-model flavour besides FakeBrisbane (gate errors only)."""
    return (
        NoiseModel()
        .add_all_single_qubit_error(QuantumError.from_kraus(
            depolarizing_kraus(0.01)))
        .add_all_two_qubit_error(QuantumError.from_kraus(
            depolarizing_kraus(0.03, 2)))
    )


NOISE_MODELS = {
    "brisbane": lambda total_qubits: FakeBrisbane(total_qubits).to_noise_model(),
    "depolarizing": lambda total_qubits: depolarizing_model(),
    "noiseless": lambda total_qubits: None,
}


class TestCheckpointedSweepAgainstReferences:
    @pytest.mark.parametrize("compile_circuits", [True, False])
    @pytest.mark.parametrize("noise_name", sorted(NOISE_MODELS))
    @pytest.mark.parametrize("gate_level", [False, True])
    def test_matches_per_sample_reference(self, noise_name, gate_level,
                                          compile_circuits):
        ansatz = RandomAutoencoderAnsatz(2, seed=41)
        batch = make_batch(seed=1)
        noise = NOISE_MODELS[noise_name](5)
        if noise is None and not gate_level:
            pytest.skip("noiseless initialize path never enters the circuit walk")
        engine = DensityMatrixEngine(shots=None, noise_model=noise,
                                     gate_level_encoding=gate_level,
                                     compile_circuits=compile_circuits)
        levels = [0, 1, 2]
        checkpointed = engine.p1_levels_batch(batch, ansatz, levels)
        reference = np.stack([
            engine.p1_per_sample_circuit_level(batch, ansatz, level)
            for level in levels
        ])
        assert checkpointed.shape == (3, batch.shape[0])
        assert np.allclose(checkpointed, reference, atol=1e-10)

    @pytest.mark.parametrize("compile_circuits", [True, False])
    @pytest.mark.parametrize("backend_name", ["numpy", "numpy-float32"])
    @pytest.mark.parametrize("noise_name", sorted(NOISE_MODELS))
    def test_matches_pre_checkpoint_per_level_loop(self, backend_name,
                                                   noise_name,
                                                   compile_circuits):
        ansatz = RandomAutoencoderAnsatz(2, seed=42)
        batch = make_batch(seed=2)
        noise = NOISE_MODELS[noise_name](5)
        engine = DensityMatrixEngine(shots=None, noise_model=noise,
                                     gate_level_encoding=True,
                                     simulation_backend=backend_name,
                                     compile_circuits=compile_circuits)
        levels = [0, 1, 2]
        checkpointed = engine.p1_levels_batch(batch, ansatz, levels)
        per_level = np.stack([
            engine.p1_batch_circuit_level(batch, ansatz, level)
            for level in levels
        ])
        # The kernels are row-independent, so splitting the walk at the
        # checkpoint must not change any sample's arithmetic -- on either
        # precision tier, compiled or interpreted.
        assert np.allclose(checkpointed, per_level, atol=1e-10)

    def test_compiled_sweep_matches_interpreted_sweep(self):
        """The compiled fast path and the gate-by-gate reference path are the
        same computation up to operator-fusion reassociation (<= 1e-10)."""
        ansatz = RandomAutoencoderAnsatz(2, seed=45)
        batch = make_batch(seed=6)
        noise = FakeBrisbane(5).to_noise_model()
        levels = [0, 1, 2]
        kwargs = dict(shots=None, noise_model=noise, gate_level_encoding=True)
        compiled = DensityMatrixEngine(**kwargs)
        interpreted = DensityMatrixEngine(compile_circuits=False, **kwargs)
        assert np.allclose(compiled.p1_levels_batch(batch, ansatz, levels),
                           interpreted.p1_levels_batch(batch, ansatz, levels),
                           atol=1e-10)

    def test_shot_noise_rng_stream_is_bitwise_identical(self):
        """The fused sweep consumes the binomial stream in the exact level-major
        order the historical per-level loop used."""
        ansatz = RandomAutoencoderAnsatz(2, seed=43)
        batch = make_batch(seed=3)
        noise = FakeBrisbane(5).to_noise_model()
        levels = [0, 1, 2]
        fused = DensityMatrixEngine(
            shots=2048, noise_model=noise, gate_level_encoding=True,
            rng=np.random.default_rng(11),
        ).p1_levels_batch(batch, ansatz, levels)
        loop_engine = DensityMatrixEngine(shots=2048, noise_model=noise,
                                          gate_level_encoding=True,
                                          rng=np.random.default_rng(11))
        looped = np.stack([
            loop_engine.p1_batch_circuit_level(batch, ansatz, level)
            for level in levels
        ])
        assert np.array_equal(fused, looped)

    def test_mixed_validity_sweep_is_rejected_up_front(self):
        """Every level of a sweep is validated, not just the first one: a sweep
        mixing valid and invalid levels fails before any simulation runs."""
        ansatz = RandomAutoencoderAnsatz(2, seed=44)
        batch = make_batch(seed=4)
        engine = DensityMatrixEngine(shots=None,
                                     noise_model=FakeBrisbane(5).to_noise_model(),
                                     gate_level_encoding=True)
        with pytest.raises(ValueError, match="compression level"):
            engine.p1_levels_batch(batch, ansatz, [1, 7])
        with pytest.raises(ValueError, match="compression level"):
            engine.p1_levels_batch(batch, ansatz, [1, -1])
        # Malformed amplitudes are also rejected once for the whole sweep,
        # independent of which levels are requested.
        with pytest.raises(ValueError, match="normalized"):
            engine.p1_levels_batch(batch * 2.0, ansatz, [1, 2])


class TestCheckpointReplayApi:
    def make_walker_inputs(self, noise=True, num_samples=4):
        ansatz = RandomAutoencoderAnsatz(2, seed=51)
        batch = make_batch(num_samples=num_samples, seed=5)
        model = FakeBrisbane(5).to_noise_model() if noise else None
        walker = BatchedDensityMatrixSimulator(noise_model=model)
        prefixes = [build_autoencoder_prefix(row, ansatz,
                                             gate_level_encoding=True)
                    for row in batch]
        return ansatz, batch, walker, prefixes

    def test_checkpoint_plus_replay_equals_single_walk(self):
        ansatz, batch, walker, prefixes = self.make_walker_inputs()
        checkpoint = walker.evolve_batch(prefixes)
        suffix = build_autoencoder_suffix(ansatz, 1, measure=False)
        replayed = walker.replay_suffix_batch(checkpoint, suffix)

        from repro.algorithms.autoencoder import build_autoencoder_circuit

        full = walker.evolve_batch([
            build_autoencoder_circuit(row, ansatz, 1, gate_level_encoding=True,
                                      measure=False)
            for row in batch
        ])
        assert np.allclose(replayed, full, atol=1e-12)

    def test_replay_leaves_the_checkpoint_untouched(self):
        ansatz, _, walker, prefixes = self.make_walker_inputs()
        checkpoint = walker.evolve_batch(prefixes)
        snapshot = checkpoint.copy()
        for level in (0, 1, 2):
            walker.replay_suffix_batch(
                checkpoint, build_autoencoder_suffix(ansatz, level, measure=False)
            )
        assert np.array_equal(checkpoint, snapshot)

    def test_replay_rejects_initialize_instructions(self):
        ansatz, batch, walker, prefixes = self.make_walker_inputs(noise=False)
        checkpoint = walker.evolve_batch(prefixes)
        from repro.quantum.circuit import QuantumCircuit

        bad = QuantumCircuit(5, 1)
        bad.initialize(np.array([1.0, 0.0]), [0])
        with pytest.raises(ValueError, match="suffix circuit"):
            walker.replay_suffix_batch(checkpoint, bad)

    def test_initial_rhos_shape_is_validated(self):
        ansatz, _, walker, prefixes = self.make_walker_inputs(noise=False)
        checkpoint = walker.evolve_batch(prefixes)
        with pytest.raises(ValueError, match="initial_rhos"):
            walker.evolve_batch(prefixes, initial_rhos=checkpoint[:-1])

    def test_chunked_replay_matches_unchunked(self):
        ansatz, _, walker, prefixes = self.make_walker_inputs(num_samples=6)
        checkpoint = walker.evolve_batch(prefixes)
        suffix = build_autoencoder_suffix(ansatz, 2, measure=False)
        unchunked = walker.replay_suffix_batch(checkpoint, suffix)
        walker.MAX_FLAT_ELEMENTS = 2 ** 5  # forces one-circuit chunks
        chunked = walker.replay_suffix_batch(checkpoint, suffix)
        assert np.allclose(unchunked, chunked, atol=1e-12)

    def test_copy_density_batch_is_an_independent_snapshot(self):
        from repro.quantum.backend import get_simulation_backend

        backend = get_simulation_backend("numpy")
        rhos = backend.density_from_states(backend.zero_states(3, 2))
        snapshot = backend.copy_density_batch(rhos)
        snapshot[0, 0, 0] = -1.0
        assert rhos[0, 0, 0] == 1.0
        with pytest.raises(ValueError, match="density batch"):
            backend.copy_density_batch(np.zeros((2, 4)))
