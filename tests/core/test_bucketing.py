"""Tests for bucket sizing and assignment."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bucketing import (
    assign_buckets,
    bucket_size_for_probability,
    probability_of_anomalous_bucket,
)


class TestProbability:
    def test_full_bucket_has_probability_one(self):
        assert probability_of_anomalous_bucket(100, 5, 100) == pytest.approx(1.0)

    def test_no_anomalies_gives_zero(self):
        assert probability_of_anomalous_bucket(100, 0, 10) == 0.0

    def test_known_hypergeometric_value(self):
        # P(at least one of 2 anomalies in a bucket of 5 from 10 samples)
        # = 1 - C(8,5)/C(10,5) = 1 - 56/252.
        expected = 1.0 - 56.0 / 252.0
        assert probability_of_anomalous_bucket(10, 2, 5) == pytest.approx(expected)

    def test_monotone_in_bucket_size(self):
        values = [probability_of_anomalous_bucket(200, 10, b) for b in range(1, 200)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_bucket_larger_than_normals_is_certain(self):
        assert probability_of_anomalous_bucket(10, 9, 2) == pytest.approx(1.0)

    @pytest.mark.parametrize("args", [(0, 0, 1), (10, 11, 1), (10, 2, 0), (10, 2, 11)])
    def test_invalid_arguments_raise(self, args):
        with pytest.raises(ValueError):
            probability_of_anomalous_bucket(*args)


class TestBucketSize:
    def test_reaches_target(self):
        size = bucket_size_for_probability(367, 10 / 367, 0.75)
        achieved = probability_of_anomalous_bucket(367, 10, size)
        assert achieved >= 0.75
        # And the next-smaller bucket misses the target (minimality).
        assert probability_of_anomalous_bucket(367, 10, size - 1) < 0.75

    def test_higher_target_needs_bigger_bucket(self):
        low = bucket_size_for_probability(500, 0.05, 0.5)
        high = bucket_size_for_probability(500, 0.05, 0.95)
        assert high > low

    def test_higher_anomaly_fraction_needs_smaller_bucket(self):
        rare = bucket_size_for_probability(500, 0.02, 0.75)
        common = bucket_size_for_probability(500, 0.2, 0.75)
        assert common < rare

    @pytest.mark.parametrize("kwargs", [
        {"num_samples": 0, "anomaly_fraction": 0.1, "target_probability": 0.5},
        {"num_samples": 10, "anomaly_fraction": 0.0, "target_probability": 0.5},
        {"num_samples": 10, "anomaly_fraction": 0.1, "target_probability": 1.0},
    ])
    def test_invalid_arguments_raise(self, kwargs):
        with pytest.raises(ValueError):
            bucket_size_for_probability(**kwargs)

    @given(num_samples=st.integers(min_value=20, max_value=2000),
           fraction=st.floats(min_value=0.01, max_value=0.3),
           target=st.floats(min_value=0.1, max_value=0.99))
    @settings(max_examples=40, deadline=None)
    def test_returned_size_always_achieves_target(self, num_samples, fraction, target):
        size = bucket_size_for_probability(num_samples, fraction, target)
        anomalies = max(1, int(round(fraction * num_samples)))
        assert 2 <= size <= num_samples
        assert probability_of_anomalous_bucket(num_samples, anomalies, size) >= target - 1e-12


class TestAssignment:
    def test_every_sample_in_exactly_one_bucket(self):
        assignment = assign_buckets(100, 9, np.random.default_rng(0))
        seen = sorted(index for bucket in assignment.buckets for index in bucket)
        assert seen == list(range(100))

    def test_bucket_sizes_balanced(self):
        assignment = assign_buckets(100, 9, np.random.default_rng(1))
        sizes = [len(bucket) for bucket in assignment.buckets]
        assert max(sizes) - min(sizes) <= 1
        assert assignment.num_buckets == 100 // 9

    def test_bucket_of_lookup(self):
        assignment = assign_buckets(20, 5, np.random.default_rng(2))
        for bucket_index, bucket in enumerate(assignment.buckets):
            for sample in bucket:
                assert assignment.bucket_of(sample) == bucket_index
        with pytest.raises(KeyError):
            assignment.bucket_of(99)

    def test_randomness_differs_between_rngs(self):
        first = assign_buckets(50, 10, np.random.default_rng(1))
        second = assign_buckets(50, 10, np.random.default_rng(2))
        assert first.buckets != second.buckets

    def test_single_bucket_when_size_equals_samples(self):
        assignment = assign_buckets(10, 10, np.random.default_rng(0))
        assert assignment.num_buckets == 1

    @pytest.mark.parametrize("num_samples,bucket_size", [(0, 1), (10, 0), (10, 11)])
    def test_invalid_arguments_raise(self, num_samples, bucket_size):
        with pytest.raises(ValueError):
            assign_buckets(num_samples, bucket_size)

    def test_as_lists(self):
        assignment = assign_buckets(12, 4, np.random.default_rng(3))
        lists = assignment.as_lists()
        assert isinstance(lists[0], list)
        assert sum(len(bucket) for bucket in lists) == 12
