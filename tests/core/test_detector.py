"""Tests for the QuorumDetector facade (including end-to-end behaviour)."""

import numpy as np
import pytest

from repro.core.config import QuorumConfig
from repro.core.detector import QuorumDetector
from repro.data.datasets import make_gaussian_anomaly_dataset
from repro.metrics.classification import evaluate_top_k


def easy_dataset(seed=0):
    """A small, well separated dataset the detector must crack quickly."""
    return make_gaussian_anomaly_dataset(
        name="easy", num_samples=80, num_anomalies=6, num_features=10,
        num_clusters=1, separation=6.0, anomaly_spread=2.0, seed=seed,
    )


class TestConstruction:
    def test_default_construction(self):
        detector = QuorumDetector()
        assert detector.config.num_qubits == 3
        assert not detector.is_fitted

    def test_keyword_overrides(self):
        detector = QuorumDetector(ensemble_groups=7, seed=3)
        assert detector.config.ensemble_groups == 7

    def test_config_plus_overrides(self):
        config = QuorumConfig(ensemble_groups=5)
        detector = QuorumDetector(config, shots=128)
        assert detector.config.ensemble_groups == 5
        assert detector.config.shots == 128

    def test_repr_mentions_status(self):
        assert "unfitted" in repr(QuorumDetector())


class TestFitAndScores:
    def _detector(self, **overrides):
        defaults = {"ensemble_groups": 8, "shots": None, "seed": 1}
        defaults.update(overrides)
        return QuorumDetector(**defaults)

    def test_requires_fit_before_queries(self):
        detector = self._detector()
        with pytest.raises(RuntimeError):
            detector.anomaly_scores()
        with pytest.raises(RuntimeError):
            detector.detect(num_anomalies=1)

    def test_fit_on_dataset_and_matrix_agree(self):
        dataset = easy_dataset()
        from_dataset = self._detector().fit(dataset).anomaly_scores()
        from_matrix = self._detector().fit(dataset.data).anomaly_scores()
        assert np.allclose(from_dataset, from_matrix)

    def test_scores_shape_and_positivity(self):
        dataset = easy_dataset()
        scores = self._detector().fit(dataset).anomaly_scores()
        assert scores.shape == (dataset.num_samples,)
        assert np.all(scores >= 0.0)

    def test_detects_planted_anomalies(self):
        dataset = easy_dataset()
        detector = self._detector(ensemble_groups=15)
        detector.fit(dataset)
        report = evaluate_top_k(detector.anomaly_scores(), dataset.labels,
                                dataset.num_anomalies)
        assert report.recall >= 0.5

    def test_seed_reproducibility(self):
        dataset = easy_dataset()
        first = self._detector().fit(dataset).anomaly_scores()
        second = self._detector().fit(dataset).anomaly_scores()
        assert np.allclose(first, second)

    def test_detect_flag_counts(self):
        dataset = easy_dataset()
        detector = self._detector().fit(dataset)
        assert detector.detect(num_anomalies=4).sum() == 4
        assert detector.detect(contamination=0.1).sum() == 8
        # Default uses the config's anomaly-fraction estimate (5% of 80 = 4).
        assert detector.detect().sum() == 4

    def test_fit_detect_shortcut(self):
        dataset = easy_dataset()
        flags = self._detector().fit_detect(dataset, num_anomalies=6)
        assert flags.sum() == 6

    def test_ranking_is_consistent_with_scores(self):
        dataset = easy_dataset()
        detector = self._detector().fit(dataset)
        scores = detector.anomaly_scores()
        ranking = detector.ranking()
        assert scores[ranking[0]] == scores.max()

    def test_diagnostics_and_member_results(self):
        dataset = easy_dataset()
        detector = self._detector(ensemble_groups=4).fit(dataset)
        diagnostics = detector.diagnostics()
        assert diagnostics["ensemble_groups"] == 4
        assert diagnostics["num_samples"] == dataset.num_samples
        assert diagnostics["num_runs"] == 4 * 2
        assert len(detector.member_results()) == 4

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            self._detector().fit(np.zeros(10))

    def test_statevector_backend_runs(self):
        dataset = easy_dataset().subset(range(30))
        detector = QuorumDetector(ensemble_groups=2, backend="statevector",
                                  shots=256, seed=2)
        detector.fit(dataset)
        assert detector.anomaly_scores().shape == (30,)

    def test_density_matrix_backend_matches_analytic_without_shots(self):
        dataset = easy_dataset().subset(range(24))
        analytic = QuorumDetector(ensemble_groups=2, shots=None, seed=5).fit(dataset)
        circuit_level = QuorumDetector(ensemble_groups=2, shots=None, seed=5,
                                       backend="density_matrix").fit(dataset)
        assert np.allclose(analytic.anomaly_scores(),
                           circuit_level.anomaly_scores(), atol=1e-6)
