"""Cross-validation of the batched engine paths against the per-sample paths.

The batched kernels must reproduce the seed implementations exactly (to float
round-off) on small registers: the batched density-matrix fast path against both
the analytic engine and the per-sample full-circuit simulation, and the batched
statevector trajectories against per-sample trajectory simulation (statistical,
plus exact agreement where the circuit is deterministic).
"""

import numpy as np
import pytest

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.algorithms.autoencoder import build_autoencoder_circuit
from repro.algorithms.swap_test import p1_from_counts
from repro.core.config import QuorumConfig
from repro.core.ensemble import batch_amplitudes
from repro.core.execution import (
    AnalyticEngine,
    DensityMatrixEngine,
    StatevectorEngine,
    make_engine,
)
from repro.quantum.backend import NumpyBackend
from repro.quantum.simulator import StatevectorSimulator


def make_batch(num_samples=8, num_qubits=3, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.0, 1.0 / np.sqrt(2 ** num_qubits - 1),
                         size=(num_samples, 2 ** num_qubits - 1))
    return batch_amplitudes(values, num_qubits)


class TestBatchedDensityMatrixEngine:
    @pytest.mark.parametrize("num_qubits,level", [(2, 1), (2, 2), (3, 1),
                                                  (3, 2), (3, 3)])
    def test_matches_analytic_engine(self, num_qubits, level):
        ansatz = RandomAutoencoderAnsatz(num_qubits, seed=21)
        batch = make_batch(num_samples=6, num_qubits=num_qubits, seed=1)
        analytic = AnalyticEngine(shots=None).p1_batch(batch, ansatz, level)
        batched = DensityMatrixEngine(shots=None).p1_batch(batch, ansatz, level)
        assert np.allclose(analytic, batched, atol=1e-10)

    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_matches_per_sample_circuit_path(self, level):
        """Batched register-A evolution == full 2n+1-qubit circuit, per sample."""
        ansatz = RandomAutoencoderAnsatz(3, seed=22)
        batch = make_batch(num_samples=5, seed=2)
        engine = DensityMatrixEngine(shots=None)
        batched = engine.p1_batch(batch, ansatz, level)
        circuit_level = engine.p1_batch_circuit_level(batch, ansatz, level)
        assert np.allclose(batched, circuit_level, atol=1e-10)

    def test_noisy_runs_use_the_circuit_path(self):
        from repro.quantum.backends import FakeBrisbane

        ansatz = RandomAutoencoderAnsatz(2, seed=23)
        batch = make_batch(num_samples=2, num_qubits=2, seed=3)
        noisy = DensityMatrixEngine(
            shots=None, noise_model=FakeBrisbane(5).to_noise_model(),
            gate_level_encoding=True,
        ).p1_batch(batch, ansatz, 1)
        exact = AnalyticEngine(shots=None).p1_batch(batch, ansatz, 1)
        # Noise must actually perturb the outcome (i.e. the noisy path ran).
        assert not np.allclose(noisy, exact, atol=1e-12)
        assert np.max(np.abs(noisy - exact)) < 0.15

    def test_shot_noise_still_applied(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=24)
        batch = make_batch(num_samples=10, seed=4)
        exact = DensityMatrixEngine(shots=None).p1_batch(batch, ansatz, 1)
        sampled = DensityMatrixEngine(
            shots=128, rng=np.random.default_rng(0)
        ).p1_batch(batch, ansatz, 1)
        assert not np.allclose(exact, sampled)
        assert np.all(sampled * 128 == np.round(sampled * 128))


class TestBatchedStatevectorEngine:
    def test_deterministic_when_circuit_has_no_reset(self):
        """Level 0 has no stochastic operation: batched == per-sample exactly."""
        ansatz = RandomAutoencoderAnsatz(3, seed=25)
        batch = make_batch(num_samples=4, seed=5)
        engine = StatevectorEngine(shots=512, rng=np.random.default_rng(0))
        batched = engine.p1_batch(batch, ansatz, 0)
        simulator = StatevectorSimulator(seed=0)
        for index, row in enumerate(batch):
            circuit = build_autoencoder_circuit(row, ansatz, 0, measure=True)
            outcome = simulator.run(circuit, shots=512)
            per_sample = p1_from_counts(outcome.counts, clbit=0)
            assert batched[index] == pytest.approx(per_sample, abs=1e-10)

    def test_trajectory_mean_matches_analytic_expectation(self):
        ansatz = RandomAutoencoderAnsatz(2, seed=26)
        batch = make_batch(num_samples=3, num_qubits=2, seed=6)
        exact = AnalyticEngine(shots=None).p1_batch(batch, ansatz, 1)
        sampled = StatevectorEngine(
            shots=20000, rng=np.random.default_rng(7), max_trajectories=400
        ).p1_batch(batch, ansatz, 1)
        assert np.max(np.abs(sampled - exact)) < 0.03

    def test_matches_per_sample_trajectory_distribution(self):
        """Batched and per-sample trajectory sampling estimate the same P(1)."""
        ansatz = RandomAutoencoderAnsatz(2, seed=27)
        batch = make_batch(num_samples=2, num_qubits=2, seed=8)
        batched = StatevectorEngine(
            shots=6000, rng=np.random.default_rng(9), max_trajectories=300
        ).p1_batch(batch, ansatz, 1)
        simulator = StatevectorSimulator(seed=10, max_trajectories=300)
        for index, row in enumerate(batch):
            circuit = build_autoencoder_circuit(row, ansatz, 1, measure=True)
            outcome = simulator.run(circuit, shots=6000)
            per_sample = p1_from_counts(outcome.counts, clbit=0)
            assert batched[index] == pytest.approx(per_sample, abs=0.05)

    def test_reproducible_with_seeded_rng(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=28)
        batch = make_batch(num_samples=4, seed=11)
        first = StatevectorEngine(
            shots=256, rng=np.random.default_rng(3)).p1_batch(batch, ansatz, 2)
        second = StatevectorEngine(
            shots=256, rng=np.random.default_rng(3)).p1_batch(batch, ansatz, 2)
        assert np.array_equal(first, second)

    def test_chunked_execution_matches_expectation(self):
        """Tiny MAX_FLAT_BATCH forces per-sample chunks; statistics unchanged."""
        ansatz = RandomAutoencoderAnsatz(3, seed=40)
        batch = make_batch(num_samples=5, seed=14)
        exact = AnalyticEngine(shots=None).p1_batch(batch, ansatz, 1)
        engine = StatevectorEngine(shots=8000, rng=np.random.default_rng(15),
                                   max_trajectories=200)
        engine.MAX_FLAT_BATCH = 64  # chunk size becomes 1 sample
        sampled = engine.p1_batch(batch, ansatz, 1)
        assert np.max(np.abs(sampled - exact)) < 0.05

    def test_results_are_valid_shot_fractions(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=29)
        batch = make_batch(num_samples=6, seed=12)
        shots = 200
        p1 = StatevectorEngine(
            shots=shots, rng=np.random.default_rng(4)).p1_batch(batch, ansatz, 1)
        assert np.all(p1 >= 0.0) and np.all(p1 <= 1.0)
        assert np.all(p1 * shots == np.round(p1 * shots))


class TestNormalizationGuard:
    @pytest.mark.parametrize("engine_factory", [
        lambda: AnalyticEngine(shots=None),
        lambda: DensityMatrixEngine(shots=None),
        lambda: StatevectorEngine(shots=64),
    ])
    def test_unnormalized_amplitudes_rejected(self, engine_factory):
        """The batched paths fail as loudly as circuit `initialize` used to."""
        ansatz = RandomAutoencoderAnsatz(3, seed=41)
        batch = make_batch(num_samples=3, seed=16) * 2.0
        with pytest.raises(ValueError, match="normalized"):
            engine_factory().p1_batch(batch, ansatz, 1)


class TestAnsatzUnitaryCache:
    def test_encoder_unitary_is_cached_and_read_only(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=30)
        first = ansatz.encoder_unitary()
        assert ansatz.encoder_unitary() is first
        with pytest.raises(ValueError):
            first[0, 0] = 0.0

    def test_cache_matches_circuit_unitary(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=31)
        cached = ansatz.encoder_unitary()
        rebuilt = ansatz.encoder_circuit(list(range(3))).to_unitary()
        assert np.allclose(cached, rebuilt, atol=1e-10)

    def test_fresh_angles_get_a_fresh_cache(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=32)
        other = ansatz.with_new_angles(seed=33)
        assert not np.allclose(ansatz.encoder_unitary(), other.encoder_unitary())


class TestBackendSelectionThreading:
    def test_engines_accept_backend_name_and_instance(self):
        backend = NumpyBackend()
        for name in ("analytic", "density_matrix", "statevector"):
            by_name = make_engine(name, 128, simulation_backend="numpy")
            assert by_name.backend.name == "numpy"
            by_instance = make_engine(name, 128, simulation_backend=backend)
            assert by_instance.backend is backend

    def test_unknown_simulation_backend_raises(self):
        with pytest.raises(ValueError):
            make_engine("analytic", 128, simulation_backend="gpu")

    def test_config_validates_simulation_backend(self):
        config = QuorumConfig(simulation_backend="numpy")
        assert config.describe()["simulation_backend"] == "numpy"
        with pytest.raises(ValueError):
            QuorumConfig(simulation_backend="cupy")

    def test_detector_runs_with_explicit_simulation_backend(self):
        from repro.core.detector import QuorumDetector

        rng = np.random.default_rng(13)
        data = rng.uniform(0.0, 1.0, size=(24, 6))
        detector = QuorumDetector(ensemble_groups=2, shots=None, seed=5,
                                  simulation_backend="numpy")
        scores = detector.fit(data).anomaly_scores()
        assert scores.shape == (24,)
