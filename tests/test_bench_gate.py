"""Unit tests for the benchmark perf-regression gate in ``benchmarks/_harness.py``.

The gate itself runs in CI against real timings; these tests pin its diff
logic (tracked vs untracked benchmarks, tolerance arithmetic, exit codes,
baseline round-tripping) on synthetic artifacts so the tier-1 suite catches
harness regressions without running any benchmark.
"""

import importlib.util
import json
from pathlib import Path

_HARNESS_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "_harness.py"
_spec = importlib.util.spec_from_file_location("bench_harness", _HARNESS_PATH)
harness = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(harness)


def write_results(path, means):
    payload = {"benchmarks": [{"fullname": name, "stats": {"mean": mean}}
                              for name, mean in means.items()]}
    path.write_text(json.dumps(payload))
    return path


def test_diff_flags_only_regressions_beyond_tolerance():
    baseline = {"benchmarks": {"a": 1.0, "b": 1.0, "c": 1.0}}
    means = {"a": 1.2, "b": 1.3, "c": 0.5, "untracked": 99.0}
    regressions, missing = harness.diff_against_baseline(means, baseline,
                                                         tolerance=0.25)
    assert missing == []
    assert [entry[0] for entry in regressions] == ["b"]
    name, base, measured, slowdown = regressions[0]
    assert (base, measured) == (1.0, 1.3)
    assert abs(slowdown - 0.3) < 1e-12


def test_missing_tracked_benchmarks_are_reported_not_failed(tmp_path):
    results = write_results(tmp_path / "results.json", {"a": 1.0})
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(
        {"benchmarks": {"a": 1.0, "renamed": 1.0}}))
    assert harness.check(results, baseline_path, tolerance=0.25) == 0


def test_gate_fails_closed_on_empty_results(tmp_path):
    """A misconfigured benchmark run (nothing measured) must not read as a
    passing gate."""
    results = write_results(tmp_path / "results.json", {})
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps({"benchmarks": {"a": 1.0}}))
    assert harness.check(results, baseline_path, tolerance=0.25) == 1


def test_check_exit_codes(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps({"benchmarks": {"a": 1.0}}))
    ok = write_results(tmp_path / "ok.json", {"a": 1.1})
    bad = write_results(tmp_path / "bad.json", {"a": 1.6})
    assert harness.check(ok, baseline_path, tolerance=0.25) == 0
    assert harness.check(bad, baseline_path, tolerance=0.25) == 1
    # A wider tolerance lets the same artifact pass.
    assert harness.check(bad, baseline_path, tolerance=1.0) == 0


def test_update_round_trips_through_check(tmp_path):
    results = write_results(tmp_path / "results.json",
                            {"a": 1.23456789, "b": 0.5})
    baseline_path = tmp_path / "baseline.json"
    assert harness.update(results, baseline_path) == 0
    baseline = harness.load_baseline(baseline_path)
    assert set(baseline["benchmarks"]) == {"a", "b"}
    # The freshly recorded baseline gates its own artifact cleanly.
    assert harness.check(results, baseline_path, tolerance=0.25) == 0


def test_cli_main(tmp_path):
    results = write_results(tmp_path / "results.json", {"a": 1.0})
    baseline_path = tmp_path / "baseline.json"
    assert harness.main(["update", str(results),
                         "--baseline", str(baseline_path)]) == 0
    assert harness.main(["check", str(results),
                         "--baseline", str(baseline_path)]) == 0
    slow = write_results(tmp_path / "slow.json", {"a": 2.0})
    assert harness.main(["check", str(slow), "--baseline", str(baseline_path),
                         "--tolerance", "0.25"]) == 1


def test_committed_baseline_tracks_real_benchmarks():
    """The committed BENCH_baseline.json names benchmarks that exist."""
    baseline = harness.load_baseline()
    assert baseline["benchmarks"], "the committed baseline must track something"
    for name in baseline["benchmarks"]:
        test_file = name.split("::")[0]
        assert (Path(_HARNESS_PATH).parent.parent / test_file).exists(), name
