"""Tests for Quorum's range-based normalization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding.normalization import QuorumNormalizer, normalize_dataset


class TestQuorumNormalizer:
    def test_default_ceiling_is_one_over_m(self):
        data = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 40.0]])
        normalizer = QuorumNormalizer()
        normalized = normalizer.fit_transform(data)
        assert np.isclose(normalized.max(), 0.5)
        assert normalizer.effective_target_max() == pytest.approx(0.5)

    def test_custom_target_max(self):
        data = np.array([[0.0, 1.0], [2.0, 3.0]])
        normalized = QuorumNormalizer(target_max=0.25).fit_transform(data)
        assert np.isclose(normalized.max(), 0.25)
        assert normalized.min() >= 0.0

    def test_range_mode_handles_negative_values(self):
        data = np.array([[-5.0, 1.0], [5.0, 2.0], [0.0, 3.0]])
        normalized = QuorumNormalizer().fit_transform(data)
        assert normalized.min() >= 0.0
        assert normalized.max() <= 0.5 + 1e-12

    def test_max_mode_matches_paper_formula(self):
        data = np.array([[1.0, 4.0], [2.0, 8.0]])
        normalized = QuorumNormalizer(mode="max").fit_transform(data)
        # raw / max / M with M = 2.
        assert np.isclose(normalized[0, 0], 1.0 / 2.0 / 2.0)
        assert np.isclose(normalized[1, 1], 8.0 / 8.0 / 2.0)

    def test_max_mode_rejects_negative_data(self):
        with pytest.raises(ValueError):
            QuorumNormalizer(mode="max").fit(np.array([[-1.0, 2.0]]))

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            QuorumNormalizer(mode="weird")

    def test_invalid_target_max_raises(self):
        with pytest.raises(ValueError):
            QuorumNormalizer(target_max=1.5)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            QuorumNormalizer().transform(np.ones((2, 2)))

    def test_feature_count_mismatch_raises(self):
        normalizer = QuorumNormalizer().fit(np.ones((3, 2)))
        with pytest.raises(ValueError):
            normalizer.transform(np.ones((3, 4)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            QuorumNormalizer().fit(np.array([[np.nan, 1.0]]))

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            QuorumNormalizer().fit(np.ones(5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            QuorumNormalizer().fit(np.empty((0, 3)))

    def test_constant_feature_maps_to_zero(self):
        data = np.array([[3.0, 1.0], [3.0, 2.0]])
        normalized = QuorumNormalizer().fit_transform(data)
        assert np.allclose(normalized[:, 0], 0.0)

    def test_unseen_data_is_clipped(self):
        normalizer = QuorumNormalizer().fit(np.array([[0.0], [10.0]]))
        out = normalizer.transform(np.array([[20.0], [-5.0]]))
        assert out.max() <= 1.0
        assert out.min() >= 0.0

    @given(seed=st.integers(min_value=0, max_value=500),
           num_features=st.integers(min_value=1, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_sum_of_squares_never_exceeds_one(self, seed, num_features):
        rng = np.random.default_rng(seed)
        data = rng.normal(scale=50.0, size=(20, num_features))
        normalized = QuorumNormalizer().fit_transform(data)
        assert np.all((normalized ** 2).sum(axis=1) <= 1.0 + 1e-9)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_sqrt_ceiling_also_bounded(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.uniform(-5, 5, size=(30, 7))
        ceiling = 1.0 / np.sqrt(7)
        normalized = QuorumNormalizer(target_max=ceiling).fit_transform(data)
        assert np.all((normalized ** 2).sum(axis=1) <= 1.0 + 1e-9)


class TestConvenienceWrapper:
    def test_normalize_dataset(self):
        data = np.array([[0.0, 2.0], [4.0, 6.0]])
        assert np.isclose(normalize_dataset(data).max(), 0.5)
