"""Tests for amplitude encoding and the state-preparation synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding.amplitude import (
    AmplitudeEncoder,
    amplitude_probabilities,
    amplitudes_from_features,
    state_preparation_circuit,
)
from repro.quantum.simulator import StatevectorSimulator


def random_features(num_features, seed, scale=None):
    rng = np.random.default_rng(seed)
    scale = scale if scale is not None else 1.0 / np.sqrt(num_features)
    return rng.uniform(0.0, scale, size=num_features)


class TestAmplitudeProbabilities:
    def test_probabilities_sum_to_one(self):
        probs = amplitude_probabilities([0.2, 0.3, 0.1], 2)
        assert np.isclose(probs.sum(), 1.0)

    def test_overflow_takes_residual_mass(self):
        probs = amplitude_probabilities([0.5], 1)
        assert np.isclose(probs[0], 0.25)
        assert np.isclose(probs[1], 0.75)

    def test_too_many_features_raises(self):
        with pytest.raises(ValueError):
            amplitude_probabilities([0.1] * 4, 2)

    def test_negative_feature_raises(self):
        with pytest.raises(ValueError):
            amplitude_probabilities([-0.5, 0.1], 2)

    def test_oversized_mass_raises(self):
        with pytest.raises(ValueError):
            amplitude_probabilities([1.0, 1.0], 2)

    def test_amplitudes_are_square_roots(self):
        features = [0.3, 0.4]
        probs = amplitude_probabilities(features, 2)
        amps = amplitudes_from_features(features, 2)
        assert np.allclose(amps ** 2, probs)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_full_feature_set_normalized(self, seed):
        features = random_features(7, seed)
        probs = amplitude_probabilities(features, 3)
        assert probs.shape == (8,)
        assert np.isclose(probs.sum(), 1.0)
        assert np.all(probs >= 0)


class TestStatePreparation:
    @given(seed=st.integers(min_value=0, max_value=500),
           num_qubits=st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_synthesized_circuit_prepares_target_state(self, seed, num_qubits):
        features = random_features(2 ** num_qubits - 1, seed,
                                   scale=1.0 / np.sqrt(2 ** num_qubits))
        amplitudes = amplitudes_from_features(features, num_qubits)
        circuit = state_preparation_circuit(amplitudes)
        result = StatevectorSimulator().run(circuit, shots=0)
        prepared = np.abs(result.statevector.data)
        assert np.allclose(prepared, amplitudes, atol=1e-9)

    def test_sparse_amplitudes(self):
        amplitudes = np.zeros(8)
        amplitudes[0] = 1.0
        circuit = state_preparation_circuit(amplitudes)
        result = StatevectorSimulator().run(circuit, shots=0)
        assert np.isclose(abs(result.statevector.data[0]), 1.0)

    def test_uniform_superposition(self):
        amplitudes = np.full(4, 0.5)
        circuit = state_preparation_circuit(amplitudes)
        result = StatevectorSimulator().run(circuit, shots=0)
        assert np.allclose(np.abs(result.statevector.data), 0.5, atol=1e-9)

    def test_only_ry_and_cx_gates_used(self):
        amplitudes = amplitudes_from_features([0.2, 0.3, 0.1], 2)
        circuit = state_preparation_circuit(amplitudes)
        names = {instr.name for instr in circuit.instructions}
        assert names <= {"ry", "cx"}

    def test_rejects_negative_amplitudes(self):
        with pytest.raises(ValueError):
            state_preparation_circuit([0.8, -0.6])

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            state_preparation_circuit([0.5, 0.5])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            state_preparation_circuit([0.6, 0.6, np.sqrt(1 - 0.72)])

    def test_num_qubits_mismatch_raises(self):
        with pytest.raises(ValueError):
            state_preparation_circuit([1.0, 0.0], num_qubits=2)


class TestAmplitudeEncoder:
    def test_max_features(self):
        assert AmplitudeEncoder(3).max_features == 7

    def test_rejects_zero_qubits(self):
        with pytest.raises(ValueError):
            AmplitudeEncoder(0)

    def test_initialize_route_matches_gate_route(self):
        encoder = AmplitudeEncoder(2)
        features = [0.3, 0.25, 0.4]
        exact = StatevectorSimulator().run(
            encoder.encoding_circuit(features, gate_level=False), shots=0
        ).statevector.data
        synthesized = StatevectorSimulator().run(
            encoder.encoding_circuit(features, gate_level=True), shots=0
        ).statevector.data
        assert np.allclose(np.abs(exact), np.abs(synthesized), atol=1e-9)

    def test_probabilities_and_amplitudes_consistent(self):
        encoder = AmplitudeEncoder(3)
        features = random_features(7, 3)
        assert np.allclose(encoder.amplitudes(features) ** 2,
                           encoder.probabilities(features))
