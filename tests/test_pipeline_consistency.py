"""Cross-layer consistency tests.

These tests tie the layers together in ways the unit suites do not: the gate-level
(transpiled) circuits must produce the same SWAP-test statistics as the abstract
ones, and the detector's scores must be invariant to implementation details that
should not matter (sample order, engine choice without shot noise).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.algorithms.autoencoder import analytic_swap_test_p1, build_autoencoder_circuit
from repro.core.detector import QuorumDetector
from repro.core.ensemble import batch_amplitudes
from repro.data.datasets import make_gaussian_anomaly_dataset
from repro.quantum.simulator import DensityMatrixSimulator
from repro.quantum.transpiler import transpile


def toy_dataset(seed=0):
    return make_gaussian_anomaly_dataset(
        name="consistency", num_samples=50, num_anomalies=5, num_features=9,
        num_clusters=1, separation=5.0, anomaly_spread=1.5, seed=seed,
    )


class TestTranspiledCircuits:
    @given(seed=st.integers(min_value=0, max_value=100),
           level=st.integers(min_value=1, max_value=2))
    @settings(max_examples=8, deadline=None)
    def test_transpiled_quorum_circuit_preserves_swap_statistics(self, seed, level):
        rng = np.random.default_rng(seed)
        amplitudes = batch_amplitudes(
            rng.uniform(0, 1 / np.sqrt(7), size=(1, 7)), 3)[0]
        ansatz = RandomAutoencoderAnsatz(3, seed=seed)
        circuit = build_autoencoder_circuit(amplitudes, ansatz, level,
                                            gate_level_encoding=True, measure=False)
        lowered = transpile(circuit, basis=("rz", "sx", "x", "cx"))
        expected = analytic_swap_test_p1(amplitudes, ansatz, level)
        simulated = DensityMatrixSimulator().evolve(lowered)
        assert simulated.probability_of_outcome(6, 1) == pytest.approx(expected,
                                                                       abs=1e-8)

    def test_transpilation_reduces_to_basis_without_changing_depth_class(self):
        amplitudes = batch_amplitudes(
            np.random.default_rng(1).uniform(0, 1 / np.sqrt(7), size=(1, 7)), 3)[0]
        ansatz = RandomAutoencoderAnsatz(3, seed=2)
        circuit = build_autoencoder_circuit(amplitudes, ansatz, 1,
                                            gate_level_encoding=True)
        lowered = transpile(circuit, basis=("rz", "sx", "x", "cx"))
        assert lowered.size() > circuit.size()  # decomposition expands gates
        allowed = {"rz", "sx", "x", "cx", "barrier", "reset", "measure"}
        assert {instr.name for instr in lowered.instructions} <= allowed


class TestDetectorInvariances:
    def test_scores_do_not_depend_on_sample_order(self):
        dataset = toy_dataset()
        detector = QuorumDetector(ensemble_groups=6, shots=None, seed=3)
        scores = detector.fit(dataset).anomaly_scores()

        permutation = np.random.default_rng(0).permutation(dataset.num_samples)
        permuted = dataset.subset(permutation)
        permuted_scores = QuorumDetector(ensemble_groups=6, shots=None, seed=3).fit(
            permuted).anomaly_scores()
        # The two runs see different row orders, so per-sample scores differ in
        # detail (buckets shuffle), but the overall score distribution must be
        # statistically indistinguishable.
        assert np.isclose(scores.mean(), permuted_scores.mean(), rtol=0.15)
        assert np.isclose(scores.std(), permuted_scores.std(), rtol=0.3)

    def test_anomalies_rank_high_under_both_exact_engines(self):
        dataset = toy_dataset()
        analytic = QuorumDetector(ensemble_groups=4, shots=None, seed=5).fit(dataset)
        circuit_level = QuorumDetector(ensemble_groups=4, shots=None, seed=5,
                                       backend="density_matrix").fit(dataset)
        assert np.allclose(analytic.anomaly_scores(),
                           circuit_level.anomaly_scores(), atol=1e-6)

    def test_feature_scaling_modes_all_run(self):
        dataset = toy_dataset()
        for mode in ("circuit_sqrt", "dataset_sqrt", "dataset_linear"):
            detector = QuorumDetector(ensemble_groups=3, shots=None, seed=7,
                                      feature_scaling=mode)
            scores = detector.fit(dataset).anomaly_scores()
            assert scores.shape == (dataset.num_samples,)
            assert np.all(np.isfinite(scores))
