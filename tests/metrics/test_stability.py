"""Tests for the ranking-stability diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.stability import (
    ranking_stability_curve,
    score_agreement,
    spearman_rank_correlation,
    top_k_jaccard,
)


class TestSpearman:
    def test_identical_rankings(self):
        scores = [1.0, 3.0, 2.0, 5.0]
        assert spearman_rank_correlation(scores, scores) == pytest.approx(1.0)

    def test_reversed_rankings(self):
        first = [1.0, 2.0, 3.0, 4.0]
        second = [4.0, 3.0, 2.0, 1.0]
        assert spearman_rank_correlation(first, second) == pytest.approx(-1.0)

    def test_monotone_transform_preserves_correlation(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=50)
        assert spearman_rank_correlation(scores, np.exp(scores)) == pytest.approx(1.0)

    def test_constant_vector_gives_zero(self):
        assert spearman_rank_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_ties_handled_symmetrically(self):
        first = [1.0, 1.0, 2.0]
        second = [2.0, 1.0, 1.0]
        forward = spearman_rank_correlation(first, second)
        backward = spearman_rank_correlation(second, first)
        assert forward == pytest.approx(backward)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1.0], [1.0, 2.0])

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1.0], [2.0])

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_bounded_in_minus_one_one(self, seed):
        rng = np.random.default_rng(seed)
        first = rng.normal(size=30)
        second = rng.normal(size=30)
        value = spearman_rank_correlation(first, second)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestTopKJaccard:
    def test_identical_scores(self):
        scores = [0.1, 0.9, 0.5, 0.7]
        assert top_k_jaccard(scores, scores, 2) == 1.0

    def test_disjoint_top_sets(self):
        first = [10.0, 9.0, 0.0, 0.0]
        second = [0.0, 0.0, 9.0, 10.0]
        assert top_k_jaccard(first, second, 2) == 0.0

    def test_partial_overlap(self):
        first = [10.0, 9.0, 1.0, 0.0]
        second = [10.0, 0.0, 9.0, 1.0]
        assert top_k_jaccard(first, second, 2) == pytest.approx(1.0 / 3.0)

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            top_k_jaccard([1.0, 2.0], [1.0, 2.0], 0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            top_k_jaccard([1.0, 2.0], [1.0], 1)


class TestStabilityCurve:
    def test_final_checkpoint_correlates_perfectly(self):
        rng = np.random.default_rng(1)
        members = [rng.uniform(size=20) for _ in range(6)]
        reference = np.sum(members, axis=0)
        curve = ranking_stability_curve(members, reference, checkpoints=[2, 4, 6])
        assert curve[6] == pytest.approx(1.0)
        assert set(curve) == {2, 4, 6}

    def test_correlation_generally_increases(self):
        rng = np.random.default_rng(2)
        base = rng.uniform(size=40)
        members = [base + rng.normal(scale=0.3, size=40) for _ in range(10)]
        reference = np.sum(members, axis=0)
        curve = ranking_stability_curve(members, reference, checkpoints=[1, 5, 10])
        assert curve[10] >= curve[1]

    def test_invalid_checkpoint_raises(self):
        members = [np.ones(5)]
        with pytest.raises(ValueError):
            ranking_stability_curve(members, np.ones(5), checkpoints=[2])

    def test_empty_members_raise(self):
        with pytest.raises(ValueError):
            ranking_stability_curve([], np.ones(5), checkpoints=[1])


class TestScoreAgreement:
    def test_identical_runs_agree_perfectly(self):
        scores = np.random.default_rng(3).uniform(size=30)
        result = score_agreement([scores, scores.copy(), scores.copy()], k=5)
        assert result["mean_spearman"] == pytest.approx(1.0)
        assert result["mean_top_k_jaccard"] == pytest.approx(1.0)
        assert result["num_pairs"] == 3

    def test_independent_noise_reduces_agreement(self):
        rng = np.random.default_rng(4)
        runs = [rng.uniform(size=50) for _ in range(3)]
        result = score_agreement(runs, k=5)
        assert result["mean_spearman"] < 0.5

    def test_needs_two_runs(self):
        with pytest.raises(ValueError):
            score_agreement([np.ones(5)], k=1)
