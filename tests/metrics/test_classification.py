"""Tests for the classification metrics used in Fig. 8."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.classification import (
    accuracy_score,
    confusion_counts,
    evaluate_flags,
    evaluate_top_k,
    f1_score,
    precision_score,
    recall_score,
)


Y_TRUE = [0, 0, 1, 1, 0, 1]
Y_PRED = [0, 1, 1, 0, 0, 1]


class TestBasicMetrics:
    def test_confusion_counts(self):
        counts = confusion_counts(Y_TRUE, Y_PRED)
        assert counts == {"tp": 2, "fp": 1, "fn": 1, "tn": 2}

    def test_precision(self):
        assert precision_score(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)

    def test_recall(self):
        assert recall_score(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)

    def test_f1(self):
        assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)

    def test_accuracy(self):
        assert accuracy_score(Y_TRUE, Y_PRED) == pytest.approx(4 / 6)

    def test_no_flags_gives_zero_precision_and_recall(self):
        assert precision_score([1, 0], [0, 0]) == 0.0
        assert f1_score([1, 0], [0, 0]) == 0.0

    def test_no_anomalies_gives_zero_recall(self):
        assert recall_score([0, 0], [1, 0]) == 0.0

    def test_perfect_prediction(self):
        report = evaluate_flags([0, 1, 0, 1], [0, 1, 0, 1])
        assert report.precision == report.recall == report.f1 == report.accuracy == 1.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            precision_score([0, 1], [0])

    def test_non_binary_labels_raise(self):
        with pytest.raises(ValueError):
            precision_score([0, 2], [0, 1])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            precision_score([], [])

    def test_report_as_dict(self):
        report = evaluate_flags(Y_TRUE, Y_PRED)
        as_dict = report.as_dict()
        assert as_dict["tp"] == 2
        assert as_dict["f1"] == pytest.approx(2 / 3)

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_f1_is_harmonic_mean(self, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, 2, size=40)
        y_pred = rng.integers(0, 2, size=40)
        if y_true.sum() == 0 or y_pred.sum() == 0:
            return
        precision = precision_score(y_true, y_pred)
        recall = recall_score(y_true, y_pred)
        expected = 0.0 if precision + recall == 0 else (
            2 * precision * recall / (precision + recall))
        assert f1_score(y_true, y_pred) == pytest.approx(expected)


class TestTopK:
    def test_flags_top_scores(self):
        scores = [0.1, 0.9, 0.2, 0.8]
        y_true = [0, 1, 0, 1]
        report = evaluate_top_k(scores, y_true, 2)
        assert report.precision == 1.0
        assert report.recall == 1.0

    def test_zero_flagged(self):
        report = evaluate_top_k([0.1, 0.2], [0, 1], 0)
        assert report.recall == 0.0
        assert report.precision == 0.0

    def test_out_of_range_k_raises(self):
        with pytest.raises(ValueError):
            evaluate_top_k([0.1], [1], 5)

    def test_score_label_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            evaluate_top_k([0.1, 0.2], [1], 1)

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_flag_count_equals_k(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=30)
        y_true = rng.integers(0, 2, size=30)
        if y_true.sum() == 0:
            return
        report = evaluate_top_k(scores, y_true, 5)
        assert report.tp + report.fp == 5
