"""Tests for detection-rate curves and separation profiles (Figs. 9-10)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.detection import (
    detection_rate_at_fraction,
    detection_rate_curve,
    separation_profile,
)


class TestDetectionCurve:
    def test_perfect_detector(self):
        scores = [10.0, 9.0, 1.0, 0.5, 0.1]
        labels = [1, 1, 0, 0, 0]
        curve = detection_rate_curve(scores, labels, num_points=11)
        assert curve.rate_at(0.4) == 1.0
        assert curve.detection_rates[-1] == 1.0
        assert curve.detection_rates[0] == 0.0

    def test_worst_detector(self):
        scores = [0.1, 0.2, 5.0, 6.0]
        labels = [1, 1, 0, 0]
        curve = detection_rate_curve(scores, labels, num_points=5)
        assert curve.rate_at(0.5) == 0.0
        assert curve.rate_at(1.0) == 1.0

    def test_monotonically_nondecreasing(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=60)
        labels = rng.integers(0, 2, size=60)
        curve = detection_rate_curve(scores, labels)
        rates = np.asarray(curve.detection_rates)
        assert np.all(np.diff(rates) >= -1e-12)

    def test_area_of_perfect_detector_is_high(self):
        scores = np.arange(100, 0, -1, dtype=float)
        labels = np.zeros(100, dtype=int)
        labels[:5] = 1  # the 5 highest scores are the anomalies
        curve = detection_rate_curve(scores, labels)
        assert curve.area() > 0.9

    def test_no_anomalies_raises(self):
        with pytest.raises(ValueError):
            detection_rate_curve([0.1, 0.2], [0, 0])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            detection_rate_curve([0.1], [0, 1])

    def test_rate_at_fraction_helper(self):
        scores = [3.0, 2.0, 1.0, 0.5]
        labels = [1, 0, 0, 1]
        assert detection_rate_at_fraction(scores, labels, 0.25) == 0.5

    def test_fraction_out_of_range_raises(self):
        with pytest.raises(ValueError):
            detection_rate_at_fraction([1.0], [1], 1.5)

    def test_as_dict_round_trip(self):
        curve = detection_rate_curve([3.0, 1.0], [1, 0], num_points=3)
        as_dict = curve.as_dict()
        assert len(as_dict["fractions"]) == 3
        assert as_dict["detection_rates"][-1] == 1.0

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_final_rate_is_always_one(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=50)
        labels = np.zeros(50, dtype=int)
        labels[rng.choice(50, size=5, replace=False)] = 1
        curve = detection_rate_curve(scores, labels)
        assert curve.detection_rates[-1] == pytest.approx(1.0)


class TestSeparationProfile:
    def test_sorted_scores_ascending(self):
        profile = separation_profile([3.0, 1.0, 2.0], [1, 0, 0])
        assert list(profile["sorted_scores"]) == [1.0, 2.0, 3.0]
        assert list(profile["sorted_is_anomaly"]) == [False, False, True]

    def test_order_indexes_original_array(self):
        scores = np.array([5.0, 1.0, 3.0])
        profile = separation_profile(scores, [1, 0, 0])
        assert np.allclose(scores[profile["order"]], profile["sorted_scores"])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            separation_profile([1.0], [1, 0])
