"""ModelRegistry: identity, lifecycle, and the shared compiler cache."""

import numpy as np
import pytest

from repro.core.detector import QuorumDetector
from repro.quantum.compiler import CircuitCompiler
from repro.serving.artifact import ModelArtifact, load_model, save_model
from repro.serving.models import ApiError
from repro.serving.registry import ID_DIGEST_CHARS, ModelRegistry
from repro.serving.scorer import OnlineScorer


def _toy_data(samples=24, features=5, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(samples, features))


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    data = _toy_data()
    detector = QuorumDetector(ensemble_groups=2, seed=11, shots=512,
                              compile_circuits=True)
    detector.fit(data)
    path = save_model(detector,
                      tmp_path_factory.mktemp("registry") / "model.json")
    return {"data": data, "detector": detector, "path": path}


class TestIdentity:
    def test_derived_id_is_sha_prefix(self, bundle):
        with ModelRegistry(compiler=CircuitCompiler()) as registry:
            entry = registry.load(bundle["path"])
            assert entry.model_id == entry.sha256[:ID_DIGEST_CHARS]
            assert len(entry.sha256) == 64

    def test_sha_is_stable_across_load_and_memory(self, bundle):
        artifact = load_model(bundle["path"])
        in_memory = ModelArtifact.from_detector(bundle["detector"])
        assert artifact.content_sha256() == in_memory.content_sha256()

    def test_identical_reload_is_idempotent(self, bundle):
        with ModelRegistry(compiler=CircuitCompiler()) as registry:
            first = registry.load(bundle["path"], model_id="m")
            second = registry.load(bundle["path"], model_id="m")
            assert second is first
            assert len(registry) == 1

    def test_id_conflict_with_different_content_is_model_exists(self, bundle,
                                                                tmp_path):
        other = QuorumDetector(ensemble_groups=2, seed=99, shots=512)
        other.fit(bundle["data"])
        other_path = save_model(other, tmp_path / "other.json")
        with ModelRegistry(compiler=CircuitCompiler()) as registry:
            registry.load(bundle["path"], model_id="m")
            with pytest.raises(ApiError) as excinfo:
                registry.load(other_path, model_id="m")
            assert excinfo.value.code == "model_exists"
            assert excinfo.value.http_status == 409

    def test_resolve_by_id_sha_and_default(self, bundle):
        with ModelRegistry(compiler=CircuitCompiler()) as registry:
            entry = registry.load(bundle["path"], model_id="prod")
            assert registry.get("prod") is entry
            assert registry.get(entry.sha256) is entry
            assert registry.get() is entry  # None -> default (first loaded)
            assert registry.default_id() == "prod"

    def test_unknown_id_is_model_not_found(self, bundle):
        with ModelRegistry(compiler=CircuitCompiler()) as registry:
            registry.load(bundle["path"])
            with pytest.raises(ApiError) as excinfo:
                registry.get("missing")
            assert excinfo.value.code == "model_not_found"
            assert excinfo.value.http_status == 404

    def test_corrupt_bundle_is_bad_request(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with ModelRegistry(compiler=CircuitCompiler()) as registry:
            with pytest.raises(ApiError) as excinfo:
                registry.load(bad)
            assert excinfo.value.code == "bad_request"


class TestLifecycle:
    def test_unload_removes_and_closes(self, bundle):
        with ModelRegistry(compiler=CircuitCompiler()) as registry:
            registry.load(bundle["path"], model_id="a")
            entry = registry.unload("a")
            assert len(registry) == 0
            with pytest.raises(ApiError):
                registry.get("a")
            # the scorer is closed: its worker rejects new work
            with pytest.raises(RuntimeError):
                entry.scorer.submit(bundle["data"][:1])

    def test_closed_registry_refuses_loads(self, bundle):
        registry = ModelRegistry(compiler=CircuitCompiler())
        registry.close()
        with pytest.raises(ApiError) as excinfo:
            registry.load(bundle["path"])
        assert excinfo.value.code == "shutting_down"

    def test_adopt_scorer_keeps_prebuilt_instance(self, bundle):
        scorer = OnlineScorer(load_model(bundle["path"]))
        with ModelRegistry(compiler=CircuitCompiler()) as registry:
            entry = registry.adopt_scorer(scorer, model_id="pre")
            assert entry.scorer is scorer
            assert registry.get("pre").sha256 == entry.sha256


class TestSharedCompilerCache:
    def test_two_models_share_compiled_programs(self, bundle):
        """Acceptance criterion: two concurrently served artifacts share the
        compiler cache -- scoring via the second id adds NO new compiles,
        only hits."""
        compiler = CircuitCompiler()
        with ModelRegistry(compiler=compiler) as registry:
            registry.load(bundle["path"], model_id="a")
            registry.load(bundle["path"], model_id="b")
            probe = bundle["data"][:4]

            registry.get("a").scorer.submit(probe).result(timeout=60)
            warm = compiler.stats
            warm_compiles, warm_hits = warm.compiles, warm.hits
            assert warm_compiles > 0

            registry.get("b").scorer.submit(probe).result(timeout=60)
            after = compiler.stats
            assert after.compiles == warm_compiles
            assert after.hits > warm_hits

    def test_diagnostics_exposes_cache_counters(self, bundle):
        with ModelRegistry(compiler=CircuitCompiler()) as registry:
            registry.load(bundle["path"], model_id="a")
            diag = registry.diagnostics()
            assert [m["model_id"] for m in diag["models"]] == ["a"]
            assert diag["models"][0]["is_default"] is True
            assert set(diag["compiler_cache"]) == {
                "compiles", "group_compiles", "hits", "misses", "entries",
                "bytes"}
