"""Schema hardening tests for the versioned model-artifact bundle."""

import json

import numpy as np
import pytest

from repro.core.detector import QuorumDetector
from repro.serving.artifact import (
    ARTIFACT_FORMAT,
    SCHEMA_VERSION,
    ArtifactCorruptError,
    ArtifactDtypeError,
    ArtifactError,
    ArtifactVersionError,
    ModelArtifact,
    load_model,
    save_model,
)


@pytest.fixture(scope="module")
def fitted_detector():
    rng = np.random.default_rng(42)
    data = rng.normal(size=(36, 7))
    detector = QuorumDetector(ensemble_groups=3, seed=11, shots=512)
    detector.fit(data)
    return detector


@pytest.fixture()
def model_path(fitted_detector, tmp_path):
    return save_model(fitted_detector, tmp_path / "model.json")


def _rewrite(path, mutate):
    payload = json.loads(path.read_text())
    mutate(payload)
    path.write_text(json.dumps(payload))
    return path


class TestRoundTrip:
    def test_save_then_load_restores_every_member(self, fitted_detector,
                                                  model_path):
        artifact = load_model(model_path)
        assert artifact.schema_version == SCHEMA_VERSION
        assert artifact.config == fitted_detector.config
        assert len(artifact.members) == fitted_detector.config.ensemble_groups
        for plan, member in zip(fitted_detector.member_plans(),
                                artifact.members):
            assert np.array_equal(plan.selected_features,
                                  member.selected_features)
            assert plan.buckets.buckets == member.buckets
            assert np.array_equal(plan.ansatz.angles_, member.angles)
            assert plan.rng_state == member.rng_state

    def test_bucket_reference_statistics_round_trip(self, fitted_detector,
                                                    model_path):
        artifact = load_model(model_path)
        for result, member in zip(fitted_detector.member_results(),
                                  artifact.members):
            assert set(member.reference) == set(result.bucket_statistics)
            for level, (means, stds) in result.bucket_statistics.items():
                loaded_means, loaded_stds = member.reference[level]
                assert np.array_equal(loaded_means, means)
                assert np.array_equal(loaded_stds, stds)

    def test_restored_rng_continues_the_member_stream(self, fitted_detector,
                                                      model_path):
        artifact = load_model(model_path)
        member = artifact.members[0]
        plan_state = fitted_detector.member_plans()[0].rng_state
        expected = np.random.default_rng()
        expected.bit_generator.state = json.loads(json.dumps(plan_state))
        restored = member.restored_rng()
        assert np.array_equal(restored.integers(0, 1 << 30, size=16),
                              expected.integers(0, 1 << 30, size=16))

    def test_normalizer_round_trip(self, fitted_detector, model_path):
        artifact = load_model(model_path)
        rng = np.random.default_rng(5)
        probe = rng.normal(size=(9, artifact.num_features))
        expected = fitted_detector.normalizer.transform(probe)
        assert np.array_equal(artifact.build_normalizer().transform(probe),
                              expected)

    def test_library_versions_and_metadata_recorded(self, model_path):
        payload = json.loads(model_path.read_text())
        assert payload["format"] == ARTIFACT_FORMAT
        assert payload["schema_version"] == SCHEMA_VERSION
        assert set(payload["library_versions"]) == {"python", "numpy",
                                                    "quorum-repro"}
        assert payload["created_at"]

    def test_save_requires_a_fitted_detector(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_model(QuorumDetector(ensemble_groups=2), tmp_path / "x.json")


class TestCorruptFiles:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactCorruptError, match="cannot read"):
            load_model(tmp_path / "missing.json")

    def test_truncated_json(self, model_path):
        text = model_path.read_text()
        model_path.write_text(text[: len(text) // 2])
        with pytest.raises(ArtifactCorruptError, match="not valid JSON"):
            load_model(model_path)

    def test_non_object_root(self, model_path):
        model_path.write_text("[1, 2, 3]")
        with pytest.raises(ArtifactCorruptError, match="root is not an object"):
            load_model(model_path)

    def test_scalar_where_object_expected(self, model_path):
        for field in ("normalizer", "fit"):
            path = _rewrite(model_path, lambda p, f=field: p.update({f: 5}))
            with pytest.raises(ArtifactCorruptError):
                load_model(path)

    def test_scalar_bucket_entry(self, model_path):
        def mutate(payload):
            payload["members"][0]["buckets"][0] = 7

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactCorruptError):
            load_model(model_path)

    def test_wrong_format_marker(self, model_path):
        _rewrite(model_path, lambda p: p.update(format="other/model"))
        with pytest.raises(ArtifactCorruptError, match="not a quorum-repro"):
            load_model(model_path)

    def test_missing_members(self, model_path):
        _rewrite(model_path, lambda p: p.pop("members"))
        with pytest.raises(ArtifactCorruptError, match="members"):
            load_model(model_path)

    def test_empty_members(self, model_path):
        _rewrite(model_path, lambda p: p.update(members=[]))
        with pytest.raises(ArtifactCorruptError, match="no ensemble members"):
            load_model(model_path)

    def test_missing_reference_level(self, model_path):
        def mutate(payload):
            payload["members"][0]["reference"].popitem()

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactCorruptError, match="reference"):
            load_model(model_path)

    def test_out_of_range_feature_index_rejected(self, model_path):
        def mutate(payload):
            payload["members"][0]["selected_features"][0] = 999

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactCorruptError, match="selected_features"):
            load_model(model_path)

    def test_negative_feature_index_rejected(self, model_path):
        def mutate(payload):
            payload["members"][0]["selected_features"][0] = -1

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactCorruptError, match="selected_features"):
            load_model(model_path)

    def test_duplicate_feature_indices_rejected(self, model_path):
        def mutate(payload):
            features = payload["members"][0]["selected_features"]
            features[0] = features[1]

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactCorruptError, match="duplicate"):
            load_model(model_path)

    def test_feature_subset_exceeding_register_rejected(self, tmp_path):
        # A 10-feature dataset on a 3-qubit register (capacity 2^3 - 1 = 7):
        # eight in-bounds distinct indices are one more than the register fits.
        rng = np.random.default_rng(1)
        detector = QuorumDetector(ensemble_groups=1, seed=2, shots=64)
        detector.fit(rng.normal(size=(24, 10)))
        path = save_model(detector, tmp_path / "wide.json")
        _rewrite(path, lambda p: p["members"][0].update(
            selected_features=list(range(8))))
        with pytest.raises(ArtifactCorruptError, match="register"):
            load_model(path)

    def test_buckets_must_partition_the_training_samples(self, model_path):
        def mutate(payload):
            # Duplicate one index: same count, no longer a partition.
            bucket = payload["members"][0]["buckets"][0]
            bucket[0] = bucket[1]

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactCorruptError, match="partition"):
            load_model(model_path)

    def test_bucket_index_out_of_range_rejected(self, model_path):
        def mutate(payload):
            payload["members"][0]["buckets"][0][0] = 10_000

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactCorruptError, match="partition"):
            load_model(model_path)

    def test_unknown_config_field(self, model_path):
        _rewrite(model_path, lambda p: p["config"].update(surprise=1))
        with pytest.raises(ArtifactCorruptError, match="surprise"):
            load_model(model_path)

    def test_broken_rng_state_fails_at_load(self, model_path):
        def mutate(payload):
            payload["members"][0]["rng_state"] = {"bit_generator": "NotAThing"}

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactCorruptError, match="bit generator"):
            load_model(model_path)

    def test_empty_rng_state_fails_at_load(self, model_path):
        _rewrite(model_path,
                 lambda p: p["members"][0].update(rng_state={}))
        with pytest.raises(ArtifactCorruptError):
            load_model(model_path)

    def test_non_bit_generator_name_rejected(self, model_path):
        """A name resolving to some other np.random callable must not run."""

        def mutate(payload):
            payload["members"][0]["rng_state"]["bit_generator"] = "seed"

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactCorruptError, match="bit generator"):
            load_model(model_path)

    def test_truncated_member_list_rejected(self, model_path):
        def mutate(payload):
            del payload["members"][-1]

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactCorruptError, match="ensemble_groups"):
            load_model(model_path)

    def test_level_sweep_must_match_the_config(self, model_path):
        def mutate(payload):
            payload["fit"]["compression_levels"] = [1]
            for member in payload["members"]:
                member["reference"] = {"1": member["reference"]["1"]}

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactCorruptError, match="compression sweep"):
            load_model(model_path)


class TestVersionMismatch:
    def test_newer_schema_is_rejected(self, model_path):
        _rewrite(model_path, lambda p: p.update(schema_version=SCHEMA_VERSION + 1))
        with pytest.raises(ArtifactVersionError, match="schema version"):
            load_model(model_path)

    def test_older_schema_is_rejected(self, model_path):
        _rewrite(model_path, lambda p: p.update(schema_version=0))
        with pytest.raises(ArtifactVersionError):
            load_model(model_path)

    def test_non_integer_schema_version(self, model_path):
        _rewrite(model_path, lambda p: p.update(schema_version="1"))
        with pytest.raises(ArtifactCorruptError, match="integer"):
            load_model(model_path)


class TestDtypeMismatch:
    def test_string_angles_rejected(self, model_path):
        def mutate(payload):
            payload["members"][0]["angles"] = ["a", "b", "c"]

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactDtypeError, match="angles"):
            load_model(model_path)

    def test_numeric_strings_rejected(self, model_path):
        """Even string-encoded numbers are a dtype mismatch, not a value."""

        def mutate(payload):
            angles = payload["members"][0]["angles"]
            payload["members"][0]["angles"] = [str(a) for a in angles]

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactDtypeError, match="angles"):
            load_model(model_path)

    def test_wrong_angle_count_rejected(self, model_path):
        def mutate(payload):
            payload["members"][0]["angles"] = [0.1, 0.2]

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactDtypeError, match="angles"):
            load_model(model_path)

    def test_fractional_feature_indices_rejected(self, model_path):
        def mutate(payload):
            payload["members"][0]["selected_features"] = [0.5, 1.25]

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactDtypeError, match="non-integer"):
            load_model(model_path)

    def test_non_finite_reference_rejected(self, model_path):
        def mutate(payload):
            level = next(iter(payload["members"][0]["reference"]))
            stats = payload["members"][0]["reference"][level]
            stats["bucket_means"][0] = None

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactDtypeError):
            load_model(model_path)

    def test_feature_bounds_shape_checked(self, model_path):
        def mutate(payload):
            payload["normalizer"]["feature_min"] = [0.0]

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactDtypeError, match="feature_min"):
            load_model(model_path)

    def test_boolean_scalar_rejected(self, model_path):
        def mutate(payload):
            payload["fit"]["num_samples"] = True

        _rewrite(model_path, mutate)
        with pytest.raises(ArtifactDtypeError, match="integer"):
            load_model(model_path)


class TestNoiseFingerprint:
    def test_noiseless_model_has_no_fingerprint(self, model_path):
        assert load_model(model_path).noise_fingerprint is None

    def test_tampered_fingerprint_rejected(self, model_path):
        _rewrite(model_path, lambda p: p.update(noise_fingerprint="deadbeef"))
        with pytest.raises(ArtifactError, match="fingerprint mismatch"):
            load_model(model_path)

    def test_noisy_model_records_and_verifies_fingerprint(self, tmp_path):
        rng = np.random.default_rng(0)
        detector = QuorumDetector(ensemble_groups=1, seed=2, shots=64,
                                  backend="density_matrix", noisy=True,
                                  num_qubits=2)
        detector.fit(rng.normal(size=(16, 4)))
        path = save_model(detector, tmp_path / "noisy.json")
        artifact = load_model(path)
        assert artifact.noise_fingerprint is not None
        assert len(artifact.noise_fingerprint) == 64  # sha256 hex

    def test_from_detector_artifact_passthrough(self, fitted_detector,
                                                tmp_path):
        artifact = ModelArtifact.from_detector(fitted_detector)
        path = save_model(artifact, tmp_path / "direct.json")
        assert load_model(path).num_samples == artifact.num_samples
