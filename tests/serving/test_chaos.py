"""Chaos suite: a real fleet under real faults must converge back to K healthy.

Every test here spawns actual ``quorum-repro serve`` subprocesses under a
:class:`FleetSupervisor` with its health loop running, injects a fault from
:mod:`repro.serving.faults`, and asserts convergence -- plus, where load is
applied, a >= 99% success rate for idempotent requests.  Marked ``chaos`` and
excluded from tier-1 (run with ``pytest -m chaos tests/serving``).
"""

import json
import os
import shutil
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.detector import QuorumDetector
from repro.serving.artifact import save_model
from repro.serving.faults import ChaosGate, FaultInjector
from repro.serving.loadtest import spawn_replica
from repro.serving.server import build_server
from repro.serving.supervisor import (
    CRASH_LOOPED,
    EJECTED,
    HEALTHY,
    STOPPED,
    SUSPECT,
    FleetSupervisor,
    SupervisorPolicy,
)

pytestmark = pytest.mark.chaos

#: Aggressive control-loop settings so faults are detected in seconds.
def _policy(**overrides):
    kwargs = dict(
        health_interval_s=0.25, probe_timeout_s=1.0,
        eject_after=2, readmit_after=2,
        backoff_base_s=0.3, backoff_max_s=2.0, backoff_jitter=0.1,
        crash_loop_threshold=3, crash_loop_window_s=20.0,
        startup_grace_s=60.0, drain_timeout_s=10.0, kill_timeout_s=5.0)
    kwargs.update(overrides)
    return SupervisorPolicy(**kwargs)


def _wait_until(predicate, timeout_s=30.0, poll_s=0.2):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return predicate()


def _get_json(base_url, path, timeout=15.0):
    with urllib.request.urlopen(base_url + path, timeout=timeout) as response:
        return json.load(response)


def _post_json(base_url, path, payload, timeout=60.0, attempts=3):
    """POST with client-level retries (scoring is read-only, so safe)."""
    body = json.dumps(payload).encode("utf-8")
    last_error = None
    for _ in range(attempts):
        request = urllib.request.Request(
            base_url + path, data=body,
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return json.load(response)
        except (urllib.error.URLError, OSError) as error:
            last_error = error
            time.sleep(0.5)
    raise AssertionError(f"scoring kept failing: {last_error}")


class _Load:
    """Closed-loop idempotent GET load against the proxy, until stopped."""

    def __init__(self, base_url, concurrency=4, path="/v1/healthz"):
        self._url = base_url + path
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self.ok = 0
        self.failed = 0
        self.failures = []
        self._threads = [threading.Thread(target=self._worker, daemon=True)
                         for _ in range(concurrency)]

    def __enter__(self):
        for thread in self._threads:
            thread.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()

    def _worker(self):
        while not self._stop.is_set():
            try:
                with urllib.request.urlopen(self._url,
                                            timeout=20.0) as response:
                    payload = json.load(response)  # truncation would not parse
                ok = response.status == 200 and payload.get("status") == "ok"
            except Exception as error:  # noqa: BLE001 - count, do not mask
                ok = False
                payload = repr(error)
            with self._lock:
                if ok:
                    self.ok += 1
                else:
                    self.failed += 1
                    if len(self.failures) < 5:
                        self.failures.append(payload)

    def stop(self):
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=30.0)

    @property
    def success_rate(self):
        total = self.ok + self.failed
        return 1.0 if total == 0 else self.ok / total


@pytest.fixture(scope="module")
def training_data():
    rng = np.random.default_rng(23)
    return rng.normal(size=(24, 4))


@pytest.fixture(scope="module")
def model_path(tmp_path_factory, training_data):
    detector = QuorumDetector(ensemble_groups=2, seed=17, shots=256)
    detector.fit(training_data)
    return str(save_model(detector,
                          tmp_path_factory.mktemp("model") / "m.json"))


@pytest.fixture()
def fleet(model_path):
    supervisor = FleetSupervisor(model_path, replicas=3, policy=_policy(),
                                 backend_timeout_s=5.0, debug_hooks=True,
                                 batch_window_ms=1.0)
    supervisor.start()
    supervisor.start_health_loop()
    assert supervisor.wait_for_healthy(3, timeout_s=120.0), \
        supervisor.status()
    yield supervisor
    supervisor.close()


def _slot_info(supervisor, slot_id):
    return next(info for info in supervisor.status()["slots"]
                if info["slot"] == slot_id)


class TestSigkill:
    def test_recovers_to_full_strength_under_load(self, fleet):
        victim = _slot_info(fleet, 0)
        with _Load("http://%s:%d" % fleet.proxy.address) as load:
            time.sleep(1.0)  # steady state first
            FaultInjector().kill(victim["pid"])
            # Crash detected (slot left healthy) before "recovered" means
            # anything -- otherwise stale pre-tick state satisfies the wait.
            assert _wait_until(lambda: fleet.healthy_count() < 3,
                               timeout_s=30.0, poll_s=0.05), fleet.status()
            assert fleet.wait_for_healthy(3, timeout_s=60.0), fleet.status()
            time.sleep(1.0)  # steady state after recovery
        assert load.ok > 50
        assert load.success_rate >= 0.99, load.failures
        recovered = _slot_info(fleet, 0)
        assert recovered["restarts"] >= 1
        assert recovered["pid"] != victim["pid"]
        assert _slot_info(fleet, 0)["last_exit"]["exit_code"] == -9


class TestSigstopHang:
    def test_hung_replica_is_ejected_then_readmitted(self, fleet):
        victim = _slot_info(fleet, 0)
        injector = FaultInjector()
        injector.pause(victim["pid"])
        try:
            # Alive but unresponsive: the probe timeout is the only detector.
            assert _wait_until(
                lambda: _slot_info(fleet, 0)["state"] == EJECTED,
                timeout_s=30.0), fleet.status()
            ejected = _slot_info(fleet, 0)
            assert ejected["alive"] is True  # a hang is not a crash
            assert ejected["restarts"] == 0  # and must not trigger a restart
            address = ejected["address"]
            assert address not in fleet.proxy.backend_addresses()
        finally:
            injector.resume(victim["pid"])
        assert fleet.wait_for_healthy(3, timeout_s=60.0), fleet.status()
        assert _slot_info(fleet, 0)["pid"] == victim["pid"]  # same process
        assert address in fleet.proxy.backend_addresses()


class _GatedReplica:
    """A ReplicaProcess whose advertised address is a ChaosGate in front."""

    def __init__(self, process, gate):
        self._process = process
        self.gate = gate

    @property
    def address(self):
        return "%s:%d" % self.gate.address

    def __getattr__(self, name):
        return getattr(self._process, name)

    def close(self, **kwargs):
        self.gate.close()
        return self._process.close(**kwargs)


@pytest.fixture()
def gated_fleet(model_path):
    gates = []

    def spawner():
        process = spawn_replica(model_path, batch_window_ms=1.0)
        gate = ChaosGate(process.host, process.port).start()
        gates.append(gate)
        return _GatedReplica(process, gate)

    supervisor = FleetSupervisor(replicas=3, policy=_policy(),
                                 backend_timeout_s=5.0, spawner=spawner)
    supervisor.start()
    supervisor.start_health_loop()
    assert supervisor.wait_for_healthy(3, timeout_s=120.0), \
        supervisor.status()
    yield supervisor
    supervisor.close()
    for gate in gates:
        gate.close()


class TestConnectRefused:
    def test_refused_backend_is_routed_around_and_readmitted(self,
                                                             gated_fleet):
        gate = gated_fleet._slots[0].process.gate
        with _Load("http://%s:%d" % gated_fleet.proxy.address) as load:
            time.sleep(1.0)
            gate.refuse()
            assert _wait_until(
                lambda: _slot_info(gated_fleet, 0)["state"] == EJECTED,
                timeout_s=30.0), gated_fleet.status()
            gate.restore()
            assert gated_fleet.wait_for_healthy(3, timeout_s=60.0), \
                gated_fleet.status()
            time.sleep(1.0)
        # The proxy retries idempotent GETs on connect-refused, so clients
        # should barely notice the whole eject/readmit cycle.
        assert load.ok > 50
        assert load.success_rate >= 0.99, load.failures


class TestMidResponseDisconnect:
    def test_cut_responses_never_truncate_and_fleet_recovers(self,
                                                             gated_fleet):
        gate = gated_fleet._slots[0].process.gate
        with _Load("http://%s:%d" % gated_fleet.proxy.address) as load:
            time.sleep(1.0)
            gate.cut_responses(after_bytes=20)  # severs inside the headers
            assert _wait_until(
                lambda: _slot_info(gated_fleet, 0)["state"] == EJECTED,
                timeout_s=30.0), gated_fleet.status()
            gate.restore()
            assert gated_fleet.wait_for_healthy(3, timeout_s=60.0), \
                gated_fleet.status()
            time.sleep(1.0)
        # Severed GETs fail over to a live peer; *no* response may be a
        # truncated body passed off as success (_Load parses every payload).
        assert load.ok > 50
        assert load.success_rate >= 0.99, load.failures


class TestCrashLoopBreaker:
    def test_parks_after_repeated_boot_crashes_and_revives(self, model_path,
                                                           tmp_path):
        doomed = tmp_path / "doomed.json"
        shutil.copy(model_path, doomed)
        supervisor = FleetSupervisor(str(doomed), replicas=1,
                                     policy=_policy(), batch_window_ms=1.0)
        supervisor.start()
        supervisor.start_health_loop()
        try:
            assert supervisor.wait_for_healthy(1, timeout_s=120.0)
            os.remove(doomed)  # every respawn from now on crashes on boot
            FaultInjector().kill(_slot_info(supervisor, 0)["pid"])
            assert _wait_until(
                lambda: _slot_info(supervisor, 0)["state"] == CRASH_LOOPED,
                timeout_s=60.0), supervisor.status()
            info = _slot_info(supervisor, 0)
            assert info["next_restart_in_s"] is None  # parked, not retrying
            assert "parked" in info["last_transition_reason"]
            assert info["last_exit"]["exit_code"] not in (None, 0)
            assert supervisor.status()["healthy"] == 0
            parked_spawns = info["restarts"]
            time.sleep(2.0)  # parked means parked: no restart churn
            assert _slot_info(supervisor, 0)["restarts"] == parked_spawns
            # Operator fixes the root cause, then revives the slot.
            shutil.copy(model_path, doomed)
            supervisor.revive(0)
            assert supervisor.wait_for_healthy(1, timeout_s=120.0), \
                supervisor.status()
        finally:
            supervisor.close()


class TestGracefulScaleIn:
    def test_zero_dropped_requests_during_drain(self, fleet):
        injector = FaultInjector()
        for info in fleet.status()["slots"]:
            injector.set_delay(info["address"], 0.2)  # keep requests in flight
        with _Load("http://%s:%d" % fleet.proxy.address,
                   concurrency=6) as load:
            time.sleep(1.0)
            fleet.scale_to(2)
            time.sleep(1.0)
        assert load.ok > 10
        assert load.failed == 0, load.failures  # zero dropped, not "few"
        status = fleet.status()
        assert status["target_replicas"] == 2
        assert status["healthy"] == 2
        stopped = [s for s in status["slots"] if s["state"] == STOPPED]
        assert len(stopped) == 1
        assert stopped[0]["last_exit"]["exit_code"] == 0  # drained, not shot


class TestReplayParity:
    def test_bitwise_parity_through_surviving_replicas(self, fleet,
                                                       model_path,
                                                       training_data):
        base_url = "http://%s:%d" % fleet.proxy.address
        default_model = _get_json(base_url, "/v1/healthz")["default_model"]
        score_path = f"/v1/models/{default_model}/score"
        payload = {"samples": training_data.tolist(), "mode": "replay"}

        before = _post_json(base_url, score_path, payload)
        victim = _slot_info(fleet, 0)
        FaultInjector().kill(victim["pid"])
        assert _wait_until(lambda: fleet.healthy_count() < 3,
                           timeout_s=30.0, poll_s=0.05), fleet.status()
        assert fleet.wait_for_healthy(3, timeout_s=60.0), fleet.status()
        after = _post_json(base_url, score_path, payload)
        assert after["scores"] == before["scores"]  # bitwise, not approx

        # And both match a plain single-process server: replica membership
        # churn must never change what the model computes.
        server = build_server(model_path, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            reference = _post_json(f"http://{host}:{port}", score_path,
                                   payload)
        finally:
            server.shutdown()
            server.server_close()
            server.runtime.close()
            thread.join(timeout=10)
        assert after["scores"] == reference["scores"]
