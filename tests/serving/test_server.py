"""HTTP-service tests driven through a real socket with stdlib clients only."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.detector import QuorumDetector
from repro.serving.artifact import save_model
from repro.serving.server import build_server


@pytest.fixture(scope="module")
def served_model(tmp_path_factory):
    rng = np.random.default_rng(3)
    data = rng.normal(size=(30, 5))
    detector = QuorumDetector(ensemble_groups=3, seed=19, shots=512)
    detector.fit(data)
    path = save_model(detector, tmp_path_factory.mktemp("model") / "m.json")
    server = build_server(path, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", data
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post(url, payload, raw=None):
    body = raw if raw is not None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


class TestRoutes:
    def test_healthz(self, served_model):
        base, _ = served_model
        status, payload = _get(base + "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["schema_version"] == 1
        assert payload["ensemble_groups"] == 3

    def test_model_diagnostics(self, served_model):
        base, _ = served_model
        status, payload = _get(base + "/model")
        assert status == 200
        assert payload["model"]["format"] == "quorum-repro/model"
        assert payload["model"]["schema_version"] == 1
        assert {"compiles", "hits", "misses"} <= set(payload["compiler_cache"])
        assert "requests" in payload["serving"]

    def test_score_round_trip(self, served_model):
        base, data = served_model
        status, payload = _post(base + "/score",
                                {"samples": data[:4].tolist()})
        assert status == 200
        assert payload["mode"] == "reference"
        assert payload["num_samples"] == 4
        assert len(payload["scores"]) == 4
        assert payload["num_runs"] == 3 * 2
        assert payload["schema_version"] == 1

    def test_score_is_deterministic_across_requests(self, served_model):
        base, data = served_model
        _, first = _post(base + "/score", {"samples": data[:3].tolist()})
        _, second = _post(base + "/score", {"samples": data[:3].tolist()})
        assert first["scores"] == second["scores"]

    def test_concurrent_posts_match_sequential(self, served_model):
        base, data = served_model
        requests = [data[i:i + 2].tolist() for i in range(6)]
        sequential = [_post(base + "/score", {"samples": r})[1]["scores"]
                      for r in requests]
        results = [None] * len(requests)

        def worker(index):
            results[index] = _post(base + "/score",
                                   {"samples": requests[index]})[1]["scores"]

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(requests))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert results == sequential

    def test_replay_mode_over_http(self, served_model):
        base, data = served_model
        status, payload = _post(base + "/score",
                                {"samples": data.tolist(), "mode": "replay"})
        assert status == 200
        assert payload["mode"] == "replay"

    def test_cache_counters_grow_across_requests(self, served_model):
        base, data = served_model
        _, before = _get(base + "/model")
        _post(base + "/score", {"samples": data[:1].tolist()})
        _post(base + "/score", {"samples": data[:1].tolist()})
        _, after = _get(base + "/model")
        assert after["compiler_cache"]["hits"] > before["compiler_cache"]["hits"]
        assert (after["compiler_cache"]["compiles"]
                == before["compiler_cache"]["compiles"])
        assert after["serving"]["requests"] >= before["serving"]["requests"] + 2


class TestErrors:
    def _status_of(self, call):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call()
        return excinfo.value.code, json.loads(excinfo.value.read())

    def test_unknown_get_path(self, served_model):
        base, _ = served_model
        code, payload = self._status_of(lambda: _get(base + "/nope"))
        assert code == 404
        assert "unknown path" in payload["error"]

    def test_unknown_post_path(self, served_model):
        base, data = served_model
        code, _ = self._status_of(
            lambda: _post(base + "/detect", {"samples": data[:1].tolist()}))
        assert code == 404

    def test_invalid_json_body(self, served_model):
        base, _ = served_model
        code, payload = self._status_of(
            lambda: _post(base + "/score", None, raw=b"{not json"))
        assert code == 400
        assert "invalid JSON" in payload["error"]

    def test_missing_samples_key(self, served_model):
        base, _ = served_model
        code, payload = self._status_of(
            lambda: _post(base + "/score", {"rows": [[1.0]]}))
        assert code == 400
        assert "samples" in payload["error"]

    def test_wrong_feature_width(self, served_model):
        base, _ = served_model
        code, payload = self._status_of(
            lambda: _post(base + "/score", {"samples": [[1.0, 2.0]]}))
        assert code == 400
        assert "features" in payload["error"]

    def test_unknown_mode(self, served_model):
        base, data = served_model
        code, payload = self._status_of(
            lambda: _post(base + "/score", {"samples": data[:1].tolist(),
                                            "mode": "transduce"}))
        assert code == 400
        assert "unknown scoring mode" in payload["error"]

    def test_replay_with_wrong_count(self, served_model):
        base, data = served_model
        code, payload = self._status_of(
            lambda: _post(base + "/score", {"samples": data[:2].tolist(),
                                            "mode": "replay"}))
        assert code == 400
        assert "replay mode requires" in payload["error"]

    def test_empty_body(self, served_model):
        base, _ = served_model
        code, _ = self._status_of(lambda: _post(base + "/score", None, raw=b""))
        assert code == 400
