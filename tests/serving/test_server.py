"""HTTP-service tests driven through a real socket with stdlib clients only."""

import contextlib
import http.client
import io
import json
import socket
import struct
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.detector import QuorumDetector
from repro.serving.artifact import save_model
from repro.serving.server import MAX_BODY_BYTES, build_server


@pytest.fixture(scope="module")
def served_model(tmp_path_factory):
    rng = np.random.default_rng(3)
    data = rng.normal(size=(30, 5))
    detector = QuorumDetector(ensemble_groups=3, seed=19, shots=512)
    detector.fit(data)
    path = save_model(detector, tmp_path_factory.mktemp("model") / "m.json")
    server = build_server(path, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield {"base": f"http://{host}:{port}", "data": data, "path": str(path),
           "detector": detector,
           "default_id": server.runtime.registry.default_id()}
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read()), response.headers


def _post(url, payload, raw=None):
    body = raw if raw is not None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read()), response.headers


def _delete(url):
    request = urllib.request.Request(url, method="DELETE")
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read()), response.headers


def _error_of(call):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        call()
    return (excinfo.value.code, json.loads(excinfo.value.read()),
            excinfo.value.headers)


def _wait_job(base, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, job, _ = _get(f"{base}/v1/jobs/{job_id}")
        if job["status"] in ("succeeded", "failed", "cancelled"):
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


class TestLegacyRoutes:
    """The pre-/v1 aliases stay byte-compatible and carry Deprecation."""

    def test_healthz(self, served_model):
        status, payload, headers = _get(served_model["base"] + "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["schema_version"] == 1
        assert payload["ensemble_groups"] == 3
        assert headers["Deprecation"] == "true"
        assert "successor-version" in headers["Link"]

    def test_model_diagnostics(self, served_model):
        status, payload, headers = _get(served_model["base"] + "/model")
        assert status == 200
        assert payload["model"]["format"] == "quorum-repro/model"
        assert payload["model"]["schema_version"] == 1
        assert {"compiles", "hits", "misses"} <= set(payload["compiler_cache"])
        assert "requests" in payload["serving"]
        assert headers["Deprecation"] == "true"

    def test_score_round_trip(self, served_model):
        data = served_model["data"]
        status, payload, headers = _post(served_model["base"] + "/score",
                                         {"samples": data[:4].tolist()})
        assert status == 200
        assert payload["mode"] == "reference"
        assert payload["num_samples"] == 4
        assert len(payload["scores"]) == 4
        assert payload["num_runs"] == 3 * 2
        assert payload["schema_version"] == 1
        # Byte-compatible: the legacy shape never grew a model_id field.
        assert set(payload) == {"scores", "num_runs", "num_samples", "mode",
                                "schema_version"}
        assert headers["Deprecation"] == "true"

    def test_score_is_deterministic_across_requests(self, served_model):
        base, data = served_model["base"], served_model["data"]
        _, first, _ = _post(base + "/score", {"samples": data[:3].tolist()})
        _, second, _ = _post(base + "/score", {"samples": data[:3].tolist()})
        assert first["scores"] == second["scores"]

    def test_concurrent_posts_match_sequential(self, served_model):
        base, data = served_model["base"], served_model["data"]
        requests = [data[i:i + 2].tolist() for i in range(6)]
        sequential = [_post(base + "/score", {"samples": r})[1]["scores"]
                      for r in requests]
        results = [None] * len(requests)

        def worker(index):
            results[index] = _post(base + "/score",
                                   {"samples": requests[index]})[1]["scores"]

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(requests))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert results == sequential

    def test_replay_mode_over_http(self, served_model):
        base, data = served_model["base"], served_model["data"]
        status, payload, _ = _post(base + "/score",
                                   {"samples": data.tolist(),
                                    "mode": "replay"})
        assert status == 200
        assert payload["mode"] == "replay"

    def test_legacy_score_matches_v1_minus_model_id(self, served_model):
        """Alias parity: /score == /v1/models/{id}/score minus model_id."""
        base, data = served_model["base"], served_model["data"]
        model_id = served_model["default_id"]
        _, legacy, _ = _post(base + "/score", {"samples": data[:3].tolist()})
        _, v1, headers = _post(f"{base}/v1/models/{model_id}/score",
                               {"samples": data[:3].tolist()})
        assert v1.pop("model_id") == model_id
        assert v1 == legacy
        assert "Deprecation" not in headers  # /v1 routes are not deprecated

    def test_cache_counters_grow_across_requests(self, served_model):
        base, data = served_model["base"], served_model["data"]
        _, before, _ = _get(base + "/model")
        _post(base + "/score", {"samples": data[:1].tolist()})
        _post(base + "/score", {"samples": data[:1].tolist()})
        _, after, _ = _get(base + "/model")
        assert after["compiler_cache"]["hits"] > before["compiler_cache"]["hits"]
        assert (after["compiler_cache"]["compiles"]
                == before["compiler_cache"]["compiles"])
        assert after["serving"]["requests"] >= before["serving"]["requests"] + 2


class TestV1Models:
    def test_health(self, served_model):
        status, payload, _ = _get(served_model["base"] + "/v1/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["api_version"] == "v1"
        assert served_model["default_id"] in payload["models"]
        assert payload["default_model"] == served_model["default_id"]
        assert set(payload["jobs"]) == {"queued", "running", "succeeded",
                                        "failed", "cancelled"}

    def test_list_and_get(self, served_model):
        base = served_model["base"]
        status, listing, _ = _get(base + "/v1/models")
        assert status == 200
        ids = [model["model_id"] for model in listing["models"]]
        assert served_model["default_id"] in ids
        default = next(m for m in listing["models"]
                       if m["model_id"] == served_model["default_id"])
        assert default["is_default"] is True
        assert len(default["sha256"]) == 64

        _, detail, _ = _get(f"{base}/v1/models/{served_model['default_id']}")
        assert detail["sha256"] == default["sha256"]
        assert "compiler_cache" in detail and "serving" in detail
        assert "group_compiles" in detail["compiler_cache"]
        assert {"fused_members", "stacked_dispatches",
                "members_per_dispatch"} <= set(detail["serving"])

    def test_get_by_full_sha(self, served_model):
        base = served_model["base"]
        _, listing, _ = _get(base + "/v1/models")
        sha = listing["models"][0]["sha256"]
        status, detail, _ = _get(f"{base}/v1/models/{sha}")
        assert status == 200
        assert detail["sha256"] == sha

    def test_v1_score(self, served_model):
        base, data = served_model["base"], served_model["data"]
        model_id = served_model["default_id"]
        status, payload, _ = _post(f"{base}/v1/models/{model_id}/score",
                                   {"samples": data[:2].tolist()})
        assert status == 200
        assert payload["model_id"] == model_id
        assert len(payload["scores"]) == 2

    def test_load_score_unload_second_model_shares_cache(self, served_model):
        """Acceptance criterion over HTTP: a second registry entry for the
        same artifact adds hits, not compiles, to the shared cache."""
        base, data = served_model["base"], served_model["data"]
        probe = data[:2].tolist()
        # Warm the cache through the default model with this exact probe.
        _post(f"{base}/v1/models/{served_model['default_id']}/score",
              {"samples": probe})
        _, warm, _ = _get(f"{base}/v1/models/{served_model['default_id']}")

        status, loaded, _ = _post(base + "/v1/models",
                                  {"path": served_model["path"],
                                   "model_id": "twin"})
        assert status == 201
        assert loaded["model_id"] == "twin"
        assert loaded["is_default"] is False

        _post(f"{base}/v1/models/twin/score", {"samples": probe})
        _, after, _ = _get(base + "/v1/models/twin")
        assert (after["compiler_cache"]["compiles"]
                == warm["compiler_cache"]["compiles"])
        assert after["compiler_cache"]["hits"] > warm["compiler_cache"]["hits"]

        status, unloaded, _ = _delete(base + "/v1/models/twin")
        assert status == 200
        code, payload, _ = _error_of(lambda: _get(base + "/v1/models/twin"))
        assert code == 404
        assert payload["error"]["code"] == "model_not_found"

    def test_unknown_model_404s(self, served_model):
        base, data = served_model["base"], served_model["data"]
        code, payload, _ = _error_of(
            lambda: _post(f"{base}/v1/models/ghost/score",
                          {"samples": data[:1].tolist()}))
        assert code == 404
        assert payload["error"]["code"] == "model_not_found"

    def test_load_conflicting_id_is_409(self, served_model, tmp_path):
        base, data = served_model["base"], served_model["data"]
        other = QuorumDetector(ensemble_groups=2, seed=77, shots=256)
        other.fit(data)
        other_path = save_model(other, tmp_path / "other.json")
        code, payload, _ = _error_of(
            lambda: _post(base + "/v1/models",
                          {"path": str(other_path),
                           "model_id": served_model["default_id"]}))
        assert code == 409
        assert payload["error"]["code"] == "model_exists"

    def test_load_bad_bundle_is_400(self, served_model, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code, payload, _ = _error_of(
            lambda: _post(served_model["base"] + "/v1/models",
                          {"path": str(bad)}))
        assert code == 400
        assert payload["error"]["code"] == "bad_request"


class TestV1Jobs:
    def test_replay_job_lifecycle_matches_sync_replay(self, served_model):
        base, data = served_model["base"], served_model["data"]
        status, job, _ = _post(base + "/v1/jobs",
                               {"kind": "replay_dataset",
                                "params": {"samples": data.tolist()}})
        assert status == 202
        assert job["status"] in ("queued", "running")

        done = _wait_job(base, job["job_id"])
        assert done["status"] == "succeeded"
        _, result, _ = _get(f"{base}/v1/jobs/{job['job_id']}/result")
        assert result["job_id"] == job["job_id"]
        assert result["kind"] == "replay_dataset"
        scores = np.array(result["result"]["scores"])
        assert np.array_equal(scores,
                              served_model["detector"].anomaly_scores())

    def test_result_while_pending_is_409(self, served_model):
        base, data = served_model["base"], served_model["data"]
        # A fit job is slow enough to catch in flight.
        _, job, _ = _post(base + "/v1/jobs",
                          {"kind": "fit",
                           "params": {"samples": data.tolist(),
                                      "config": {"ensemble_groups": 2,
                                                 "seed": 5, "shots": 128}}})
        try:
            _get(f"{base}/v1/jobs/{job['job_id']}/result")
        except urllib.error.HTTPError as error:
            assert error.code == 409
            assert json.loads(error.read())["error"]["code"] == "job_not_done"
        # else: the job finished before we polled -- fine on a fast machine.
        done = _wait_job(base, job["job_id"])
        assert done["status"] == "succeeded"
        _, result, _ = _get(f"{base}/v1/jobs/{job['job_id']}/result")
        fitted_id = result["result"]["model_id"]
        # The fit job registered a NEW servable model.
        _, scored, _ = _post(f"{base}/v1/models/{fitted_id}/score",
                             {"samples": data[:2].tolist()})
        assert scored["model_id"] == fitted_id
        _delete(f"{base}/v1/models/{fitted_id}")

    def test_cancel_finished_job_is_idempotent(self, served_model):
        base, data = served_model["base"], served_model["data"]
        _, job, _ = _post(base + "/v1/jobs",
                          {"kind": "score",
                           "params": {"samples": data[:1].tolist()}})
        _wait_job(base, job["job_id"])
        status, after, _ = _delete(f"{base}/v1/jobs/{job['job_id']}")
        assert status == 200
        assert after["status"] == "succeeded"

    def test_jobs_listing(self, served_model):
        base, data = served_model["base"], served_model["data"]
        _, job, _ = _post(base + "/v1/jobs",
                          {"kind": "score",
                           "params": {"samples": data[:1].tolist()}})
        _, listing, _ = _get(base + "/v1/jobs")
        assert job["job_id"] in [j["job_id"] for j in listing["jobs"]]

    def test_unknown_job_404s(self, served_model):
        code, payload, _ = _error_of(
            lambda: _get(served_model["base"] + "/v1/jobs/deadbeef"))
        assert code == 404
        assert payload["error"]["code"] == "job_not_found"

    def test_bad_submit_is_400_with_detail(self, served_model):
        code, payload, _ = _error_of(
            lambda: _post(served_model["base"] + "/v1/jobs",
                          {"kind": "replay_dataset", "params": {}}))
        assert code == 400
        assert payload["error"]["code"] == "bad_request"
        assert "samples" in payload["error"]["message"]


class TestV1Sessions:
    def test_dedicated_session_replay_matches_fit(self, served_model):
        base, data = served_model["base"], served_model["data"]
        status, session, _ = _post(base + "/v1/sessions",
                                   {"mode": "dedicated"})
        assert status == 201
        sid = session["session_id"]
        _, scored, _ = _post(f"{base}/v1/sessions/{sid}/score",
                             {"samples": data.tolist(), "mode": "replay"})
        assert np.array_equal(np.array(scored["scores"]),
                              served_model["detector"].anomaly_scores())
        _, info, _ = _get(f"{base}/v1/sessions/{sid}")
        assert info["requests"] == 1
        assert info["mode"] == "dedicated"
        _delete(f"{base}/v1/sessions/{sid}")

    def test_batch_session_round_trip(self, served_model):
        base, data = served_model["base"], served_model["data"]
        _, session, _ = _post(base + "/v1/sessions", {})
        sid = session["session_id"]
        assert session["mode"] == "batch"
        _, scored, _ = _post(f"{base}/v1/sessions/{sid}/score",
                             {"samples": data[:2].tolist()})
        _, direct, _ = _post(base + "/score", {"samples": data[:2].tolist()})
        assert scored["scores"] == direct["scores"]
        _, listing, _ = _get(base + "/v1/sessions")
        assert sid in [s["session_id"] for s in listing["sessions"]]
        status, closed, _ = _delete(f"{base}/v1/sessions/{sid}")
        assert status == 200
        code, payload, _ = _error_of(
            lambda: _get(f"{base}/v1/sessions/{sid}"))
        assert code == 404
        assert payload["error"]["code"] == "session_not_found"

    def test_unknown_session_404s(self, served_model):
        code, payload, _ = _error_of(
            lambda: _get(served_model["base"] + "/v1/sessions/deadbeef"))
        assert code == 404
        assert payload["error"]["code"] == "session_not_found"

    def test_session_for_unknown_model_404s(self, served_model):
        code, payload, _ = _error_of(
            lambda: _post(served_model["base"] + "/v1/sessions",
                          {"model_id": "ghost"}))
        assert code == 404
        assert payload["error"]["code"] == "model_not_found"


class TestErrors:
    def test_unknown_get_path(self, served_model):
        code, payload, _ = _error_of(
            lambda: _get(served_model["base"] + "/nope"))
        assert code == 404
        assert payload["error"]["code"] == "not_found"
        assert "unknown path" in payload["error"]["message"]

    def test_unknown_post_path(self, served_model):
        data = served_model["data"]
        code, payload, _ = _error_of(
            lambda: _post(served_model["base"] + "/detect",
                          {"samples": data[:1].tolist()}))
        assert code == 404
        assert payload["error"]["code"] == "not_found"

    def test_wrong_method_is_405_with_allow(self, served_model):
        """Satellite bugfix: a known path with the wrong method is 405."""
        code, payload, headers = _error_of(
            lambda: _delete(served_model["base"] + "/v1/healthz"))
        assert code == 405
        assert payload["error"]["code"] == "method_not_allowed"
        assert headers["Allow"] == "GET"

    def test_wrong_method_on_legacy_route(self, served_model):
        code, payload, headers = _error_of(
            lambda: _post(served_model["base"] + "/healthz", {}))
        assert code == 405
        assert headers["Allow"] == "GET"
        assert headers["Deprecation"] == "true"

    def test_invalid_json_body(self, served_model):
        code, payload, _ = _error_of(
            lambda: _post(served_model["base"] + "/score", None,
                          raw=b"{not json"))
        assert code == 400
        assert "invalid JSON" in payload["error"]["message"]

    def test_oversized_body_is_413(self, served_model):
        host, port = served_model["base"].removeprefix("http://").split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            connection.putrequest("POST", "/v1/jobs")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            connection.endheaders()
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 413
        assert payload["error"]["code"] == "payload_too_large"

    def test_missing_samples_key(self, served_model):
        code, payload, _ = _error_of(
            lambda: _post(served_model["base"] + "/score", {}))
        assert code == 400
        assert "samples" in payload["error"]["message"]

    def test_unknown_request_field(self, served_model):
        code, payload, _ = _error_of(
            lambda: _post(served_model["base"] + "/score",
                          {"rows": [[1.0]]}))
        assert code == 400
        assert "unknown field" in payload["error"]["message"]

    def test_wrong_feature_width(self, served_model):
        code, payload, _ = _error_of(
            lambda: _post(served_model["base"] + "/score",
                          {"samples": [[1.0, 2.0]]}))
        assert code == 400
        assert "features" in payload["error"]["message"]

    def test_unknown_mode(self, served_model):
        data = served_model["data"]
        code, payload, _ = _error_of(
            lambda: _post(served_model["base"] + "/score",
                          {"samples": data[:1].tolist(),
                           "mode": "transduce"}))
        assert code == 400
        assert "mode" in payload["error"]["message"]

    def test_replay_with_wrong_count(self, served_model):
        data = served_model["data"]
        code, payload, _ = _error_of(
            lambda: _post(served_model["base"] + "/score",
                          {"samples": data[:2].tolist(), "mode": "replay"}))
        assert code == 400
        assert "replay mode requires" in payload["error"]["message"]

    def test_empty_body(self, served_model):
        code, _, _ = _error_of(
            lambda: _post(served_model["base"] + "/score", None, raw=b""))
        assert code == 400


class TestDraining:
    def test_draining_server_answers_503(self, tmp_path):
        rng = np.random.default_rng(9)
        data = rng.normal(size=(12, 3))
        detector = QuorumDetector(ensemble_groups=2, seed=2, shots=128)
        detector.fit(data)
        path = save_model(detector, tmp_path / "m.json")
        server = build_server(path, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            status, _, _ = _get(base + "/v1/healthz")
            assert status == 200
            server.runtime.drain()
            code, payload, _ = _error_of(lambda: _get(base + "/v1/healthz"))
            assert code == 503
            assert payload["error"]["code"] == "shutting_down"
            code, payload, _ = _error_of(
                lambda: _post(base + "/score",
                              {"samples": data[:1].tolist()}))
            assert code == 503
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_drain_503_carries_retry_after(self, tmp_path):
        rng = np.random.default_rng(10)
        data = rng.normal(size=(12, 3))
        detector = QuorumDetector(ensemble_groups=2, seed=3, shots=128)
        detector.fit(data)
        path = save_model(detector, tmp_path / "m.json")
        server = build_server(path, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = "http://%s:%d" % server.server_address[:2]
        try:
            server.runtime.drain()
            code, payload, headers = _error_of(
                lambda: _get(base + "/v1/healthz"))
            assert code == 503
            assert payload["error"]["code"] == "shutting_down"
            assert int(headers["Retry-After"]) >= 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


@pytest.fixture()
def debug_server(served_model):
    """A second server over the same artifact with debug hooks enabled."""
    server = build_server(served_model["path"], port=0, debug_hooks=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield {"base": "http://%s:%d" % server.server_address[:2],
           "server": server}
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


class TestDebugHooks:
    def test_disabled_by_default(self, served_model):
        """Without debug_hooks the route 404s like any unknown path."""
        code, payload, _ = _error_of(
            lambda: _get(served_model["base"] + "/v1/_debug/delay"))
        assert code == 404
        assert payload["error"]["code"] == "not_found"

    def test_delay_hook_slows_and_clears(self, debug_server):
        base = debug_server["base"]
        status, payload, _ = _get(base + "/v1/_debug/delay")
        assert (status, payload) == (200, {"delay_s": 0.0})
        status, payload, _ = _post(base + "/v1/_debug/delay",
                                   {"delay_s": 0.3})
        assert (status, payload) == (200, {"delay_s": 0.3})
        started = time.monotonic()
        status, _, _ = _get(base + "/v1/healthz")
        elapsed = time.monotonic() - started
        assert status == 200
        assert elapsed >= 0.3
        # The hook itself must stay fast so the injector can always clear it.
        started = time.monotonic()
        _post(base + "/v1/_debug/delay", {"delay_s": 0.0})
        assert time.monotonic() - started < 0.3
        started = time.monotonic()
        _get(base + "/v1/healthz")
        assert time.monotonic() - started < 0.3

    def test_delay_validation(self, debug_server):
        base = debug_server["base"]
        for body in ({"delay_s": -1.0}, {"delay_s": 10_000.0},
                     {"delay_s": "slow"}, {"wrong_key": 1.0}):
            code, payload, _ = _error_of(
                lambda: _post(base + "/v1/_debug/delay", body))
            assert code == 400
            assert payload["error"]["code"] == "bad_request"
        status, payload, _ = _get(base + "/v1/_debug/delay")
        assert payload == {"delay_s": 0.0}  # rejected values never stick


class TestInFlightTracking:
    def test_wait_idle_immediate_when_quiet(self, debug_server):
        assert debug_server["server"].runtime.wait_idle(timeout_s=1.0)

    def test_drain_completes_inflight_requests(self, debug_server):
        """The server half of zero-dropped-drain: a request accepted before
        drain() finishes with a real response, and wait_idle blocks until
        it has."""
        base = debug_server["base"]
        runtime = debug_server["server"].runtime
        _post(base + "/v1/_debug/delay", {"delay_s": 0.5})
        outcome = {}

        def slow_request():
            try:
                status, payload, _ = _get(base + "/v1/healthz")
                outcome["status"] = status
            except urllib.error.HTTPError as error:
                outcome["status"] = error.code
            except Exception as error:  # pragma: no cover - the failure mode
                outcome["error"] = repr(error)

        thread = threading.Thread(target=slow_request)
        thread.start()
        time.sleep(0.15)  # the request is now sleeping inside the handler
        assert runtime.inflight >= 1
        runtime.drain()
        assert runtime.wait_idle(timeout_s=10.0)
        thread.join(timeout=10.0)
        assert outcome.get("status") == 200  # completed, not dropped
        # New arrivals after the drain flip are refused.
        code, _, _ = _error_of(lambda: _get(base + "/v1/healthz"))
        assert code == 503


def _host_port(served_model):
    host, port = served_model["base"].removeprefix("http://").rsplit(":", 1)
    return host, int(port)


def _raw_connection(served_model):
    sock = socket.create_connection(_host_port(served_model), timeout=30)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _read_response_bytes(sock):
    chunks = []
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        chunks.append(chunk)
        blob = b"".join(chunks)
        if b"\r\n\r\n" in blob:
            head, _, rest = blob.partition(b"\r\n\r\n")
            for line in head.decode("latin-1").split("\r\n")[1:]:
                if line.lower().startswith("content-length:"):
                    length = int(line.split(":", 1)[1])
                    if len(rest) >= length:
                        return blob
    return b"".join(chunks)


class TestHTTPRobustness:
    """Regressions for the bugs a load generator hits immediately: short
    reads, truncated bodies, client disconnects, HEAD, and keep-alive."""

    def test_dribbled_body_is_reassembled(self, served_model):
        """A body trickling in across many small sends scores normally."""
        data = served_model["data"]
        body = json.dumps({"samples": data[:2].tolist()}).encode()
        head = (f"POST /score HTTP/1.1\r\nHost: x\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode()
        sock = _raw_connection(served_model)
        try:
            sock.sendall(head)
            for start in range(0, len(body), 7):
                sock.sendall(body[start:start + 7])
                time.sleep(0.002)
            response = _read_response_bytes(sock)
        finally:
            sock.close()
        assert b" 200 " in response.split(b"\r\n", 1)[0]
        payload = json.loads(response.partition(b"\r\n\r\n")[2])
        assert len(payload["scores"]) == 2

    def test_truncated_body_is_distinct_400(self, served_model):
        """EOF before Content-Length names the truncation, not 'bad JSON'."""
        body = json.dumps({"samples": [[0.0] * 5] * 4}).encode()
        head = (f"POST /score HTTP/1.1\r\nHost: x\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n").encode()
        sock = _raw_connection(served_model)
        try:
            sock.sendall(head + body[:10])
            sock.shutdown(socket.SHUT_WR)  # EOF with most of the body owed
            response = _read_response_bytes(sock)
        finally:
            sock.close()
        assert b" 400 " in response.split(b"\r\n", 1)[0]
        payload = json.loads(response.partition(b"\r\n\r\n")[2])
        assert payload["error"]["code"] == "bad_request"
        assert "truncated" in payload["error"]["message"]
        assert str(len(body)) in payload["error"]["message"]

    def test_client_disconnect_is_quiet_and_survivable(self, tmp_path):
        """A client resetting mid-request: one log line, no traceback, and
        the server keeps answering."""
        rng = np.random.default_rng(17)
        data = rng.normal(size=(12, 3))
        detector = QuorumDetector(ensemble_groups=2, seed=4, shots=128)
        detector.fit(data)
        path = save_model(detector, tmp_path / "m.json")
        server = build_server(path, port=0, quiet=False)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        captured = io.StringIO()
        try:
            body = json.dumps({"samples": data[:4].tolist()}).encode()
            request = (f"POST /score HTTP/1.1\r\nHost: x\r\n"
                       f"Content-Type: application/json\r\n"
                       f"Content-Length: {len(body)}\r\n\r\n"
                       ).encode() + body
            with contextlib.redirect_stderr(captured):
                sock = socket.create_connection((host, port), timeout=30)
                sock.sendall(request)
                # RST instead of FIN: the response write hits a dead socket.
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                struct.pack("ii", 1, 0))
                sock.close()
                deadline = time.monotonic() + 10
                while ("disconnected" not in captured.getvalue()
                       and time.monotonic() < deadline):
                    time.sleep(0.02)
            status, payload, _ = _get(f"http://{host}:{port}/v1/healthz")
        finally:
            server.shutdown()
            server.server_close()
            server.runtime.close()
            thread.join(timeout=10)
        stderr = captured.getvalue()
        assert "Traceback" not in stderr
        assert "disconnected" in stderr
        assert status == 200 and payload["status"] == "ok"

    def test_head_matches_get_across_routes(self, served_model):
        """HEAD == GET minus the body, byte-identical framing headers."""
        host, port = _host_port(served_model)
        for route in ("/v1/healthz", "/healthz", "/v1/models", "/model",
                      "/v1/jobs", "/v1/sessions"):
            get_status, _, get_headers = _get(served_model["base"] + route)
            connection = http.client.HTTPConnection(host, port, timeout=30)
            try:
                connection.request("HEAD", route)
                response = connection.getresponse()
                assert response.status == get_status, route
                assert response.read() == b"", route
                assert (response.headers["Content-Length"]
                        == get_headers["Content-Length"]), route
                assert response.headers["Content-Type"] == "application/json"
            finally:
                connection.close()

    def test_head_errors_suppress_body_too(self, served_model):
        host, port = _host_port(served_model)
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request("HEAD", "/nope")
            response = connection.getresponse()
            assert response.status == 404
            assert response.read() == b""
            assert int(response.headers["Content-Length"]) > 0
            # POST-only route: HEAD routes like GET and reports 405.
            connection.request("HEAD", "/score")
            response = connection.getresponse()
            assert response.status == 405
            assert response.headers["Allow"] == "POST"
            assert response.read() == b""
        finally:
            connection.close()

    def test_keepalive_reuses_one_connection(self, served_model):
        """HTTP/1.1 default: several requests ride one TCP connection."""
        host, port = _host_port(served_model)
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request("GET", "/v1/healthz")
            response = connection.getresponse()
            assert response.version == 11
            assert not response.will_close
            response.read()
            first_socket = connection.sock
            data = served_model["data"]
            connection.request(
                "POST", "/score",
                body=json.dumps({"samples": data[:1].tolist()}).encode(),
                headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 200
            response.read()
            assert connection.sock is first_socket  # no reconnect happened
        finally:
            connection.close()

    def test_unread_body_closes_keepalive_connection(self, served_model):
        """A 413 leaves the body unread; the server must advertise and
        perform a close instead of parsing those bytes as a request."""
        host, port = _host_port(served_model)
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.putrequest("POST", "/v1/jobs")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
            assert response.will_close  # Connection: close advertised
            response.read()
        finally:
            connection.close()
