"""Typed request/response model validation and the stable error-code table."""

import pytest

from repro.serving.models import (
    ERROR_STATUS,
    ApiError,
    ErrorEnvelope,
    JobSubmitRequest,
    ModelLoadRequest,
    ScoreRequest,
    ScoreResponse,
    SessionCreateRequest,
)


class TestErrorContract:
    def test_stable_codes_map_to_correct_statuses(self):
        # The satellite contract: these codes and statuses are frozen.
        assert ERROR_STATUS["bad_request"] == 400
        assert ERROR_STATUS["model_not_found"] == 404
        assert ERROR_STATUS["job_not_found"] == 404
        assert ERROR_STATUS["session_expired"] == 410
        assert ERROR_STATUS["shutting_down"] == 503
        assert ERROR_STATUS["method_not_allowed"] == 405
        assert ERROR_STATUS["payload_too_large"] == 413

    def test_api_error_carries_code_and_status(self):
        error = ApiError("model_not_found", "no model 'x'", detail={"id": "x"})
        assert error.http_status == 404
        assert error.code == "model_not_found"
        envelope = error.envelope().to_json()
        assert envelope == {"error": {"code": "model_not_found",
                                      "message": "no model 'x'",
                                      "detail": {"id": "x"}}}

    def test_unknown_code_is_a_programming_error(self):
        with pytest.raises(ValueError, match="unknown API error code"):
            ApiError("nope", "message")

    def test_envelope_round_trip(self):
        envelope = ErrorEnvelope(code="bad_request", message="m", detail=[1])
        decoded = ErrorEnvelope.from_json(envelope.to_json())
        assert decoded == envelope


class TestScoreRequest:
    def test_round_trip(self):
        request = ScoreRequest.from_json(
            {"samples": [[1.0, 2.0]], "mode": "replay"})
        assert request.samples == [[1.0, 2.0]]
        assert request.mode == "replay"
        assert ScoreRequest.from_json(request.to_json()) == request

    def test_mode_defaults_to_reference(self):
        assert ScoreRequest.from_json({"samples": [[1]]}).mode == "reference"

    @pytest.mark.parametrize("payload", [
        [],                                # not an object
        {},                                # no samples
        {"samples": []},                   # empty
        {"samples": "nope"},               # wrong type
        {"samples": [[1]], "mode": "x"},   # unknown mode
        {"samples": [[1]], "mode": 3},     # non-string mode
        {"samples": [[1]], "extra": 1},    # unknown field
    ])
    def test_invalid_payloads_raise_bad_request(self, payload):
        with pytest.raises(ApiError) as excinfo:
            ScoreRequest.from_json(payload)
        assert excinfo.value.code == "bad_request"


class TestModelLoadRequest:
    def test_round_trip(self):
        request = ModelLoadRequest.from_json({"path": "m.json",
                                              "model_id": "prod"})
        assert (request.path, request.model_id) == ("m.json", "prod")

    @pytest.mark.parametrize("payload", [
        {},                                 # no path
        {"path": ""},                       # empty path
        {"path": 3},                        # wrong type
        {"path": "m.json", "model_id": ""},
        {"path": "m.json", "nope": 1},
    ])
    def test_invalid(self, payload):
        with pytest.raises(ApiError) as excinfo:
            ModelLoadRequest.from_json(payload)
        assert excinfo.value.code == "bad_request"


class TestJobSubmitRequest:
    def test_round_trip(self):
        request = JobSubmitRequest.from_json(
            {"kind": "replay_dataset", "model_id": "m",
             "params": {"samples": [[1]]}})
        assert request.kind == "replay_dataset"
        assert request.params == {"samples": [[1]]}
        assert JobSubmitRequest.from_json(request.to_json()) == request

    def test_params_default_to_empty(self):
        assert JobSubmitRequest.from_json({"kind": "fit"}).params == {}

    @pytest.mark.parametrize("payload", [
        {},                                   # no kind
        {"kind": "transmogrify"},             # unknown kind
        {"kind": 7},                          # non-string kind
        {"kind": "fit", "params": []},        # params not an object
        {"kind": "fit", "bogus": 1},          # unknown field
    ])
    def test_invalid(self, payload):
        with pytest.raises(ApiError) as excinfo:
            JobSubmitRequest.from_json(payload)
        assert excinfo.value.code == "bad_request"


class TestSessionCreateRequest:
    def test_defaults(self):
        request = SessionCreateRequest.from_json({})
        assert request.mode == "batch"
        assert request.model_id is None
        assert request.ttl_s is None

    def test_dedicated_with_ttl(self):
        request = SessionCreateRequest.from_json(
            {"mode": "dedicated", "ttl_s": 30})
        assert request.mode == "dedicated"
        assert request.ttl_s == 30.0

    @pytest.mark.parametrize("payload", [
        {"mode": "exclusive"},
        {"ttl_s": 0},
        {"ttl_s": -1},
        {"ttl_s": True},
        {"ttl_s": "soon"},
        {"surprise": 1},
    ])
    def test_invalid(self, payload):
        with pytest.raises(ApiError) as excinfo:
            SessionCreateRequest.from_json(payload)
        assert excinfo.value.code == "bad_request"


class TestScoreResponse:
    def test_v1_shape_carries_model_id(self):
        response = ScoreResponse(scores=[1.0], num_runs=2, num_samples=1,
                                 mode="reference", model_id="m",
                                 schema_version=1)
        payload = response.to_json()
        assert payload["model_id"] == "m"
        assert ScoreResponse.from_json(payload) == response

    def test_legacy_shape_is_frozen(self):
        response = ScoreResponse(scores=[1.0], num_runs=2, num_samples=1,
                                 mode="reference", model_id="m",
                                 schema_version=1)
        # Byte-compatibility with the pre-/v1 server: exactly these keys.
        assert set(response.to_json(legacy=True)) == {
            "scores", "num_runs", "num_samples", "mode", "schema_version"}
