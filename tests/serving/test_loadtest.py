"""Loadtest harness: metrics math, closed-loop pool, fleet, orchestrator."""

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.core.detector import QuorumDetector
from repro.serving.artifact import save_model
from repro.serving.loadtest import (
    REPORT_VERSION,
    ReplicaFleet,
    ReplicaSpawnError,
    find_knee,
    percentile,
    run_closed_loop,
    run_loadtest,
    spawn_replica,
    suggest_batching,
    summarize_latencies,
)
from repro.serving.server import build_server


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    rng = np.random.default_rng(5)
    data = rng.normal(size=(20, 4))
    detector = QuorumDetector(ensemble_groups=2, seed=13, shots=256)
    detector.fit(data)
    return str(save_model(detector,
                          tmp_path_factory.mktemp("model") / "m.json"))


@pytest.fixture(scope="module")
def local_server(model_path):
    server = build_server(model_path, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    server.runtime.close()
    thread.join(timeout=10)


class TestMetrics:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_percentile_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_summarize_converts_to_milliseconds(self):
        summary = summarize_latencies([0.010, 0.020, 0.030])
        assert summary["p50"] == pytest.approx(20.0)
        assert summary["max"] == pytest.approx(30.0)
        assert summary["mean"] == pytest.approx(20.0)
        assert set(summary) == {"mean", "p50", "p95", "p99", "max"}

    def test_summarize_empty_is_zero(self):
        assert summarize_latencies([])["p99"] == 0.0


class TestKnee:
    def test_knee_at_flattening_point(self):
        curve = [(1, 50.0), (2, 100.0), (4, 104.0), (8, 105.0)]
        assert find_knee(curve) == (2, 100.0)

    def test_never_flattening_returns_last(self):
        curve = [(1, 50.0), (2, 100.0), (4, 200.0)]
        assert find_knee(curve) == (4, 200.0)

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError):
            find_knee([])

    def test_suggestion_prefers_best_window_of_largest_fleet(self):
        def run(replicas, window, concurrency, rps):
            return {"replicas": replicas, "batch_window_ms": window,
                    "concurrency": concurrency, "throughput_rps": rps}

        runs = [
            run(1, 2.0, 4, 500.0),   # baseline ignored for the suggestion
            run(2, 2.0, 2, 100.0), run(2, 2.0, 4, 120.0),
            run(2, 8.0, 2, 150.0), run(2, 8.0, 4, 290.0),
        ]
        suggestion = suggest_batching(runs, samples_per_request=16)
        assert suggestion["batch_window_ms"] == 8.0
        assert suggestion["knee_concurrency"] == 4
        # 4 workers x 16 samples = 64 in flight at the knee.
        assert suggestion["max_batch_samples"] == 64

    def test_suggestion_clamps_to_bounds(self):
        runs = [{"replicas": 1, "batch_window_ms": 2.0, "concurrency": 1,
                 "throughput_rps": 10.0}]
        assert suggest_batching(runs, samples_per_request=1)[
            "max_batch_samples"] == 32
        assert suggest_batching(runs, samples_per_request=10**6)[
            "max_batch_samples"] == 4096


class TestClosedLoop:
    def test_measures_in_process_server(self, local_server):
        result = run_closed_loop(local_server, "/v1/healthz", None,
                                 concurrency=2, duration_s=0.5,
                                 method="GET")
        assert result["concurrency"] == 2
        assert result["requests"] > 0
        assert result["errors"] == 0
        assert result["throughput_rps"] > 0
        assert result["latency_ms"]["p50"] <= result["latency_ms"]["p99"]

    def test_counts_http_errors(self, local_server):
        result = run_closed_loop(local_server, "/v1/no-such-route", None,
                                 concurrency=1, duration_s=0.3, method="GET")
        assert result["requests"] == 0
        assert result["errors"] > 0

    def test_rejects_bad_parameters(self, local_server):
        with pytest.raises(ValueError):
            run_closed_loop(local_server, "/", None, concurrency=0,
                            duration_s=1.0)
        with pytest.raises(ValueError):
            run_closed_loop(local_server, "/", None, concurrency=1,
                            duration_s=0.0)


class TestReplicaFleet:
    def test_spawns_and_reaps_real_replicas(self, model_path):
        fleet = ReplicaFleet(model_path, replicas=1, batch_window_ms=1.0)
        try:
            fleet.start()
            (host, port), = fleet.addresses
            url = f"http://{host}:{port}/v1/healthz"
            with urllib.request.urlopen(url, timeout=30) as response:
                assert json.load(response)["status"] == "ok"
        finally:
            exit_codes = fleet.close()
        assert exit_codes == [0]
        assert fleet.addresses == []

    def test_bad_model_path_fails_fast(self, tmp_path):
        fleet = ReplicaFleet(tmp_path / "missing.json", replicas=1,
                             startup_timeout_s=60.0)
        with pytest.raises(RuntimeError):
            fleet.start()
        assert fleet.close() == []

    def test_rejects_zero_replicas(self, model_path):
        with pytest.raises(ValueError):
            ReplicaFleet(model_path, replicas=0)


class TestSpawnReplica:
    def test_crash_on_boot_surfaces_immediately(self, tmp_path):
        """A replica dying before the startup line reports its exit code and
        stderr tail right away instead of burning the startup deadline."""
        started = time.monotonic()
        with pytest.raises(ReplicaSpawnError) as excinfo:
            spawn_replica(tmp_path / "missing.json", startup_timeout_s=120.0)
        elapsed = time.monotonic() - started
        assert elapsed < 60.0  # early exit, not the 120 s deadline
        error = excinfo.value
        assert error.exit_code not in (None, 0)
        assert "missing.json" in error.stderr_tail
        assert str(error.exit_code) in str(error)

    def test_replica_process_handle(self, model_path):
        """The handle exposes pid/liveness/signals for the supervisor."""
        replica = spawn_replica(model_path, batch_window_ms=1.0)
        try:
            assert replica.alive
            assert replica.poll() is None
            assert replica.pid > 0
            host, port = replica.host, replica.port
            assert replica.address == f"{host}:{port}"
            url = f"http://{replica.address}/v1/healthz"
            with urllib.request.urlopen(url, timeout=30) as response:
                assert json.load(response)["status"] == "ok"
            summary = replica.exit_summary()
            assert summary["exit_code"] is None  # still running
        finally:
            exit_code = replica.close()
        assert exit_code == 0  # SIGTERM drained cleanly
        assert not replica.alive

    def test_close_resumes_a_stopped_replica_first(self, model_path):
        """SIGSTOP must not force close() to escalate to SIGKILL."""
        import signal as signal_module

        replica = spawn_replica(model_path, batch_window_ms=1.0)
        try:
            replica.send_signal(signal_module.SIGSTOP)
        except BaseException:
            replica.close()
            raise
        exit_code = replica.close(term_timeout_s=30.0)
        assert exit_code == 0  # SIGCONT + SIGTERM, not a dirty SIGKILL


class TestRunLoadtest:
    def test_report_schema_single_replica(self, model_path):
        report = run_loadtest(model_path, replicas=1, concurrencies=[2],
                              duration_s=0.4, warmup_s=0.1,
                              samples_per_request=2)
        assert report["version"] == REPORT_VERSION
        assert report["scale_out"] is None  # no 1->K story with K=1
        assert report["replica_exits"]["clean"] is True
        (run,) = report["runs"]
        assert run["replicas"] == 1
        assert run["requests"] > 0
        assert sum(run["per_replica_requests"].values()) >= run["requests"]
        assert set(report["suggestion"]) >= {
            "knee_concurrency", "batch_window_ms", "max_batch_samples"}
        json.dumps(report)  # the report must be JSON-serializable

    def test_replay_mode_validates_training_set(self, model_path):
        with pytest.raises(ValueError, match="training set"):
            run_loadtest(model_path, mode="replay")
        with pytest.raises(ValueError, match="full training set"):
            run_loadtest(model_path, mode="replay",
                         replay_samples=np.zeros((3, 4)))

    def test_unknown_mode_rejected(self, model_path):
        with pytest.raises(ValueError, match="mode"):
            run_loadtest(model_path, mode="chaos")

    def test_bad_concurrency_rejected(self, model_path):
        with pytest.raises(ValueError):
            run_loadtest(model_path, concurrencies=[0])
