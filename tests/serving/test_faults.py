"""Fault-injection primitives: ChaosGate forwarding modes + FaultInjector.

These are fast tier-1 tests of the *instruments* themselves (against a raw
scripted backend and throwaway subprocesses); the chaos suite uses them
against real fleets.
"""

import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.detector import QuorumDetector
from repro.serving.artifact import save_model
from repro.serving.faults import ChaosGate, FaultInjector
from repro.serving.server import build_server

_RESPONSE_BODY = b"x" * 100
_RESPONSE = (b"HTTP/1.1 200 OK\r\n"
             b"Content-Length: 100\r\n"
             b"Connection: close\r\n\r\n" + _RESPONSE_BODY)


class _OneShotBackend:
    """Raw TCP backend: one fixed close-delimited response per connection."""

    def __init__(self):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.address = self._listener.getsockname()
        self.connections = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            try:
                client.settimeout(5.0)
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = client.recv(65536)
                    if not chunk:
                        break
                    data += chunk
                if data:
                    client.sendall(_RESPONSE)
            except OSError:
                pass
            finally:
                client.close()

    def close(self):
        self._stop.set()
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._listener.close()
        self._thread.join(timeout=5.0)


def _fetch_through(address, timeout=5.0):
    """One GET through ``address``; returns every byte until EOF."""
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(b"GET / HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        received = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            received.append(chunk)
    return b"".join(received)


@pytest.fixture()
def backend():
    server = _OneShotBackend()
    yield server
    server.close()


@pytest.fixture()
def gate(backend):
    gate = ChaosGate(*backend.address).start()
    yield gate
    gate.close()


class TestChaosGate:
    def test_transparent_forwarding(self, backend, gate):
        data = _fetch_through(gate.address)
        assert data == _RESPONSE
        assert backend.connections == 1
        assert gate.mode == "pass"

    def test_refuse_yields_econnrefused(self, backend, gate):
        gate.refuse()
        with pytest.raises(ConnectionRefusedError):
            socket.create_connection(gate.address, timeout=2.0)
        assert backend.connections == 0  # the fault never reaches the replica

    def test_restore_rebinds_the_same_port(self, backend, gate):
        port = gate.address[1]
        gate.refuse()
        gate.restore()
        assert gate.address[1] == port  # fleet config stays valid
        assert _fetch_through(gate.address) == _RESPONSE

    def test_cut_severs_mid_response(self, backend, gate):
        gate.cut_responses(after_bytes=40)
        data = _fetch_through(gate.address)
        assert 0 < len(data) <= 40  # headers announce 100 body bytes...
        assert len(data) < len(_RESPONSE)  # ...but the stream dies early
        gate.restore()
        assert _fetch_through(gate.address) == _RESPONSE

    def test_parameter_and_lifecycle_validation(self, backend, gate):
        with pytest.raises(ValueError):
            gate.cut_responses(after_bytes=-1)
        with pytest.raises(RuntimeError):
            gate.start()  # already started
        with pytest.raises(RuntimeError):
            ChaosGate(*backend.address).address  # not started
        gate.close()
        with pytest.raises(RuntimeError):
            gate.restore()  # closed gates stay closed


def _proc_state(pid):
    with open(f"/proc/{pid}/stat") as handle:
        return handle.read().split(")")[-1].split()[0]


def _wait_state(pid, wanted, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if _proc_state(pid) in wanted:
            return True
        time.sleep(0.02)
    return _proc_state(pid) in wanted


class TestFaultInjectorSignals:
    @pytest.fixture()
    def victim(self):
        process = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(120)"])
        yield process
        if process.poll() is None:
            process.kill()
        process.wait(timeout=10)

    def test_pid_extraction(self, victim):
        injector = FaultInjector()
        assert injector._pid(victim.pid) == victim.pid
        assert injector._pid(victim) == victim.pid  # duck-typed .pid
        with pytest.raises(TypeError):
            injector._pid("not a process")

    def test_pause_resume_kill(self, victim):
        injector = FaultInjector()
        injector.pause(victim)
        assert _wait_state(victim.pid, {"T"})  # stopped: the hang fault
        injector.resume(victim)
        assert _wait_state(victim.pid, {"S", "R"})
        injector.kill(victim)
        assert victim.wait(timeout=10) == -9


class TestDelayHook:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        rng = np.random.default_rng(7)
        detector = QuorumDetector(ensemble_groups=2, seed=11, shots=256)
        detector.fit(rng.normal(size=(20, 4)))
        return str(save_model(detector,
                              tmp_path_factory.mktemp("model") / "m.json"))

    @pytest.fixture(scope="class")
    def debug_address(self, model_path):
        server = build_server(model_path, port=0, debug_hooks=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"{host}:{port}"
        server.shutdown()
        server.server_close()
        server.runtime.close()
        thread.join(timeout=10)

    def test_set_get_clear_roundtrip(self, debug_address):
        injector = FaultInjector()
        assert injector.get_delay(debug_address) == 0.0
        assert injector.set_delay(debug_address, 0.25) == 0.25
        assert injector.get_delay(debug_address) == 0.25
        injector.clear_delay(debug_address)
        assert injector.get_delay(debug_address) == 0.0

    def test_disabled_hook_is_a_clear_error(self, model_path):
        server = build_server(model_path, port=0)  # debug hooks off
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            with pytest.raises(RuntimeError, match="debug hooks"):
                FaultInjector().set_delay(f"{host}:{port}", 1.0)
        finally:
            server.shutdown()
            server.server_close()
            server.runtime.close()
            thread.join(timeout=10)
