"""Round-robin proxy: balancing, health, failover, and score fidelity."""

import http.client
import json
import socket
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.detector import QuorumDetector
from repro.serving.artifact import save_model
from repro.serving.proxy import ProxyError, RoundRobinProxy, _parse_backend
from repro.serving.server import build_server


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """Two in-process replica servers over one shared artifact, plus a proxy."""
    rng = np.random.default_rng(7)
    data = rng.normal(size=(24, 4))
    detector = QuorumDetector(ensemble_groups=3, seed=11, shots=512)
    detector.fit(data)
    path = save_model(detector, tmp_path_factory.mktemp("model") / "m.json")
    servers, threads = [], []
    for _ in range(2):
        server = build_server(path, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        threads.append(thread)
    addresses = [server.server_address[:2] for server in servers]
    proxy = RoundRobinProxy(addresses).start()
    yield {
        "proxy": proxy,
        "data": data,
        "detector": detector,
        "model_path": path,
        "addresses": [f"{host}:{port}" for host, port in addresses],
        "default_id": servers[0].runtime.registry.default_id(),
    }
    proxy.close()
    for server, thread in zip(servers, threads):
        server.shutdown()
        server.server_close()
        server.runtime.close()
        thread.join(timeout=10)


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestBackendSpecs:
    def test_accepts_tuples_strings_and_urls(self):
        assert _parse_backend(("localhost", 8000)) == ("localhost", 8000)
        assert _parse_backend("localhost:8000") == ("localhost", 8000)
        assert _parse_backend("http://127.0.0.1:8765") == ("127.0.0.1", 8765)

    def test_rejects_garbage(self):
        with pytest.raises(ProxyError):
            _parse_backend("no-port-here")
        with pytest.raises(ProxyError):
            RoundRobinProxy([])


class TestBalancing:
    def test_round_robin_splits_one_keepalive_connection(self, fleet):
        """Request-level rotation: one client connection uses both replicas."""
        proxy = fleet["proxy"]
        host, port = proxy.address
        before = proxy.request_counts()
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            for _ in range(6):
                connection.request("GET", "/v1/healthz")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()
        after = proxy.request_counts()
        deltas = {address: after[address] - before[address]
                  for address in after}
        assert sorted(deltas.values()) == [3, 3]
        assert set(deltas) == set(fleet["addresses"])

    def test_head_through_proxy(self, fleet):
        host, port = fleet["proxy"].address
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request("HEAD", "/v1/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert response.read() == b""
            assert int(response.headers["Content-Length"]) > 0
        finally:
            connection.close()

    def test_scoring_through_proxy(self, fleet):
        proxy, data = fleet["proxy"], fleet["data"]
        body = json.dumps({"samples": data[:3].tolist()}).encode()
        request = urllib.request.Request(
            f"{proxy.base_url}/v1/models/{fleet['default_id']}/score",
            data=body, headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=60) as response:
            payload = json.load(response)
        assert len(payload["scores"]) == 3

    def test_replay_bitwise_identical_through_proxy(self, fleet):
        """The fleet answers replay mode bitwise like a single process."""
        proxy, data = fleet["proxy"], fleet["data"]
        expected = fleet["detector"].anomaly_scores()
        url = f"{proxy.base_url}/v1/models/{fleet['default_id']}/score"
        for _ in range(2):  # rotation lands on each replica once
            request = urllib.request.Request(
                url, data=json.dumps({"samples": data.tolist(),
                                      "mode": "replay"}).encode(),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=120) as response:
                payload = json.load(response)
            assert np.array_equal(np.asarray(payload["scores"]), expected)

    def test_error_envelopes_pass_through(self, fleet):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(fleet["proxy"].base_url + "/v1/nowhere",
                                   timeout=30)
        assert excinfo.value.code == 404
        envelope = json.loads(excinfo.value.read())
        assert envelope["error"]["code"] == "not_found"


class TestHealthAndFailover:
    def test_check_backends_reports_liveness(self, fleet):
        health = fleet["proxy"].check_backends()
        assert health == {address: True for address in fleet["addresses"]}

    def test_check_backends_flags_dead_replica(self, fleet):
        dead = f"127.0.0.1:{_free_port()}"
        probe = RoundRobinProxy([fleet["addresses"][0], dead])
        health = probe.check_backends(timeout_s=2.0)
        assert health[fleet["addresses"][0]] is True
        assert health[dead] is False

    def test_failover_skips_dead_replica(self, fleet):
        """A dead backend in rotation is transparent to clients."""
        dead = ("127.0.0.1", _free_port())
        live = fleet["addresses"][0]
        with RoundRobinProxy([dead, live]) as proxy:
            for _ in range(4):  # rotation starts on the dead one twice
                with urllib.request.urlopen(proxy.base_url + "/v1/healthz",
                                            timeout=30) as response:
                    assert response.status == 200
            assert proxy.request_counts()[live] == 4

    def test_all_dead_backends_synthesize_502(self):
        with RoundRobinProxy([("127.0.0.1", _free_port())],
                             backend_timeout_s=2.0) as proxy:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(proxy.base_url + "/v1/healthz",
                                       timeout=30)
            assert excinfo.value.code == 502
            envelope = json.loads(excinfo.value.read())
            assert envelope["error"]["code"] == "bad_gateway"
            assert envelope["error"]["detail"]["backends"]

    def test_double_start_refused(self, fleet):
        with pytest.raises(ProxyError):
            fleet["proxy"].start()


class _ScriptedBackend:
    """A raw TCP 'replica' serving one scripted response per connection.

    ``mode='oneshot'`` answers one well-formed keep-alive response and then
    closes the connection (a replica restarted between keep-alive requests);
    ``mode='cut'`` advertises a large Content-Length, sends a few body bytes,
    and dies mid-response.
    """

    def __init__(self, mode="oneshot"):
        self.mode = mode
        self.connections = 0
        self.listener = socket.socket()
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.port = self.listener.getsockname()[1]
        self.address = f"127.0.0.1:{self.port}"
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            self.connections += 1
            try:
                conn.settimeout(10.0)
                head = b""
                while b"\r\n\r\n" not in head:
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    head += chunk
                if self.mode == "cut":
                    conn.sendall(b"HTTP/1.1 200 OK\r\n"
                                 b"Content-Type: application/json\r\n"
                                 b"Content-Length: 1000\r\n\r\n"
                                 b'{"trunc')
                else:
                    body = b'{"status": "ok"}'
                    conn.sendall(b"HTTP/1.1 200 OK\r\n"
                                 b"Content-Type: application/json\r\n"
                                 + b"Content-Length: %d\r\n\r\n" % len(body)
                                 + body)
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self):
        try:
            self.listener.close()
        except OSError:
            pass


class TestDynamicMembership:
    def test_add_and_remove_under_rotation(self, fleet):
        """Traffic follows membership changes on a live keep-alive client."""
        first, second = fleet["addresses"]
        with RoundRobinProxy([first, second]) as proxy:
            host, port = proxy.address
            connection = http.client.HTTPConnection(host, port, timeout=30)
            try:
                def burst(n):
                    for _ in range(n):
                        connection.request("GET", "/v1/healthz")
                        response = connection.getresponse()
                        assert response.status == 200
                        response.read()

                burst(2)  # one request each; pools a connection to both
                assert proxy.remove_backend(first) is True
                burst(4)  # the pooled connection to `first` must be pruned
                counts = proxy.request_counts()
                assert counts[first] == 1  # history survives removal
                assert counts[second] == 5
                proxy.add_backend(first)
                burst(4)
                assert proxy.request_counts()[first] == 3
            finally:
                connection.close()

    def test_membership_mutators_are_idempotent(self, fleet):
        first, second = fleet["addresses"]
        proxy = RoundRobinProxy([first])
        assert proxy.add_backend(second) == second
        assert proxy.add_backend(second) == second  # no duplicate
        assert proxy.backend_addresses() == [first, second]
        assert proxy.has_backend(second)
        assert proxy.remove_backend(second) is True
        assert proxy.remove_backend(second) is False
        assert not proxy.has_backend(second)

    def test_empty_rotation_answers_distinct_503(self, fleet):
        """All backends ejected: 503 no_healthy_backends (vs all-dead 502)."""
        with RoundRobinProxy([fleet["addresses"][0]]) as proxy:
            proxy.remove_backend(fleet["addresses"][0])
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(proxy.base_url + "/v1/healthz",
                                       timeout=30)
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] is not None
            envelope = json.loads(excinfo.value.read())
            assert envelope["error"]["code"] == "no_healthy_backends"

    def test_empty_initial_rotation_needs_allow_empty(self):
        with pytest.raises(ProxyError):
            RoundRobinProxy([])
        proxy = RoundRobinProxy([], allow_empty=True)
        assert proxy.backend_addresses() == []


class TestFailoverEdges:
    def test_backend_dying_mid_response_synthesizes_502(self):
        """A mid-body disconnect must never surface as a truncated body."""
        backend = _ScriptedBackend(mode="cut")
        try:
            with RoundRobinProxy([backend.address],
                                 backend_timeout_s=5.0) as proxy:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(proxy.base_url + "/v1/healthz",
                                           timeout=30)
                assert excinfo.value.code == 502
                envelope = json.loads(excinfo.value.read())
                assert envelope["error"]["code"] == "bad_gateway"
        finally:
            backend.close()

    def test_mid_response_death_fails_over_to_live_backend(self, fleet):
        """With a healthy peer in rotation, the cut is invisible (GET)."""
        backend = _ScriptedBackend(mode="cut")
        live = fleet["addresses"][0]
        try:
            with RoundRobinProxy([backend.address, live],
                                 backend_timeout_s=5.0) as proxy:
                for _ in range(4):  # rotation starts on the cutter twice
                    with urllib.request.urlopen(
                            proxy.base_url + "/v1/healthz",
                            timeout=30) as response:
                        assert response.status == 200
                assert proxy.request_counts()[live] == 4
        finally:
            backend.close()

    def test_stale_pooled_socket_reconnects_transparently(self):
        """A backend restarted between keep-alive requests costs nothing."""
        backend = _ScriptedBackend(mode="oneshot")
        try:
            with RoundRobinProxy([backend.address],
                                 backend_timeout_s=5.0) as proxy:
                host, port = proxy.address
                connection = http.client.HTTPConnection(host, port,
                                                        timeout=30)
                try:
                    for _ in range(3):
                        connection.request("GET", "/v1/healthz")
                        response = connection.getresponse()
                        assert response.status == 200
                        assert json.loads(response.read()) == {"status": "ok"}
                finally:
                    connection.close()
                # Each request found the pooled socket dead and reconnected.
                assert backend.connections == 3
                assert proxy.request_counts()[backend.address] == 3
        finally:
            backend.close()

    def test_post_is_never_retried_after_connection_failure(self, fleet):
        """Non-idempotent requests surface a 502 instead of a replay."""
        dead = f"127.0.0.1:{_free_port()}"
        with RoundRobinProxy([dead, fleet["addresses"][0]],
                             backend_timeout_s=2.0) as proxy:
            body = json.dumps({"samples": fleet["data"][:1].tolist()})
            request = urllib.request.Request(
                f"{proxy.base_url}/v1/models/{fleet['default_id']}/score",
                data=body.encode(),
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)  # rotation -> dead
            assert excinfo.value.code == 502
            envelope = json.loads(excinfo.value.read())
            assert envelope["error"]["code"] == "bad_gateway"
            assert envelope["error"]["detail"]["tried"] == [dead]
            assert envelope["error"]["detail"]["request_sent"] is False

    def test_get_retries_connect_refused_within_budget(self, fleet):
        """Satellite: idempotent failover on connect-refused, bounded."""
        dead = f"127.0.0.1:{_free_port()}"
        live = fleet["addresses"][0]
        with RoundRobinProxy([dead, live], backend_timeout_s=2.0,
                             retry_budget=1) as proxy:
            with urllib.request.urlopen(proxy.base_url + "/v1/healthz",
                                        timeout=30) as response:
                assert response.status == 200
            assert proxy.request_counts()[live] == 1


class TestDrainFailover:
    @pytest.fixture()
    def draining_server(self, fleet):
        server = build_server(fleet["model_path"], port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        server.runtime.drain()  # answers 503 shutting_down from now on
        host, port = server.server_address[:2]
        yield f"{host}:{port}"
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    def test_post_advances_past_draining_backend(self, fleet,
                                                 draining_server):
        """503 shutting_down proves non-execution: safe to move ANY method."""
        live = fleet["addresses"][0]
        with RoundRobinProxy([draining_server, live]) as proxy:
            body = json.dumps({"samples": fleet["data"][:1].tolist()})
            request = urllib.request.Request(
                f"{proxy.base_url}/v1/models/{fleet['default_id']}/score",
                data=body.encode(),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=60) as response:
                assert response.status == 200
            counts = proxy.request_counts()
            assert counts[live] == 1
            assert counts[draining_server] == 0  # drain hops are not "served"

    def test_all_draining_relays_503_with_retry_after(self, draining_server):
        with RoundRobinProxy([draining_server]) as proxy:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(proxy.base_url + "/v1/healthz",
                                       timeout=30)
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] is not None
            envelope = json.loads(excinfo.value.read())
            assert envelope["error"]["code"] == "shutting_down"
