"""Round-robin proxy: balancing, health, failover, and score fidelity."""

import http.client
import json
import socket
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.detector import QuorumDetector
from repro.serving.artifact import save_model
from repro.serving.proxy import ProxyError, RoundRobinProxy, _parse_backend
from repro.serving.server import build_server


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """Two in-process replica servers over one shared artifact, plus a proxy."""
    rng = np.random.default_rng(7)
    data = rng.normal(size=(24, 4))
    detector = QuorumDetector(ensemble_groups=3, seed=11, shots=512)
    detector.fit(data)
    path = save_model(detector, tmp_path_factory.mktemp("model") / "m.json")
    servers, threads = [], []
    for _ in range(2):
        server = build_server(path, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        threads.append(thread)
    addresses = [server.server_address[:2] for server in servers]
    proxy = RoundRobinProxy(addresses).start()
    yield {
        "proxy": proxy,
        "data": data,
        "detector": detector,
        "addresses": [f"{host}:{port}" for host, port in addresses],
        "default_id": servers[0].runtime.registry.default_id(),
    }
    proxy.close()
    for server, thread in zip(servers, threads):
        server.shutdown()
        server.server_close()
        server.runtime.close()
        thread.join(timeout=10)


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestBackendSpecs:
    def test_accepts_tuples_strings_and_urls(self):
        assert _parse_backend(("localhost", 8000)) == ("localhost", 8000)
        assert _parse_backend("localhost:8000") == ("localhost", 8000)
        assert _parse_backend("http://127.0.0.1:8765") == ("127.0.0.1", 8765)

    def test_rejects_garbage(self):
        with pytest.raises(ProxyError):
            _parse_backend("no-port-here")
        with pytest.raises(ProxyError):
            RoundRobinProxy([])


class TestBalancing:
    def test_round_robin_splits_one_keepalive_connection(self, fleet):
        """Request-level rotation: one client connection uses both replicas."""
        proxy = fleet["proxy"]
        host, port = proxy.address
        before = proxy.request_counts()
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            for _ in range(6):
                connection.request("GET", "/v1/healthz")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()
        after = proxy.request_counts()
        deltas = {address: after[address] - before[address]
                  for address in after}
        assert sorted(deltas.values()) == [3, 3]
        assert set(deltas) == set(fleet["addresses"])

    def test_head_through_proxy(self, fleet):
        host, port = fleet["proxy"].address
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request("HEAD", "/v1/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert response.read() == b""
            assert int(response.headers["Content-Length"]) > 0
        finally:
            connection.close()

    def test_scoring_through_proxy(self, fleet):
        proxy, data = fleet["proxy"], fleet["data"]
        body = json.dumps({"samples": data[:3].tolist()}).encode()
        request = urllib.request.Request(
            f"{proxy.base_url}/v1/models/{fleet['default_id']}/score",
            data=body, headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=60) as response:
            payload = json.load(response)
        assert len(payload["scores"]) == 3

    def test_replay_bitwise_identical_through_proxy(self, fleet):
        """The fleet answers replay mode bitwise like a single process."""
        proxy, data = fleet["proxy"], fleet["data"]
        expected = fleet["detector"].anomaly_scores()
        url = f"{proxy.base_url}/v1/models/{fleet['default_id']}/score"
        for _ in range(2):  # rotation lands on each replica once
            request = urllib.request.Request(
                url, data=json.dumps({"samples": data.tolist(),
                                      "mode": "replay"}).encode(),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=120) as response:
                payload = json.load(response)
            assert np.array_equal(np.asarray(payload["scores"]), expected)

    def test_error_envelopes_pass_through(self, fleet):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(fleet["proxy"].base_url + "/v1/nowhere",
                                   timeout=30)
        assert excinfo.value.code == 404
        envelope = json.loads(excinfo.value.read())
        assert envelope["error"]["code"] == "not_found"


class TestHealthAndFailover:
    def test_check_backends_reports_liveness(self, fleet):
        health = fleet["proxy"].check_backends()
        assert health == {address: True for address in fleet["addresses"]}

    def test_check_backends_flags_dead_replica(self, fleet):
        dead = f"127.0.0.1:{_free_port()}"
        probe = RoundRobinProxy([fleet["addresses"][0], dead])
        health = probe.check_backends(timeout_s=2.0)
        assert health[fleet["addresses"][0]] is True
        assert health[dead] is False

    def test_failover_skips_dead_replica(self, fleet):
        """A dead backend in rotation is transparent to clients."""
        dead = ("127.0.0.1", _free_port())
        live = fleet["addresses"][0]
        with RoundRobinProxy([dead, live]) as proxy:
            for _ in range(4):  # rotation starts on the dead one twice
                with urllib.request.urlopen(proxy.base_url + "/v1/healthz",
                                            timeout=30) as response:
                    assert response.status == 200
            assert proxy.request_counts()[live] == 4

    def test_all_dead_backends_synthesize_502(self):
        with RoundRobinProxy([("127.0.0.1", _free_port())],
                             backend_timeout_s=2.0) as proxy:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(proxy.base_url + "/v1/healthz",
                                       timeout=30)
            assert excinfo.value.code == 502
            envelope = json.loads(excinfo.value.read())
            assert envelope["error"]["code"] == "bad_gateway"
            assert envelope["error"]["detail"]["backends"]

    def test_double_start_refused(self, fleet):
        with pytest.raises(ProxyError):
            fleet["proxy"].start()
