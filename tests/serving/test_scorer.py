"""Online-scorer tests: bitwise round-trip parity, micro-batching, determinism."""

import json
import os
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.core.detector import QuorumDetector
from repro.quantum.compiler import CircuitCompiler
from repro.serving.artifact import load_model, save_model
from repro.serving.scorer import OnlineScorer

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _toy_data(samples=36, features=7, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(samples, features))


def _fit_and_save(tmp_path, data, **overrides):
    detector = QuorumDetector(**overrides)
    detector.fit(data)
    path = save_model(detector, tmp_path / "model.json")
    return detector, path


class TestReplayParity:
    """fit -> save -> load -> replay must equal anomaly_scores() bitwise."""

    @pytest.mark.parametrize("compile_circuits", [True, False])
    @pytest.mark.parametrize("shots", [None, 4096])
    def test_analytic(self, tmp_path, shots, compile_circuits):
        data = _toy_data()
        detector, path = _fit_and_save(
            tmp_path, data, ensemble_groups=4, seed=7, shots=shots,
            compile_circuits=compile_circuits)
        with OnlineScorer(load_model(path)) as scorer:
            replay = scorer.score(data, mode="replay")
        assert np.array_equal(replay.scores, detector.anomaly_scores())
        assert replay.num_runs == detector.scores().num_runs

    @pytest.mark.parametrize("compile_circuits", [True, False])
    def test_noisy_density_matrix(self, tmp_path, compile_circuits):
        data = _toy_data(samples=18, features=3)
        detector, path = _fit_and_save(
            tmp_path, data, ensemble_groups=2, seed=5, shots=256,
            backend="density_matrix", noisy=True, num_qubits=2,
            compile_circuits=compile_circuits)
        with OnlineScorer(load_model(path)) as scorer:
            replay = scorer.score(data, mode="replay")
        assert np.array_equal(replay.scores, detector.anomaly_scores())

    def test_noiseless_density_matrix(self, tmp_path):
        data = _toy_data()
        detector, path = _fit_and_save(
            tmp_path, data, ensemble_groups=3, seed=9, shots=1024,
            backend="density_matrix")
        with OnlineScorer(load_model(path)) as scorer:
            replay = scorer.score(data, mode="replay")
        assert np.array_equal(replay.scores, detector.anomaly_scores())

    def test_statevector(self, tmp_path):
        data = _toy_data(samples=20, features=5)
        detector, path = _fit_and_save(
            tmp_path, data, ensemble_groups=2, seed=13, shots=256,
            backend="statevector")
        with OnlineScorer(load_model(path)) as scorer:
            replay = scorer.score(data, mode="replay")
        assert np.array_equal(replay.scores, detector.anomaly_scores())

    def test_replay_in_a_fresh_process(self, tmp_path):
        """The acceptance criterion verbatim: a new interpreter, no refit."""
        data = _toy_data()
        detector, path = _fit_and_save(tmp_path, data, ensemble_groups=3,
                                       seed=21, shots=2048)
        data_path = tmp_path / "train.npy"
        np.save(data_path, data)
        script = (
            "import json, sys; import numpy as np; "
            "from repro.serving import load_model, OnlineScorer; "
            f"data = np.load({str(data_path)!r}); "
            f"scorer = OnlineScorer(load_model({str(path)!r})); "
            "result = scorer.score(data, mode='replay'); scorer.close(); "
            "print(json.dumps(result.scores.tolist()))"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        output = subprocess.run([sys.executable, "-c", script], env=env,
                                capture_output=True, text=True, check=True)
        fresh = np.array(json.loads(output.stdout))
        assert np.array_equal(fresh, detector.anomaly_scores())

    def test_replay_rejects_wrong_sample_count(self, tmp_path):
        data = _toy_data()
        _, path = _fit_and_save(tmp_path, data, ensemble_groups=2, seed=1,
                                shots=128)
        with OnlineScorer(load_model(path)) as scorer:
            with pytest.raises(ValueError, match="replay mode requires"):
                scorer.score(data[:5], mode="replay")


class TestReferenceScoring:
    def test_unseen_samples_score_deterministically(self, tmp_path):
        data = _toy_data()
        _, path = _fit_and_save(tmp_path, data, ensemble_groups=3, seed=3,
                                shots=1024)
        unseen = _toy_data(samples=6, seed=99)
        with OnlineScorer(load_model(path)) as scorer:
            first = scorer.score(unseen)
            second = scorer.score(unseen)
        assert np.array_equal(first.scores, second.scores)
        assert first.num_samples == 6
        assert first.num_runs == 3 * 2

    def test_submitted_request_matches_direct_score(self, tmp_path):
        """Per-request RNG restoration: routing a request through the
        micro-batch queue cannot change its scores."""
        data = _toy_data()
        _, path = _fit_and_save(tmp_path, data, ensemble_groups=3, seed=3,
                                shots=512)
        unseen = _toy_data(samples=4, seed=50)
        with OnlineScorer(load_model(path)) as scorer:
            direct = scorer.score(unseen).scores
            queued = scorer.submit(unseen).result(timeout=60).scores
        assert np.array_equal(direct, queued)

    def test_obvious_outlier_ranks_first(self, tmp_path):
        rng = np.random.default_rng(8)
        data = rng.normal(size=(60, 6))
        _, path = _fit_and_save(tmp_path, data, ensemble_groups=8, seed=17,
                                shots=None)
        probes = np.vstack([rng.normal(size=(7, 6)),
                            np.full((1, 6), 30.0)])  # far outside the range
        with OnlineScorer(load_model(path)) as scorer:
            scores = scorer.score(probes).scores
        assert scores.argmax() == 7

    def test_input_validation(self, tmp_path):
        data = _toy_data()
        _, path = _fit_and_save(tmp_path, data, ensemble_groups=2, seed=1,
                                shots=64)
        with OnlineScorer(load_model(path)) as scorer:
            with pytest.raises(ValueError, match="features"):
                scorer.score(np.zeros((3, 99)))
            with pytest.raises(ValueError, match="unknown scoring mode"):
                scorer.score(data[:2], mode="nope")
            single = scorer.score(data[0])  # 1-D row is promoted to a batch
            assert single.num_samples == 1


class TestConcurrencyAndCaching:
    def test_concurrent_submission_matches_serial_bitwise(self, tmp_path):
        data = _toy_data(samples=48)
        _, path = _fit_and_save(tmp_path, data, ensemble_groups=4, seed=31,
                                shots=2048)
        requests = [_toy_data(samples=1 + (i % 5), seed=100 + i)
                    for i in range(24)]
        with OnlineScorer(load_model(path)) as scorer:
            serial = [scorer.score(request).scores for request in requests]
            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = list(pool.map(scorer.submit, requests))
            concurrent = [future.result(timeout=120).scores
                          for future in futures]
            diagnostics = scorer.diagnostics()
        for expected, actual in zip(serial, concurrent):
            assert np.array_equal(expected, actual)
        assert diagnostics["serving"]["requests"] == 48
        assert diagnostics["serving"]["batches"] >= 1

    def test_compiled_programs_are_reused_across_requests(self, tmp_path):
        data = _toy_data()
        _, path = _fit_and_save(tmp_path, data, ensemble_groups=3, seed=2,
                                shots=512)
        compiler = CircuitCompiler()
        with OnlineScorer(load_model(path), compiler=compiler) as scorer:
            scorer.score(data[:2])  # cold: compiles one encoder per member
            cold = compiler.stats
            compiles_after_warmup = cold.compiles
            assert compiles_after_warmup == 3
            hits_before = cold.hits
            for start in range(0, 10, 2):
                scorer.score(_toy_data(samples=2, seed=start))
            warm = compiler.stats
        assert warm.compiles == compiles_after_warmup  # nothing recompiled
        assert warm.hits >= hits_before + 5 * 3  # every request reused programs

    def test_micro_batch_respects_sample_budget(self, tmp_path):
        data = _toy_data()
        _, path = _fit_and_save(tmp_path, data, ensemble_groups=2, seed=4,
                                shots=128)
        with OnlineScorer(load_model(path), max_batch_samples=4,
                          batch_window_s=0.05) as scorer:
            futures = [scorer.submit(_toy_data(samples=3, seed=i))
                       for i in range(6)]
            results = [future.result(timeout=120) for future in futures]
            diagnostics = scorer.diagnostics()
        assert all(result.num_samples == 3 for result in results)
        # 6 requests x 3 samples with a 4-sample budget cannot fit one batch.
        assert diagnostics["serving"]["batches"] >= 2

    def test_cancelled_request_is_skipped(self, tmp_path):
        """A future cancelled before the worker reaches it does no work."""
        data = _toy_data()
        _, path = _fit_and_save(tmp_path, data, ensemble_groups=2, seed=4,
                                shots=128)
        with OnlineScorer(load_model(path), batch_window_s=0.2) as scorer:
            doomed = scorer.submit(data[:1])
            survivor = scorer.submit(data[1:2])
            assert doomed.cancel()  # still pending inside the window
            result = survivor.result(timeout=60)
        assert result.num_samples == 1
        assert doomed.cancelled()

    def test_submit_after_close_raises(self, tmp_path):
        data = _toy_data()
        _, path = _fit_and_save(tmp_path, data, ensemble_groups=2, seed=4,
                                shots=128)
        scorer = OnlineScorer(load_model(path))
        scorer.close()
        with pytest.raises(RuntimeError, match="closed"):
            scorer.submit(data[:1])

    def test_diagnostics_shape(self, tmp_path):
        data = _toy_data()
        _, path = _fit_and_save(tmp_path, data, ensemble_groups=2, seed=4,
                                shots=128)
        with OnlineScorer(load_model(path)) as scorer:
            scorer.score(data[:1])
            diagnostics = scorer.diagnostics()
        assert diagnostics["model"]["schema_version"] == 1
        assert {"compiles", "group_compiles", "hits", "misses",
                "entries", "bytes"} <= set(diagnostics["compiler_cache"])
        assert diagnostics["serving"]["samples"] == 1


class TestFusedMemberScoring:
    """Cross-member fused serving: bitwise parity + diagnostics counters."""

    def test_fused_scores_bitwise_and_counters(self, tmp_path):
        data = _toy_data()
        detector, path = _fit_and_save(tmp_path, data, ensemble_groups=4,
                                       seed=19, shots=1024)
        unseen = _toy_data(samples=5, seed=77)
        with OnlineScorer(load_model(path)) as serial:
            serial_replay = serial.score(data, mode="replay").scores
            serial_unseen = serial.score(unseen).scores
            serial_diag = serial.diagnostics()
        with OnlineScorer(load_model(path), fused_members=True) as fused:
            fused_replay = fused.score(data, mode="replay").scores
            fused_unseen = fused.score(unseen).scores
            diagnostics = fused.diagnostics()
        assert np.array_equal(fused_replay, detector.anomaly_scores())
        assert np.array_equal(fused_replay, serial_replay)
        assert np.array_equal(fused_unseen, serial_unseen)
        serving = diagnostics["serving"]
        assert serving["fused_members"] is True
        # Two requests, each covered by >= 1 stacked dispatch; every member
        # is accounted for in the group-size histogram on every request.
        assert serving["stacked_dispatches"] >= 2
        histogram = serving["members_per_dispatch"]
        assert sum(size * count for size, count in histogram.items()) == 4 * 2
        # The serial scorer reports the fused counters as inert.
        assert serial_diag["serving"]["fused_members"] is False
        assert serial_diag["serving"]["stacked_dispatches"] == 0
        assert serial_diag["serving"]["members_per_dispatch"] == {}

    def test_fused_noisy_density_replay_bitwise(self, tmp_path):
        data = _toy_data(samples=12, features=3)
        detector, path = _fit_and_save(
            tmp_path, data, ensemble_groups=2, seed=23, shots=256,
            backend="density_matrix", noisy=True, num_qubits=2)
        with OnlineScorer(load_model(path), fused_members=True) as scorer:
            replay = scorer.score(data, mode="replay")
            diagnostics = scorer.diagnostics()
        assert np.array_equal(replay.scores, detector.anomaly_scores())
        assert diagnostics["serving"]["stacked_dispatches"] >= 1
        assert diagnostics["compiler_cache"]["group_compiles"] >= 1

    def test_fused_micro_batching_stays_bitwise(self, tmp_path):
        data = _toy_data(samples=24)
        _, path = _fit_and_save(tmp_path, data, ensemble_groups=3, seed=29,
                                shots=512)
        requests = [_toy_data(samples=1 + (i % 3), seed=200 + i)
                    for i in range(8)]
        with OnlineScorer(load_model(path)) as serial:
            expected = [serial.score(request).scores for request in requests]
        with OnlineScorer(load_model(path), fused_members=True,
                          batch_window_s=0.05) as fused:
            futures = [fused.submit(request) for request in requests]
            actual = [future.result(timeout=120).scores for future in futures]
        for serial_scores, fused_scores in zip(expected, actual):
            assert np.array_equal(serial_scores, fused_scores)
