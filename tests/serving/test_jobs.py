"""JobManager: lifecycle, bitwise replay parity, cancellation, TTL expiry."""

import threading
import time

import numpy as np
import pytest

from repro.core.detector import QuorumDetector
from repro.quantum.compiler import CircuitCompiler
from repro.serving.artifact import load_model, save_model
from repro.serving.jobs import TERMINAL_STATES, JobManager
from repro.serving.models import ApiError, JobSubmitRequest
from repro.serving.registry import ModelRegistry
from repro.serving.scorer import OnlineScorer


def _toy_data(samples=24, features=5, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(samples, features))


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    data = _toy_data()
    detector = QuorumDetector(ensemble_groups=2, seed=17, shots=512)
    detector.fit(data)
    path = save_model(detector, tmp_path_factory.mktemp("jobs") / "model.json")
    return {"data": data, "detector": detector, "path": path}


@pytest.fixture()
def registry(bundle):
    with ModelRegistry(compiler=CircuitCompiler()) as reg:
        reg.load(bundle["path"], model_id="m")
        yield reg


def _wait_terminal(manager, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = manager.get(job_id)
        if job.status in TERMINAL_STATES:
            return job
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


class TestLifecycle:
    def test_replay_job_is_bitwise_identical_to_in_process_replay(
            self, bundle, registry):
        """Acceptance criterion: submit -> poll -> result equals an
        in-process OnlineScorer replay bitwise."""
        request = JobSubmitRequest(
            kind="replay_dataset", model_id="m",
            params={"samples": bundle["data"].tolist()})
        with JobManager(registry, workers=2) as manager:
            job = manager.submit(request)
            assert job.status in ("queued", "running")
            done = _wait_terminal(manager, job.job_id)
            assert done.status == "succeeded"
            result = manager.result(job.job_id)

        with OnlineScorer(load_model(bundle["path"])) as scorer:
            expected = scorer.score(bundle["data"], mode="replay")
        assert np.array_equal(np.array(result["scores"]), expected.scores)
        assert np.array_equal(np.array(result["scores"]),
                              bundle["detector"].anomaly_scores())
        assert result["mode"] == "replay"
        assert result["model_id"] == "m"

    def test_score_job_reference_mode(self, bundle, registry):
        unseen = _toy_data(samples=4, seed=5)
        with JobManager(registry, workers=1) as manager:
            job = manager.submit(JobSubmitRequest(
                kind="score", model_id="m",
                params={"samples": unseen.tolist(), "mode": "reference"}))
            _wait_terminal(manager, job.job_id)
            result = manager.result(job.job_id)
        direct = registry.get("m").scorer.submit(unseen).result(timeout=60)
        assert np.array_equal(np.array(result["scores"]), direct.scores)

    def test_fit_job_registers_a_scoreable_model(self, bundle, registry,
                                                 tmp_path):
        save_path = tmp_path / "fitted.json"
        with JobManager(registry, workers=1) as manager:
            job = manager.submit(JobSubmitRequest(
                kind="fit",
                params={"samples": bundle["data"].tolist(),
                        "config": {"ensemble_groups": 2, "seed": 17,
                                   "shots": 512},
                        "register_as": "fresh",
                        "save_path": str(save_path)}))
            done = _wait_terminal(manager, job.job_id)
            assert done.status == "succeeded", done.error
            result = manager.result(job.job_id)
        assert result["model_id"] == "fresh"
        assert save_path.exists()
        # Same data/config/seed as the fixture detector: identical content...
        assert result["sha256"] == registry.get("m").sha256
        # ...and the new entry scores.
        scored = registry.get("fresh").scorer.submit(
            bundle["data"][:3]).result(timeout=60)
        assert scored.num_samples == 3

    def test_result_before_done_is_job_not_done(self, registry):
        release = threading.Event()

        def work(cancel_event):
            release.wait(timeout=30)
            return {"ok": True}

        with JobManager(registry, workers=1) as manager:
            job = manager.submit_fn("score", work)
            with pytest.raises(ApiError) as excinfo:
                manager.result(job.job_id)
            assert excinfo.value.code == "job_not_done"
            assert excinfo.value.http_status == 409
            release.set()
            _wait_terminal(manager, job.job_id)
            assert manager.result(job.job_id) == {"ok": True}

    def test_failed_job_reraises_its_error_code(self, registry):
        def work(cancel_event):
            raise ApiError("model_not_found", "gone mid-flight")

        with JobManager(registry, workers=1) as manager:
            job = manager.submit_fn("score", work)
            done = _wait_terminal(manager, job.job_id)
            assert done.status == "failed"
            assert done.error["code"] == "model_not_found"
            with pytest.raises(ApiError) as excinfo:
                manager.result(job.job_id)
            assert excinfo.value.code == "model_not_found"

    def test_crashing_job_fails_with_internal(self, registry):
        def work(cancel_event):
            raise RuntimeError("boom")

        with JobManager(registry, workers=1) as manager:
            job = manager.submit_fn("score", work)
            done = _wait_terminal(manager, job.job_id)
            assert done.status == "failed"
            assert done.error == {"code": "internal",
                                  "message": "RuntimeError: boom"}


class TestValidation:
    @pytest.mark.parametrize("request_json, match", [
        ({"kind": "replay_dataset", "model_id": "m", "params": {}},
         "non-empty"),
        ({"kind": "replay_dataset", "model_id": "m",
          "params": {"samples": [[1]], "mode": "replay"}}, "unknown param"),
        ({"kind": "score", "model_id": "m",
          "params": {"samples": [[1]], "mode": "sideways"}}, "scoring mode"),
        ({"kind": "fit", "params": {"samples": [[1]],
                                    "config": {"learning_rate": 0.1}}},
         "config key"),
        ({"kind": "fit", "params": {"samples": [[1]], "register_as": ""}},
         "register_as"),
    ])
    def test_bad_params_fail_at_submit_time(self, registry, request_json,
                                            match):
        with JobManager(registry, workers=1) as manager:
            with pytest.raises(ApiError, match=match) as excinfo:
                manager.submit(JobSubmitRequest.from_json(request_json))
            assert excinfo.value.code == "bad_request"
            assert manager.counts() == {status: 0 for status in
                                        manager.counts()}

    def test_unknown_model_404s_at_submit_not_as_failed_job(self, registry):
        with JobManager(registry, workers=1) as manager:
            with pytest.raises(ApiError) as excinfo:
                manager.submit(JobSubmitRequest(
                    kind="score", model_id="ghost",
                    params={"samples": [[1.0] * 5]}))
            assert excinfo.value.code == "model_not_found"

    def test_unknown_job_id_is_job_not_found(self, registry):
        with JobManager(registry, workers=1) as manager:
            with pytest.raises(ApiError) as excinfo:
                manager.get("deadbeef")
            assert excinfo.value.code == "job_not_found"


class TestCancellation:
    def test_cancel_queued_job_never_runs(self, registry):
        blocker = threading.Event()
        started = threading.Event()
        ran = threading.Event()

        def blocking_work(cancel_event):
            started.set()
            blocker.wait(timeout=30)
            return {"ok": True}

        def queued_work(cancel_event):
            ran.set()
            return {"ok": True}

        with JobManager(registry, workers=1) as manager:
            first = manager.submit_fn("score", blocking_work)
            assert started.wait(timeout=10)
            queued = manager.submit_fn("score", queued_work)
            assert manager.get(queued.job_id).status == "queued"

            cancelled = manager.cancel(queued.job_id)
            assert cancelled.status == "cancelled"
            blocker.set()
            _wait_terminal(manager, first.job_id)
            assert manager.result(first.job_id) == {"ok": True}
            assert not ran.is_set()
            with pytest.raises(ApiError) as excinfo:
                manager.result(queued.job_id)
            assert excinfo.value.code == "job_not_done"

    def test_cancel_running_job_discards_result(self, registry):
        release = threading.Event()

        def work(cancel_event):
            release.wait(timeout=30)
            return {"secret": True}

        with JobManager(registry, workers=1) as manager:
            job = manager.submit_fn("score", work)
            deadline = time.monotonic() + 10
            while manager.get(job.job_id).status != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            manager.cancel(job.job_id)
            release.set()
            done = _wait_terminal(manager, job.job_id)
            assert done.status == "cancelled"
            assert done.result is None

    def test_cancel_is_idempotent_and_skips_finished(self, registry):
        with JobManager(registry, workers=1) as manager:
            job = manager.submit_fn("score", lambda cancel: {"ok": 1})
            _wait_terminal(manager, job.job_id)
            after = manager.cancel(job.job_id)
            assert after.status == "succeeded"  # finished jobs stay finished
            cancelled_twice = manager.cancel(job.job_id)
            assert cancelled_twice.status == "succeeded"


class TestTTLExpiry:
    def test_finished_jobs_expire_after_ttl(self, registry):
        fake = [1000.0]
        with JobManager(registry, workers=1, ttl_s=60.0,
                        clock=lambda: fake[0]) as manager:
            job = manager.submit_fn("score", lambda cancel: {"ok": 1})
            _wait_terminal(manager, job.job_id)

            fake[0] += 59.0  # within TTL: still retrievable
            assert manager.result(job.job_id) == {"ok": 1}

            fake[0] += 2.0  # past TTL: garbage-collected
            with pytest.raises(ApiError) as excinfo:
                manager.get(job.job_id)
            assert excinfo.value.code == "job_not_found"
            assert manager.list() == []

    def test_running_jobs_never_expire(self, registry):
        fake = [1000.0]
        release = threading.Event()
        with JobManager(registry, workers=1, ttl_s=1.0,
                        clock=lambda: fake[0]) as manager:
            job = manager.submit_fn(
                "score", lambda cancel: (release.wait(timeout=30),
                                         {"ok": 1})[1])
            fake[0] += 1000.0
            assert manager.get(job.job_id).status in ("queued", "running")
            release.set()
            _wait_terminal(manager, job.job_id)


class TestShutdown:
    def test_close_rejects_new_submissions(self, registry):
        manager = JobManager(registry, workers=1)
        manager.close()
        with pytest.raises(ApiError) as excinfo:
            manager.submit_fn("score", lambda cancel: {})
        assert excinfo.value.code == "shutting_down"
        assert excinfo.value.http_status == 503

    def test_close_cancels_queued_jobs(self, registry):
        started = threading.Event()
        release = threading.Event()

        def blocking_work(cancel_event):
            started.set()
            release.wait(timeout=30)
            return {}

        manager = JobManager(registry, workers=1)
        manager.submit_fn("score", blocking_work)
        assert started.wait(timeout=10)
        queued = manager.submit_fn("score", lambda cancel: {})
        release.set()
        manager.close(wait=True)
        assert queued.status == "cancelled"
