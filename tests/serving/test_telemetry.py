"""Telemetry: metrics core, tracing headers, flight recorder, HTTP surface."""

import io
import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.core.detector import QuorumDetector
from repro.serving.artifact import save_model
from repro.serving.jobs import JobManager
from repro.serving.loadtest import percentile as loadtest_percentile
from repro.serving.models import JobSubmitRequest
from repro.serving.proxy import RoundRobinProxy
from repro.serving.registry import ModelRegistry
from repro.serving.server import build_server
from repro.serving.telemetry import (
    DEFAULT_LATENCY_BUCKETS_S,
    WELL_KNOWN_METRICS,
    FlightRecorder,
    Histogram,
    MetricsRegistry,
    clean_request_id,
    format_timing_header,
    lint_metric_name,
    lint_metric_names,
    main as telemetry_main,
    new_request_id,
    parse_timing_header,
    percentile,
)

GOLDEN = Path(__file__).parent / "data" / "prometheus_golden.txt"


# ------------------------------------------------------------ naming lint
class TestMetricNameLint:
    def test_well_formed_names_pass(self):
        assert lint_metric_name("http_requests_total", "counter") == []
        assert lint_metric_name("scoring_engine_seconds", "histogram") == []
        assert lint_metric_name("jobs_live_count", "gauge") == []

    def test_snake_case_is_enforced(self):
        assert lint_metric_name("HttpRequests_total", "counter")
        assert lint_metric_name("http-requests_total", "counter")
        assert lint_metric_name("1http_total", "counter")

    def test_unit_suffix_is_enforced_per_kind(self):
        assert lint_metric_name("http_requests", "counter")
        assert lint_metric_name("engine_latency", "histogram")
        assert lint_metric_name("inflight", "gauge")
        # A counter suffix does not satisfy a histogram and vice versa.
        assert lint_metric_name("engine_total", "histogram")
        assert lint_metric_name("requests_seconds", "counter")

    def test_double_underscore_rejected(self):
        assert lint_metric_name("http__requests_total", "counter")

    def test_unknown_kind_rejected(self):
        assert lint_metric_name("x_total", "summary")

    def test_well_known_catalog_is_clean(self):
        assert lint_metric_names(WELL_KNOWN_METRICS) == []

    def test_cli_lint_entry_point(self, capsys):
        assert telemetry_main(["--lint"]) == 0
        assert "OK" in capsys.readouterr().out
        assert telemetry_main(["--nope"]) == 2

    def test_registry_rejects_bad_names_at_creation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("BadName")
        with pytest.raises(ValueError):
            registry.histogram("missing_suffix")


# ---------------------------------------------------------------- registry
class TestMetricsRegistry:
    def test_counter_labels_and_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("demo_requests_total")
        counter.inc(route="/a", status="200")
        counter.inc(2.0, route="/a", status="200")
        counter.inc(route="/b", status="503")
        assert counter.value(route="/a", status="200") == 3.0
        assert counter.total() == 4.0
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_get_or_create_is_idempotent_but_kind_clash_raises(self):
        registry = MetricsRegistry()
        first = registry.counter("demo_requests_total")
        assert registry.counter("demo_requests_total") is first
        with pytest.raises(ValueError):
            registry.gauge("demo_requests_total")

    def test_gauge_set_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("demo_queue_count")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value() == 3.0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("demo_requests_total").inc()
        registry.histogram("demo_wait_seconds").observe(0.01)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["counters"]["demo_requests_total"] == [
            {"labels": {}, "value": 1.0}]
        assert snapshot["histograms"]["demo_wait_seconds"]["count"] == 1


class TestHistogram:
    def test_bucket_counts_are_cumulative(self):
        histogram = Histogram("demo_wait_seconds", buckets=(0.25, 0.5, 1.0))
        for value in (0.25, 0.5, 2.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == {"0.25": 1, "0.5": 2, "1": 2, "+Inf": 3}
        assert snapshot["count"] == 3
        assert snapshot["sum"] == 2.75

    def test_buckets_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("demo_wait_seconds", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram("demo_wait_seconds", buckets=())

    def test_percentiles_match_loadtest_percentile_exactly(self):
        """The tentpole pin: server-side histogram percentiles interpolate
        exactly like the loadtest's client-side percentile function."""
        rng = np.random.default_rng(7)
        values = rng.exponential(scale=0.02, size=311).tolist()
        histogram = Histogram("demo_wait_seconds",
                              buckets=DEFAULT_LATENCY_BUCKETS_S)
        for value in values:
            histogram.observe(value)
        ordered = sorted(values)
        reported = histogram.percentiles((50.0, 95.0, 99.0))
        for q in (50.0, 95.0, 99.0):
            assert reported[f"p{q:g}"] == loadtest_percentile(ordered, q)
            # And the module-level function is the same math too.
            assert percentile(ordered, q) == loadtest_percentile(ordered, q)

    def test_reservoir_is_bounded(self):
        histogram = Histogram("demo_wait_seconds", reservoir_size=8)
        for value in range(100):
            histogram.observe(float(value))
        # Percentiles come from the last 8 observations only...
        assert histogram.percentiles((50.0,))["p50"] == pytest.approx(95.5)
        # ...but the Prometheus-facing count covers everything.
        assert histogram.count == 100

    def test_empty_percentiles_are_none(self):
        histogram = Histogram("demo_wait_seconds")
        assert histogram.percentiles((50.0,)) == {"p50": None}


class TestPrometheusExposition:
    def test_golden_file(self):
        registry = MetricsRegistry()
        registry.counter("demo_errors_total", "Errors by code")
        requests = registry.counter("demo_requests_total",
                                    "Requests by route and status")
        requests.inc(3, route="/v1/x", status="200")
        requests.inc(route="/v1/x", status="503")
        registry.gauge("demo_queue_count", "Queue depth").set(2)
        waits = registry.histogram("demo_wait_seconds", "Waits",
                                   buckets=(0.25, 0.5, 1.0))
        for value in (0.25, 0.5, 2.0):
            waits.observe(value)
        assert registry.render_prometheus() == GOLDEN.read_text()

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("demo_requests_total").inc(code='say "hi"\n')
        rendered = registry.render_prometheus()
        assert r'code="say \"hi\"\n"' in rendered


# ----------------------------------------------------------------- tracing
class TestTracingHelpers:
    def test_new_request_ids_are_unique_and_clean(self):
        first, second = new_request_id(), new_request_id()
        assert first != second
        assert clean_request_id(first) == first

    def test_clean_request_id_sanitizes_and_bounds(self):
        assert clean_request_id("abc-123.X_y") == "abc-123.X_y"
        assert clean_request_id("evil\r\nheader: x") == "evilheaderx"
        assert len(clean_request_id("a" * 500)) == 128
        # Absent or fully-invalid ids get a fresh one.
        assert clean_request_id(None)
        assert clean_request_id("\r\n")

    def test_timing_header_round_trip(self):
        timings = {"queue_wait": 0.0012, "engine_compute": 0.034,
                   "total": 0.0361}
        header = format_timing_header(timings)
        assert header == "queue_wait=1.200;engine_compute=34.000;total=36.100"
        parsed = parse_timing_header(header)
        for stage, seconds in timings.items():
            assert parsed[stage] == pytest.approx(seconds, abs=5e-7)

    def test_parse_timing_header_skips_garbage(self):
        assert parse_timing_header("a=1.0;junk;b=oops;c=2.0") == {
            "a": 0.001, "c": 0.002}


# ---------------------------------------------------------- flight recorder
class TestFlightRecorder:
    def test_ring_is_bounded_and_seq_monotonic(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.record("tick", index=index)
        events = recorder.events()
        assert len(recorder) == 4
        assert [event["index"] for event in events] == [6, 7, 8, 9]
        assert [event["seq"] for event in events] == [7, 8, 9, 10]
        assert recorder.events(limit=2)[0]["index"] == 8

    def test_event_schema(self):
        recorder = FlightRecorder(capacity=4)
        event = recorder.record("transition", request_id="abc", slot=0,
                                to_state="ejected")
        assert {"seq", "t_mono_s", "t_wall_s", "kind"} <= set(event)
        assert event["kind"] == "transition"
        assert event["request_id"] == "abc"
        assert event["slot"] == 0

    def test_jsonl_sink_writes_every_event(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        recorder = FlightRecorder(capacity=2, sink=str(sink))
        for index in range(5):
            recorder.record("tick", index=index)
        recorder.close()
        lines = sink.read_text().splitlines()
        # The sink outlives the ring: all 5 events, valid JSON each.
        assert len(lines) == 5
        parsed = [json.loads(line) for line in lines]
        assert [event["index"] for event in parsed] == list(range(5))
        for event in parsed:
            assert {"seq", "t_mono_s", "t_wall_s", "kind"} <= set(event)

    def test_broken_sink_does_not_raise(self):
        sink = io.StringIO()
        sink.close()
        recorder = FlightRecorder(capacity=2, sink=sink)
        recorder.record("tick")  # must not propagate the sink's ValueError
        assert len(recorder) == 1

    def test_dump(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record("a")
        recorder.record("b")
        stream = io.StringIO()
        assert recorder.dump(stream) == 2
        kinds = [json.loads(line)["kind"]
                 for line in stream.getvalue().splitlines()]
        assert kinds == ["a", "b"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


# -------------------------------------------------------------- job timing
class TestJobDurations:
    def test_queued_and_run_times_with_fake_clock(self, tmp_path):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(16, 4))
        detector = QuorumDetector(ensemble_groups=2, seed=3, shots=512)
        detector.fit(data)
        path = save_model(detector, tmp_path / "m.json")

        clock = {"now": 100.0}
        metrics = MetricsRegistry()
        with ModelRegistry() as registry:
            registry.load(path, model_id="m")
            # workers=0 is not allowed; serialize by submitting a no-op
            # through submit_fn with a manual gate instead.
            gate = threading.Event()
            with JobManager(registry, workers=1,
                            clock=lambda: clock["now"],
                            metrics=metrics) as manager:
                blocker = manager.submit_fn(
                    "score", lambda cancel: {"waited": gate.wait(30)})
                clock["now"] = 103.0  # the next job sits queued 3s
                job = manager.submit(JobSubmitRequest(
                    kind="score", model_id="m",
                    params={"samples": data[:2].tolist()}))
                clock["now"] = 110.0
                gate.set()
                deadline = 200
                import time as _time
                while manager.get(job.job_id).status not in (
                        "succeeded", "failed", "cancelled") and deadline:
                    _time.sleep(0.01)
                    deadline -= 1
                done = manager.get(job.job_id)
                assert done.status == "succeeded"
                # Queued from t=103 until the worker freed up at t=110.
                assert done.queued_s == pytest.approx(7.0)
                assert done.run_s == pytest.approx(0.0)
                info = done.info().to_json()
                assert info["queued_s"] == pytest.approx(7.0)
                assert info["run_s"] == pytest.approx(0.0)
                blocked = manager.get(blocker.job_id)
                assert blocked.run_s is not None
        finished = metrics.counter("jobs_finished_total")
        assert finished.value(status="succeeded") == 2.0
        queue_hist = metrics.histogram("job_queue_wait_seconds")
        assert queue_hist.count == 2


# ------------------------------------------------------------ HTTP surface
@pytest.fixture(scope="module")
def telemetry_server(tmp_path_factory):
    rng = np.random.default_rng(11)
    data = rng.normal(size=(24, 4))
    detector = QuorumDetector(ensemble_groups=2, seed=5, shots=512)
    detector.fit(data)
    path = save_model(detector,
                      tmp_path_factory.mktemp("telemetry") / "m.json")
    metrics = MetricsRegistry()
    server = build_server(path, port=0, metrics=metrics)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield {"base": f"http://{host}:{port}", "data": data,
           "metrics": metrics, "server": server,
           "default_id": server.runtime.registry.default_id()}
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def _request(url, payload=None, headers=None, method=None):
    body = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=body, method=method,
                                     headers=dict(headers or {}))
    if body is not None:
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, response.read(), response.headers


class TestMetricsRoute:
    def test_json_snapshot_counts_requests(self, telemetry_server):
        base = telemetry_server["base"]
        _request(base + "/v1/healthz")
        status, body, headers = _request(base + "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        snapshot = json.loads(body)
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        requests_series = snapshot["counters"]["http_requests_total"]
        routes = {tuple(sorted(entry["labels"].items()))
                  for entry in requests_series}
        assert any(("route", "/v1/healthz") in key for key in routes)
        assert snapshot["histograms"]["http_request_seconds"]["count"] > 0

    def test_prometheus_exposition_via_query_and_accept(self,
                                                        telemetry_server):
        base = telemetry_server["base"]
        _request(base + "/v1/healthz")
        status, body, headers = _request(
            base + "/v1/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "# TYPE http_requests_total counter" in text
        assert "http_request_seconds_bucket{le=" in text
        assert "http_request_seconds_sum" in text
        status, body, _ = _request(base + "/v1/metrics",
                                   headers={"Accept": "text/plain"})
        assert body.decode().startswith("# ")

    def test_error_counter_by_code(self, telemetry_server):
        base = telemetry_server["base"]
        errors = telemetry_server["metrics"].counter("http_errors_total")
        before = errors.value(code="not_found")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _request(base + "/no/such/path")
        assert excinfo.value.code == 404
        assert errors.value(code="not_found") == before + 1

    def test_scoring_stage_histograms_populate(self, telemetry_server):
        base = telemetry_server["base"]
        model_id = telemetry_server["default_id"]
        samples = telemetry_server["data"][:3].tolist()
        _request(f"{base}/v1/models/{model_id}/score", {"samples": samples})
        metrics = telemetry_server["metrics"]
        assert metrics.histogram("scoring_queue_wait_seconds").count > 0
        assert metrics.histogram("scoring_engine_seconds").count > 0
        assert metrics.histogram("scoring_shot_noise_seconds").count > 0
        assert metrics.counter("scoring_requests_total").total() > 0
        assert metrics.counter("scoring_samples_total").total() >= 3


class TestRequestTracing:
    def test_request_id_is_minted_and_echoed(self, telemetry_server):
        _, _, headers = _request(telemetry_server["base"] + "/v1/healthz")
        assert headers["X-Request-Id"]

    def test_client_request_id_is_propagated(self, telemetry_server):
        _, _, headers = _request(telemetry_server["base"] + "/v1/healthz",
                                 headers={"X-Request-Id": "trace-me-42"})
        assert headers["X-Request-Id"] == "trace-me-42"

    def test_hostile_request_id_is_sanitized(self, telemetry_server):
        _, _, headers = _request(telemetry_server["base"] + "/v1/healthz",
                                 headers={"X-Request-Id": "a b<script>"})
        assert headers["X-Request-Id"] == "abscript"

    def test_x_timing_is_opt_in(self, telemetry_server):
        base = telemetry_server["base"]
        _, _, plain = _request(base + "/v1/healthz")
        assert plain.get("X-Timing") is None
        _, _, timed = _request(base + "/v1/healthz",
                               headers={"X-Timing": "1"})
        parsed = parse_timing_header(timed["X-Timing"])
        assert {"serialization", "total"} <= set(parsed)
        assert parsed["total"] >= parsed["serialization"]

    def test_score_timing_carries_stage_spans(self, telemetry_server):
        base = telemetry_server["base"]
        model_id = telemetry_server["default_id"]
        samples = telemetry_server["data"][:2].tolist()
        _, _, headers = _request(f"{base}/v1/models/{model_id}/score",
                                 {"samples": samples},
                                 headers={"X-Timing": "1"})
        parsed = parse_timing_header(headers["X-Timing"])
        assert {"queue_wait", "engine_compute", "shot_noise",
                "serialization", "total"} <= set(parsed)


class TestProxyPropagation:
    @pytest.fixture()
    def proxied(self, telemetry_server):
        host, port = telemetry_server["server"].server_address[:2]
        with RoundRobinProxy([(host, port)]) as proxy:
            yield {"proxy": proxy, "base": proxy.base_url,
                   "backend": f"{host}:{port}"}

    def test_proxy_mints_request_id_end_to_end(self, proxied):
        _, _, headers = _request(proxied["base"] + "/v1/healthz")
        # The replica echoes the id the proxy injected.
        assert headers["X-Request-Id"]

    def test_client_id_survives_proxy_and_replica(self, proxied,
                                                  telemetry_server):
        _, _, headers = _request(proxied["base"] + "/v1/healthz",
                                 headers={"X-Request-Id": "e2e-77"})
        assert headers["X-Request-Id"] == "e2e-77"

    def test_proxy_timing_header_injection(self, proxied):
        _, _, headers = _request(proxied["base"] + "/v1/healthz",
                                 headers={"X-Timing": "1"})
        assert "proxy" in parse_timing_header(headers["X-Proxy-Timing"])
        # The backend's own X-Timing passes through untouched.
        assert "total" in parse_timing_header(headers["X-Timing"])

    def test_backend_stats_report_rps_and_percentiles(self, proxied):
        for _ in range(5):
            _request(proxied["base"] + "/v1/healthz")
        stats = proxied["proxy"].backend_stats(window_s=60.0)
        entry = stats[proxied["backend"]]
        assert entry["requests"] >= 5
        assert entry["errors"] == 0
        assert entry["rps"] > 0
        assert entry["p50_ms"] is not None
        assert entry["p95_ms"] >= entry["p50_ms"]


class TestDrainBehavior:
    def test_metrics_stay_scrapeable_during_drain(self, tmp_path):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(16, 4))
        detector = QuorumDetector(ensemble_groups=2, seed=9, shots=512)
        detector.fit(data)
        path = save_model(detector, tmp_path / "m.json")
        metrics = MetricsRegistry()
        server = build_server(path, port=0, metrics=metrics)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            _request(base + "/v1/healthz")
            server.runtime.drain()
            # Scoring (and everything else) answers 503 shutting_down...
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _request(base + "/v1/healthz")
            assert excinfo.value.code == 503
            envelope = json.loads(excinfo.value.read())
            assert envelope["error"]["code"] == "shutting_down"
            assert excinfo.value.headers["Retry-After"]
            # ...but the metrics scrape still answers 200.
            status, body, _ = _request(base + "/v1/metrics")
            assert status == 200
            snapshot = json.loads(body)
            assert snapshot["counters"]["http_requests_total"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
