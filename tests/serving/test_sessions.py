"""SessionManager: dedicated-mode determinism, batch mode, TTL expiry."""

import threading

import numpy as np
import pytest

from repro.core.detector import QuorumDetector
from repro.quantum.compiler import CircuitCompiler
from repro.serving.artifact import save_model
from repro.serving.models import ApiError, ScoreRequest, SessionCreateRequest
from repro.serving.registry import ModelRegistry
from repro.serving.sessions import SessionManager


def _toy_data(samples=24, features=5, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(samples, features))


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    data = _toy_data()
    detector = QuorumDetector(ensemble_groups=2, seed=23, shots=512)
    detector.fit(data)
    path = save_model(detector,
                      tmp_path_factory.mktemp("sessions") / "model.json")
    return {"data": data, "detector": detector, "path": path}


@pytest.fixture()
def registry(bundle):
    with ModelRegistry(compiler=CircuitCompiler()) as reg:
        reg.load(bundle["path"], model_id="m")
        yield reg


class TestDedicatedDeterminism:
    def test_fresh_session_full_replay_matches_fit_bitwise(self, bundle,
                                                           registry):
        """Acceptance criterion: a dedicated session whose FIRST request is
        the full training set in replay mode reproduces the fit scores."""
        manager = SessionManager(registry)
        session = manager.create(SessionCreateRequest(mode="dedicated"))
        result = manager.score(session.session_id, ScoreRequest(
            samples=bundle["data"].tolist(), mode="replay"))
        assert np.array_equal(result.scores,
                              bundle["detector"].anomaly_scores())

    def test_same_request_sequence_is_bitwise_identical(self, bundle,
                                                        registry):
        """Two dedicated sessions fed identical sequences agree bitwise at
        every step (sticky per-member RNGs advance identically)."""
        manager = SessionManager(registry)
        chunks = [_toy_data(samples=3, seed=s).tolist() for s in (31, 32, 33)]

        def run_sequence():
            session = manager.create(SessionCreateRequest(mode="dedicated"))
            return [manager.score(session.session_id,
                                  ScoreRequest(samples=chunk)).scores
                    for chunk in chunks]

        first, second = run_sequence(), run_sequence()
        for step_a, step_b in zip(first, second):
            assert np.array_equal(step_a, step_b)

    def test_rng_state_advances_across_requests(self, bundle, registry):
        """The same samples scored twice IN ONE dedicated session may draw
        different shot noise (the RNGs moved on) -- but a second session
        replays the exact same pair, proving the evolution is deterministic,
        not random."""
        manager = SessionManager(registry)
        probe = _toy_data(samples=3, seed=41).tolist()

        def score_twice():
            session = manager.create(SessionCreateRequest(mode="dedicated"))
            return (manager.score(session.session_id,
                                  ScoreRequest(samples=probe)).scores,
                    manager.score(session.session_id,
                                  ScoreRequest(samples=probe)).scores)

        first_a, second_a = score_twice()
        first_b, second_b = score_twice()
        assert np.array_equal(first_a, first_b)
        assert np.array_equal(second_a, second_b)

    def test_sessions_do_not_perturb_stateless_scoring(self, bundle,
                                                       registry):
        """Dedicated sessions own private RNG copies: interleaving session
        traffic must not change what plain /score returns."""
        scorer = registry.get("m").scorer
        probe = _toy_data(samples=3, seed=47)
        before = scorer.submit(probe).result(timeout=60).scores

        manager = SessionManager(registry)
        session = manager.create(SessionCreateRequest(mode="dedicated"))
        manager.score(session.session_id,
                      ScoreRequest(samples=probe.tolist()))

        after = scorer.submit(probe).result(timeout=60).scores
        assert np.array_equal(before, after)


class TestBatchMode:
    def test_batch_sessions_are_stateless(self, bundle, registry):
        """Batch mode routes through the micro-batch queue: the same probe
        scores identically on every request, inside or outside a session."""
        manager = SessionManager(registry)
        session = manager.create(SessionCreateRequest())  # mode defaults batch
        assert session.mode == "batch"
        assert session.member_rngs is None
        probe = _toy_data(samples=3, seed=53)
        in_session = manager.score(session.session_id,
                                   ScoreRequest(samples=probe.tolist()))
        again = manager.score(session.session_id,
                              ScoreRequest(samples=probe.tolist()))
        direct = registry.get("m").scorer.submit(probe).result(timeout=60)
        assert np.array_equal(in_session.scores, direct.scores)
        assert np.array_equal(again.scores, direct.scores)
        assert manager.get(session.session_id).requests == 2

    def test_bad_samples_are_bad_request(self, registry):
        manager = SessionManager(registry)
        session = manager.create(SessionCreateRequest())
        with pytest.raises(ApiError) as excinfo:
            manager.score(session.session_id,
                          ScoreRequest(samples=[[1.0]]))  # wrong feature dim
        assert excinfo.value.code == "bad_request"


class TestLifecycleAndExpiry:
    def test_unknown_model_404s_at_creation(self, registry):
        manager = SessionManager(registry)
        with pytest.raises(ApiError) as excinfo:
            manager.create(SessionCreateRequest(model_id="ghost"))
        assert excinfo.value.code == "model_not_found"

    def test_expired_session_is_410_unknown_is_404(self, registry):
        """The tombstone table distinguishes 'expired' from 'never existed'."""
        fake = [1000.0]
        manager = SessionManager(registry, default_ttl_s=60.0,
                                 clock=lambda: fake[0])
        session = manager.create(SessionCreateRequest())

        fake[0] += 59.0  # still alive
        assert manager.get(session.session_id).session_id == session.session_id

        fake[0] += 62.0  # idle past TTL (get() above refreshed nothing)
        with pytest.raises(ApiError) as expired:
            manager.get(session.session_id)
        assert expired.value.code == "session_expired"
        assert expired.value.http_status == 410

        with pytest.raises(ApiError) as unknown:
            manager.get("deadbeef")
        assert unknown.value.code == "session_not_found"
        assert unknown.value.http_status == 404

    def test_scoring_refreshes_the_idle_timer(self, bundle, registry):
        fake = [1000.0]
        manager = SessionManager(registry, default_ttl_s=60.0,
                                 clock=lambda: fake[0])
        session = manager.create(SessionCreateRequest())
        probe = _toy_data(samples=2, seed=59).tolist()
        for _ in range(3):
            fake[0] += 50.0  # each score resets last_used_at
            manager.score(session.session_id, ScoreRequest(samples=probe))
        assert manager.get(session.session_id).requests == 3

    def test_touch_refreshes_without_scoring(self, registry):
        fake = [1000.0]
        manager = SessionManager(registry, default_ttl_s=60.0,
                                 clock=lambda: fake[0])
        session = manager.create(SessionCreateRequest())
        fake[0] += 50.0
        manager.touch(session.session_id)
        fake[0] += 50.0
        assert manager.get(session.session_id).requests == 0

    def test_per_session_ttl_overrides_default(self, registry):
        fake = [1000.0]
        manager = SessionManager(registry, default_ttl_s=600.0,
                                 clock=lambda: fake[0])
        short = manager.create(SessionCreateRequest(ttl_s=10.0))
        long = manager.create(SessionCreateRequest())
        fake[0] += 11.0
        assert len(manager) == 1
        with pytest.raises(ApiError) as excinfo:
            manager.get(short.session_id)
        assert excinfo.value.code == "session_expired"
        assert manager.get(long.session_id).session_id == long.session_id

    def test_closed_session_id_is_404_not_410(self, registry):
        manager = SessionManager(registry)
        session = manager.create(SessionCreateRequest())
        manager.close_session(session.session_id)
        with pytest.raises(ApiError) as excinfo:
            manager.get(session.session_id)
        assert excinfo.value.code == "session_not_found"

    def test_close_rejects_new_sessions(self, registry):
        manager = SessionManager(registry)
        manager.close()
        with pytest.raises(ApiError) as excinfo:
            manager.create(SessionCreateRequest())
        assert excinfo.value.code == "shutting_down"


class TestMidFlightExpiry:
    """A session that dies while a request is in flight must not be mutated
    afterwards: the commit re-validates membership under one lock."""

    def test_expiring_mid_score_is_410_and_not_resurrected(
            self, bundle, registry, monkeypatch):
        fake = [1000.0]
        manager = SessionManager(registry, default_ttl_s=60.0,
                                 clock=lambda: fake[0])
        session = manager.create(SessionCreateRequest(mode="dedicated"))
        entry = registry.get("m")
        real_score = entry.scorer.score_stateful

        def slow_score(samples, rngs, mode="reference"):
            # The TTL elapses while the scorer is busy: by commit time the
            # session has expired (a GC on any other code path would
            # tombstone it identically).
            result = real_score(samples, rngs, mode=mode)
            fake[0] += 61.0
            return result

        monkeypatch.setattr(entry.scorer, "score_stateful", slow_score)
        probe = _toy_data(samples=2, seed=71).tolist()
        with pytest.raises(ApiError) as excinfo:
            manager.score(session.session_id, ScoreRequest(samples=probe))
        assert excinfo.value.code == "session_expired"
        assert excinfo.value.http_status == 410
        assert session.requests == 0  # the dead record was not mutated

        with pytest.raises(ApiError) as again:  # still tombstoned
            manager.get(session.session_id)
        assert again.value.code == "session_expired"

    def test_touch_after_mid_flight_expiry_is_410(self, registry):
        fake = [1000.0]
        manager = SessionManager(registry, default_ttl_s=60.0,
                                 clock=lambda: fake[0])
        session = manager.create(SessionCreateRequest())
        live = manager.get(session.session_id)
        fake[0] += 61.0  # expires between lookup and commit
        with pytest.raises(ApiError) as excinfo:
            manager._commit_use(live, count_request=False)
        assert excinfo.value.code == "session_expired"

    def test_closed_mid_score_is_404_not_mutated(self, bundle, registry,
                                                 monkeypatch):
        """An explicit close that wins the race answers session_not_found."""
        manager = SessionManager(registry)
        session = manager.create(SessionCreateRequest(mode="dedicated"))
        entry = registry.get("m")
        real_score = entry.scorer.score_stateful
        started, release = threading.Event(), threading.Event()

        def blocking_score(samples, rngs, mode="reference"):
            started.set()
            assert release.wait(timeout=30)
            return real_score(samples, rngs, mode=mode)

        monkeypatch.setattr(entry.scorer, "score_stateful", blocking_score)
        probe = _toy_data(samples=2, seed=73).tolist()
        outcome = {}

        def run():
            try:
                manager.score(session.session_id,
                              ScoreRequest(samples=probe))
                outcome["error"] = None
            except ApiError as error:
                outcome["error"] = error

        thread = threading.Thread(target=run)
        thread.start()
        assert started.wait(timeout=30)
        manager.close_session(session.session_id)
        release.set()
        thread.join(timeout=60)
        assert outcome["error"] is not None
        assert outcome["error"].code == "session_not_found"
        assert session.requests == 0
