"""FleetSupervisor state machine, driven deterministically with fakes.

Every collaborator with side effects is injected: a fake spawner (no
subprocesses), a fake prober (scripted health), a manual clock, and zero
jitter -- so each transition of the per-replica state machine is asserted
exactly, with `tick()` called by hand.  The chaos suite (`test_chaos.py`,
marked `chaos`) exercises the same loop against real processes.
"""

import pytest

from repro.serving.supervisor import (
    CRASH_LOOPED,
    EJECTED,
    HEALTHY,
    REPLICA_STATES,
    STARTING,
    STOPPED,
    SUSPECT,
    FleetSupervisor,
    SupervisorPolicy,
)


class FakeProcess:
    """Just enough of ReplicaProcess for the supervisor: liveness + reaping."""

    def __init__(self, address, pid):
        self._address = address
        self._pid = pid
        self._exit_code = None
        self.signals = []
        self.close_calls = []

    @property
    def address(self):
        return self._address

    @property
    def pid(self):
        return self._pid

    def poll(self):
        return self._exit_code

    @property
    def alive(self):
        return self._exit_code is None

    def die(self, exit_code=-9):
        self._exit_code = exit_code

    def exit_summary(self):
        return {"exit_code": self._exit_code, "stderr_tail": "fake stderr"}

    def send_signal(self, signum):
        self.signals.append(signum)

    def terminate(self):
        self.signals.append("TERM")

    def kill(self):
        self.signals.append("KILL")
        if self._exit_code is None:
            self._exit_code = -9

    def close(self, term_timeout_s=15.0, kill_timeout_s=10.0):
        self.close_calls.append((term_timeout_s, kill_timeout_s))
        if self._exit_code is None:
            self._exit_code = 0  # graceful SIGTERM drain
        return self._exit_code


class Harness:
    """A supervisor wired to fakes plus the knobs the tests poke."""

    def __init__(self, replicas=2, **policy_overrides):
        policy_kwargs = dict(
            eject_after=2, readmit_after=2,
            backoff_base_s=1.0, backoff_max_s=8.0, backoff_jitter=0.0,
            crash_loop_threshold=3, crash_loop_window_s=10.0,
            startup_grace_s=5.0, drain_timeout_s=7.0, kill_timeout_s=3.0)
        policy_kwargs.update(policy_overrides)
        self.now = 0.0
        self.spawned = []
        self.health = {}
        self.spawn_errors = []

        def spawner():
            if self.spawn_errors:
                raise self.spawn_errors.pop(0)
            process = FakeProcess(f"127.0.0.1:{9000 + len(self.spawned)}",
                                  pid=40000 + len(self.spawned))
            self.spawned.append(process)
            self.health[process.address] = True
            return process

        self.supervisor = FleetSupervisor(
            replicas=replicas, policy=SupervisorPolicy(**policy_kwargs),
            spawner=spawner,
            prober=lambda address: self.health.get(address, False),
            clock=lambda: self.now,
            jitter=lambda: 0.0)

    def advance(self, seconds):
        self.now += seconds

    def slot(self, index=0):
        return self.supervisor._slots[index]

    def close(self):
        self.supervisor.close()


@pytest.fixture()
def harness():
    h = Harness()
    h.supervisor.start()
    yield h
    h.close()


class TestStartupAndHealth:
    def test_start_spawns_target_replicas(self, harness):
        assert len(harness.spawned) == 2
        status = harness.supervisor.status()
        assert status["target_replicas"] == 2
        assert [s["state"] for s in status["slots"]] == [STARTING, STARTING]
        assert status["proxy"]["backends"] == []  # not admitted yet

    def test_first_successful_probe_admits(self, harness):
        harness.supervisor.tick()
        status = harness.supervisor.status()
        assert status["healthy"] == 2
        assert sorted(status["proxy"]["backends"]) == \
            sorted(p.address for p in harness.spawned)

    def test_states_vocabulary_is_stable(self):
        assert REPLICA_STATES == ("starting", "healthy", "suspect",
                                  "ejected", "draining", "stopped",
                                  "crash_looped")

    def test_startup_grace_exceeded_counts_as_crash(self, harness):
        victim = harness.spawned[0]
        harness.health[victim.address] = False  # never becomes probeable
        harness.supervisor.tick()
        assert harness.slot(0).state == STARTING
        harness.advance(6.0)  # past startup_grace_s=5
        harness.supervisor.tick()
        slot = harness.slot(0)
        assert slot.state == EJECTED
        assert "KILL" in victim.signals
        assert slot.next_restart_at is not None


class TestEjectReadmit:
    def test_eject_after_consecutive_failures_then_readmit(self, harness):
        harness.supervisor.tick()  # both healthy
        victim = harness.spawned[0]
        harness.health[victim.address] = False
        harness.supervisor.tick()
        slot = harness.slot(0)
        assert slot.state == SUSPECT  # on notice, still in rotation
        assert victim.address in harness.supervisor.proxy.backend_addresses()
        harness.supervisor.tick()  # second failure -> eject_after=2
        assert slot.state == EJECTED
        assert victim.address not in \
            harness.supervisor.proxy.backend_addresses()
        # Recovery: readmit_after=2 consecutive successes required.
        harness.health[victim.address] = True
        harness.supervisor.tick()
        assert slot.state == EJECTED  # one success is not enough
        harness.supervisor.tick()
        assert slot.state == HEALTHY
        assert victim.address in harness.supervisor.proxy.backend_addresses()

    def test_single_blip_recovers_from_suspect(self, harness):
        harness.supervisor.tick()
        victim = harness.spawned[1]
        harness.health[victim.address] = False
        harness.supervisor.tick()
        assert harness.slot(1).state == SUSPECT
        harness.health[victim.address] = True
        harness.supervisor.tick()
        assert harness.slot(1).state == HEALTHY
        assert harness.slot(1).consecutive_failures == 0


class TestCrashRestart:
    def test_crash_restarts_after_backoff(self, harness):
        harness.supervisor.tick()
        victim = harness.spawned[0]
        victim.die(-9)
        harness.supervisor.tick()
        slot = harness.slot(0)
        assert slot.state == EJECTED
        assert slot.process is None  # reaped
        assert slot.last_exit["exit_code"] == -9
        assert slot.last_exit["stderr_tail"] == "fake stderr"
        assert victim.address not in \
            harness.supervisor.proxy.backend_addresses()
        assert slot.next_restart_at == pytest.approx(1.0)  # backoff base
        harness.advance(0.5)
        harness.supervisor.tick()
        assert slot.process is None  # backoff not elapsed yet
        harness.advance(0.6)
        harness.supervisor.tick()
        assert slot.state == STARTING
        assert slot.restarts == 1
        harness.supervisor.tick()
        assert slot.state == HEALTHY
        assert len(harness.spawned) == 3

    def test_failed_respawns_back_off_exponentially(self):
        from repro.serving.loadtest import ReplicaSpawnError

        h = Harness(replicas=1, crash_loop_threshold=100)
        h.supervisor.start()
        try:
            h.supervisor.tick()
            h.spawned[0].die(1)
            h.supervisor.tick()  # crash 1: backoff 1s
            slot = h.slot(0)
            delays = [slot.next_restart_at - h.now]
            for _ in range(3):  # every respawn crashes on boot
                h.spawn_errors.append(
                    ReplicaSpawnError("boom", exit_code=1, stderr_tail="t"))
                h.advance(slot.next_restart_at - h.now)
                h.supervisor.tick()
                delays.append(slot.next_restart_at - h.now)
            assert delays == [pytest.approx(1.0), pytest.approx(2.0),
                              pytest.approx(4.0), pytest.approx(8.0)]
            assert slot.last_exit == {"exit_code": 1, "stderr_tail": "t"}
        finally:
            h.close()

    def test_crash_loop_breaker_parks_the_slot(self, harness):
        harness.supervisor.tick()
        slot = harness.slot(0)
        for _ in range(3):  # threshold=3 inside window=10s
            if slot.process is not None:
                slot.process.die(-11)
            harness.supervisor.tick()  # register the death
            if slot.state == CRASH_LOOPED:
                break
            harness.advance(slot.next_restart_at - harness.now)
            harness.supervisor.tick()  # respawn
            harness.supervisor.tick()  # promote to healthy
        assert slot.state == CRASH_LOOPED
        assert slot.next_restart_at is None  # parked: no restart scheduled
        status = harness.supervisor.status()
        info = status["slots"][0]
        assert info["state"] == CRASH_LOOPED
        assert "crashes within" in info["last_transition_reason"]
        # The fleet keeps serving degraded on the surviving replica.
        assert status["healthy"] == 1
        # Long after the window, the breaker stays tripped until revive().
        harness.advance(100.0)
        harness.supervisor.tick()
        assert slot.state == CRASH_LOOPED

    def test_revive_unparks_a_crash_looped_slot(self, harness):
        harness.supervisor.tick()
        slot = harness.slot(0)
        while slot.state != CRASH_LOOPED:
            if slot.process is not None:
                slot.process.die(-11)
                harness.supervisor.tick()
            else:
                harness.advance(slot.next_restart_at - harness.now)
                harness.supervisor.tick()
                harness.supervisor.tick()
        harness.supervisor.revive(0)
        assert slot.state == STARTING
        harness.supervisor.tick()
        assert slot.state == HEALTHY
        with pytest.raises(ValueError):
            harness.supervisor.revive(0)  # only crash_looped slots
        with pytest.raises(KeyError):
            harness.supervisor.revive(99)


class TestScaling:
    def test_scale_in_drains_gracefully(self, harness):
        harness.supervisor.tick()
        harness.supervisor.scale_to(1)
        status = harness.supervisor.status()
        assert status["target_replicas"] == 1
        states = [s["state"] for s in status["slots"]]
        assert sorted(states) == [HEALTHY, STOPPED]
        drained = next(p for p in harness.spawned if p.close_calls)
        # Removed from rotation BEFORE the drain close, and the close used
        # the drain timeout (SIGTERM + bounded wait, SIGKILL fallback).
        assert drained.address not in \
            harness.supervisor.proxy.backend_addresses()
        assert drained.close_calls == [(7.0, 3.0)]

    def test_scale_in_prefers_unhealthy_victims(self, harness):
        harness.supervisor.tick()
        victim = harness.spawned[0]
        harness.health[victim.address] = False
        harness.supervisor.tick()
        harness.supervisor.tick()  # ejected now
        harness.supervisor.scale_to(1)
        assert harness.slot(0).state == STOPPED  # the ejected one went
        assert harness.slot(1).state == HEALTHY

    def test_scale_out_adds_slots(self, harness):
        harness.supervisor.tick()
        harness.supervisor.scale_to(4)
        assert len(harness.spawned) == 4
        harness.supervisor.tick()
        assert harness.supervisor.healthy_count() == 4

    def test_autoscale_to_target_uses_ceiling(self, harness):
        assert harness.supervisor.autoscale_to_target(250.0, 100.0) == 3
        assert harness.supervisor.autoscale_to_target(
            10_000.0, 100.0, max_replicas=4) == 4
        assert harness.supervisor.autoscale_to_target(10.0, 100.0) == 1
        with pytest.raises(ValueError):
            harness.supervisor.autoscale_to_target(0.0, 100.0)


class TestLifecycleAndStatus:
    def test_close_drains_everything(self):
        h = Harness()
        h.supervisor.start()
        h.supervisor.tick()
        exit_codes = h.supervisor.close()
        assert exit_codes == [0, 0]
        assert all(p.close_calls for p in h.spawned)

    def test_status_is_json_serializable(self, harness):
        import json

        harness.supervisor.tick()
        blob = json.dumps(harness.supervisor.status())
        assert "healthy" in blob

    def test_double_start_rejected(self, harness):
        with pytest.raises(RuntimeError):
            harness.supervisor.start()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FleetSupervisor(spawner=lambda: None, replicas=0)
        with pytest.raises(ValueError):
            FleetSupervisor()  # neither model_path nor spawner
        with pytest.raises(ValueError):
            SupervisorPolicy(eject_after=0)
        with pytest.raises(ValueError):
            SupervisorPolicy(backoff_base_s=5.0, backoff_max_s=1.0)
        with pytest.raises(ValueError):
            SupervisorPolicy(backoff_jitter=2.0)
