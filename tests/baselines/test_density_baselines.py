"""Tests for the density-based classical baselines (LOF and HBOS)."""

import numpy as np
import pytest

from repro.baselines.hbos import HBOSDetector
from repro.baselines.lof import LocalOutlierFactorDetector
from repro.data.datasets import make_gaussian_anomaly_dataset
from repro.metrics.classification import evaluate_top_k


def planted_dataset(seed=0):
    return make_gaussian_anomaly_dataset(
        name="density_toy", num_samples=180, num_anomalies=12, num_features=6,
        num_clusters=2, separation=5.0, anomaly_spread=1.5, seed=seed,
    )


class TestLocalOutlierFactor:
    def test_scores_shape_and_scale(self):
        dataset = planted_dataset()
        scores = LocalOutlierFactorDetector(num_neighbors=15).fit_scores(dataset.data)
        assert scores.shape == (dataset.num_samples,)
        # Inliers cluster around LOF ~ 1.
        assert 0.8 < np.median(scores) < 1.3

    def test_detects_planted_anomalies(self):
        dataset = planted_dataset()
        scores = LocalOutlierFactorDetector(num_neighbors=20).fit_scores(dataset.data)
        report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
        assert report.recall >= 0.6

    def test_isolated_point_has_high_lof(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(60, 3))
        data[0] = 25.0
        scores = LocalOutlierFactorDetector(num_neighbors=10).fit_scores(data)
        assert scores.argmax() == 0
        assert scores[0] > 2.0

    def test_neighbor_count_capped(self):
        data = np.random.default_rng(1).normal(size=(10, 2))
        scores = LocalOutlierFactorDetector(num_neighbors=50).fit_scores(data)
        assert scores.shape == (10,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LocalOutlierFactorDetector().anomaly_scores()

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            LocalOutlierFactorDetector(num_neighbors=0)
        with pytest.raises(ValueError):
            LocalOutlierFactorDetector().fit(np.zeros((2, 2)))

    def test_transductive_score_size_check(self):
        data = np.random.default_rng(2).normal(size=(20, 2))
        detector = LocalOutlierFactorDetector(num_neighbors=5).fit(data)
        with pytest.raises(ValueError):
            detector.anomaly_scores(np.zeros((5, 2)))

    def test_predict_flag_count(self):
        dataset = planted_dataset()
        detector = LocalOutlierFactorDetector(num_neighbors=15).fit(dataset.data)
        assert detector.predict(dataset.data, 6).sum() == 6


class TestHBOS:
    def test_detects_planted_anomalies(self):
        dataset = planted_dataset()
        scores = HBOSDetector().fit_scores(dataset.data)
        report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
        assert report.recall >= 0.5

    def test_rare_bin_scores_higher(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(200, 1))
        data[0] = 40.0
        scores = HBOSDetector(num_bins=20).fit_scores(data)
        assert scores.argmax() == 0

    def test_scores_additive_over_features(self):
        rng = np.random.default_rng(2)
        single = rng.normal(size=(100, 1))
        double = np.hstack([single, single])
        single_scores = HBOSDetector(num_bins=10).fit_scores(single)
        double_scores = HBOSDetector(num_bins=10).fit_scores(double)
        assert np.allclose(double_scores, 2 * single_scores)

    def test_constant_feature_handled(self):
        data = np.column_stack([np.ones(50), np.random.default_rng(3).normal(size=50)])
        scores = HBOSDetector().fit_scores(data)
        assert np.all(np.isfinite(scores))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            HBOSDetector().anomaly_scores(np.zeros((3, 2)))

    def test_feature_count_mismatch_raises(self):
        detector = HBOSDetector().fit(np.random.default_rng(4).normal(size=(30, 3)))
        with pytest.raises(ValueError):
            detector.anomaly_scores(np.zeros((5, 2)))

    def test_invalid_bins_raise(self):
        with pytest.raises(ValueError):
            HBOSDetector(num_bins=1)

    def test_predict_flag_count(self):
        dataset = planted_dataset()
        detector = HBOSDetector().fit(dataset.data)
        assert detector.predict(dataset.data, 9).sum() == 9
