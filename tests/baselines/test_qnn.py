"""Tests for the supervised QNN baseline."""

import numpy as np
import pytest

from repro.baselines.qnn import QNNClassifier, QNNConfig
from repro.data.datasets import make_gaussian_anomaly_dataset


def separable_dataset(seed=0):
    return make_gaussian_anomaly_dataset(
        name="qnn_toy", num_samples=120, num_anomalies=20, num_features=6,
        num_clusters=1, separation=6.0, anomaly_spread=1.0, seed=seed,
    )


class TestConfig:
    def test_parameter_count(self):
        assert QNNConfig(num_qubits=3, num_layers=2).num_parameters == 12

    @pytest.mark.parametrize("overrides", [
        {"num_qubits": 0},
        {"num_layers": 0},
        {"epochs": 0},
        {"learning_rate": 0.0},
        {"threshold": 1.5},
    ])
    def test_invalid_config_raises(self, overrides):
        with pytest.raises(ValueError):
            QNNConfig(**overrides)


class TestTraining:
    def test_untrained_queries_raise(self):
        classifier = QNNClassifier(epochs=1)
        with pytest.raises(RuntimeError):
            classifier.predict(np.zeros((2, 3)))

    def test_training_reduces_loss(self):
        dataset = separable_dataset()
        classifier = QNNClassifier(epochs=25, seed=1)
        classifier.fit(dataset.data, dataset.labels)
        history = classifier.training_history_
        assert history[-1] <= history[0]

    def test_learns_separable_problem(self):
        dataset = separable_dataset()
        classifier = QNNClassifier(epochs=40, seed=1, class_weighting=True)
        classifier.fit(dataset.data, dataset.labels)
        predictions = classifier.predict(dataset.data)
        accuracy = (predictions == dataset.labels).mean()
        assert accuracy > 0.75

    def test_probabilities_in_unit_interval(self):
        dataset = separable_dataset()
        classifier = QNNClassifier(epochs=5, seed=2)
        classifier.fit(dataset.data, dataset.labels)
        probabilities = classifier.decision_function(dataset.data)
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0)

    def test_selects_highest_variance_features(self):
        rng = np.random.default_rng(0)
        data = np.column_stack([
            rng.normal(scale=0.01, size=50),
            rng.normal(scale=5.0, size=50),
            rng.normal(scale=3.0, size=50),
            rng.normal(scale=4.0, size=50),
        ])
        labels = rng.integers(0, 2, size=50)
        classifier = QNNClassifier(epochs=1, seed=0)
        classifier.fit(data, labels)
        assert 0 not in classifier.selected_features_.tolist()

    def test_unweighted_training_is_conservative_on_imbalanced_data(self):
        dataset = make_gaussian_anomaly_dataset(
            name="imbalanced", num_samples=200, num_anomalies=6, num_features=6,
            num_clusters=1, separation=2.0, anomaly_spread=1.0, seed=3,
        )
        classifier = QNNClassifier(epochs=25, seed=1)
        classifier.fit(dataset.data, dataset.labels)
        flagged = classifier.predict(dataset.data).sum()
        # The baseline flags far fewer samples than a balanced detector would.
        assert flagged <= dataset.num_anomalies * 2

    def test_reproducible_with_seed(self):
        dataset = separable_dataset()
        first = QNNClassifier(epochs=5, seed=9).fit(dataset.data, dataset.labels)
        second = QNNClassifier(epochs=5, seed=9).fit(dataset.data, dataset.labels)
        assert np.allclose(first.parameters_, second.parameters_)

    def test_input_validation(self):
        classifier = QNNClassifier(epochs=1)
        with pytest.raises(ValueError):
            classifier.fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            classifier.fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            classifier.fit(np.zeros((5, 2)), np.array([0, 1, 2, 0, 1]))

    def test_score_report(self):
        dataset = separable_dataset()
        classifier = QNNClassifier(epochs=3, seed=2)
        classifier.fit(dataset.data, dataset.labels)
        report = classifier.score_report()
        assert report["epochs"] == 3
        assert report["num_parameters"] == 12


class TestGradients:
    def test_parameter_shift_matches_finite_differences(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(12, 4))
        labels = rng.integers(0, 2, size=12).astype(float)
        classifier = QNNClassifier(epochs=1, seed=4)
        classifier.selected_features_ = np.array([0, 1, 2])
        classifier.feature_min_ = data[:, :3].min(axis=0)
        classifier.feature_max_ = data[:, :3].max(axis=0)
        encoded = classifier._encoded_states(classifier._encode_angles(data))
        weights = np.full(12, 1.0 / 12)
        parameters = rng.uniform(0, 2 * np.pi, size=classifier.config.num_parameters)
        analytic = classifier._parameter_shift_gradient(encoded, labels, weights,
                                                        parameters)
        numeric = np.zeros_like(parameters)
        epsilon = 1e-5
        for index in range(parameters.shape[0]):
            up = parameters.copy()
            up[index] += epsilon
            down = parameters.copy()
            down[index] -= epsilon
            numeric[index] = (
                classifier._loss(encoded, labels, weights, up)
                - classifier._loss(encoded, labels, weights, down)
            ) / (2 * epsilon)
        assert np.allclose(analytic, numeric, atol=1e-5)
