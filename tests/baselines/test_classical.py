"""Tests for the classical baselines (Isolation Forest, k-means, PCA, autoencoder)."""

import numpy as np
import pytest

from repro.baselines.autoencoder import AutoencoderDetector
from repro.baselines.clustering import KMeansDetector
from repro.baselines.isolation_forest import IsolationForestDetector
from repro.baselines.pca import PCAReconstructionDetector
from repro.data.datasets import make_gaussian_anomaly_dataset
from repro.metrics.classification import evaluate_top_k


def planted_dataset(seed=0):
    return make_gaussian_anomaly_dataset(
        name="classical_toy", num_samples=150, num_anomalies=10, num_features=8,
        num_clusters=1, separation=6.0, anomaly_spread=1.5, seed=seed,
    )


class TestIsolationForest:
    def test_scores_in_unit_interval(self):
        dataset = planted_dataset()
        scores = IsolationForestDetector(num_trees=30, seed=1).fit_scores(dataset.data)
        assert np.all(scores > 0.0)
        assert np.all(scores < 1.0)

    def test_detects_planted_anomalies(self):
        dataset = planted_dataset()
        scores = IsolationForestDetector(num_trees=60, seed=1).fit_scores(dataset.data)
        report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
        assert report.recall >= 0.6

    def test_predict_flag_count(self):
        dataset = planted_dataset()
        detector = IsolationForestDetector(num_trees=20, seed=2).fit(dataset.data)
        assert detector.predict(dataset.data, 7).sum() == 7

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            IsolationForestDetector().anomaly_scores(np.zeros((3, 2)))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            IsolationForestDetector(num_trees=0)
        with pytest.raises(ValueError):
            IsolationForestDetector(subsample_size=1)

    def test_reproducible_with_seed(self):
        dataset = planted_dataset()
        first = IsolationForestDetector(num_trees=15, seed=5).fit_scores(dataset.data)
        second = IsolationForestDetector(num_trees=15, seed=5).fit_scores(dataset.data)
        assert np.allclose(first, second)


class TestKMeans:
    def test_detects_planted_anomalies(self):
        dataset = planted_dataset()
        scores = KMeansDetector(num_clusters=3, seed=1).fit_scores(dataset.data)
        report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
        assert report.recall >= 0.6

    def test_centroid_count(self):
        dataset = planted_dataset()
        detector = KMeansDetector(num_clusters=4, seed=0).fit(dataset.data)
        assert detector.centroids_.shape == (4, dataset.num_features)

    def test_converges_before_iteration_cap(self):
        dataset = planted_dataset()
        detector = KMeansDetector(num_clusters=2, max_iterations=200, seed=0)
        detector.fit(dataset.data)
        assert detector.iterations_run_ < 200

    def test_more_samples_than_clusters_required(self):
        with pytest.raises(ValueError):
            KMeansDetector(num_clusters=10).fit(np.zeros((5, 2)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KMeansDetector().anomaly_scores(np.zeros((3, 2)))

    def test_predict_flag_count(self):
        dataset = planted_dataset()
        detector = KMeansDetector(num_clusters=3, seed=3).fit(dataset.data)
        assert detector.predict(dataset.data, 10).sum() == 10


class TestPCA:
    def test_detects_planted_anomalies(self):
        dataset = planted_dataset()
        scores = PCAReconstructionDetector(num_components=3).fit_scores(dataset.data)
        report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
        assert report.recall >= 0.5

    def test_perfect_reconstruction_with_full_rank(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(40, 4))
        scores = PCAReconstructionDetector(num_components=4).fit_scores(data)
        assert np.allclose(scores, 0.0, atol=1e-18)

    def test_explained_variance_ratio_sums_below_one(self):
        dataset = planted_dataset()
        detector = PCAReconstructionDetector(num_components=2).fit(dataset.data)
        assert detector.explained_variance_ratio_.sum() <= 1.0 + 1e-9

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCAReconstructionDetector().anomaly_scores(np.zeros((3, 2)))

    def test_invalid_components_raise(self):
        with pytest.raises(ValueError):
            PCAReconstructionDetector(num_components=0)


class TestClassicalAutoencoder:
    def test_training_reduces_loss(self):
        dataset = planted_dataset()
        detector = AutoencoderDetector(epochs=60, seed=1)
        detector.fit(dataset.data)
        assert detector.loss_history_[-1] < detector.loss_history_[0]

    def test_detects_planted_anomalies(self):
        dataset = planted_dataset()
        detector = AutoencoderDetector(epochs=150, bottleneck=2, hidden=12, seed=1)
        scores = detector.fit_scores(dataset.data)
        report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
        assert report.recall >= 0.4

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            AutoencoderDetector().anomaly_scores(np.zeros((3, 2)))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            AutoencoderDetector(bottleneck=0)
        with pytest.raises(ValueError):
            AutoencoderDetector(learning_rate=0.0)

    def test_predict_flag_count(self):
        dataset = planted_dataset()
        detector = AutoencoderDetector(epochs=30, seed=2).fit(dataset.data)
        assert detector.predict(dataset.data, 5).sum() == 5
