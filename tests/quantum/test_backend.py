"""Tests for the batched simulation-backend layer (repro.quantum.backend)."""

import numpy as np
import pytest

from repro.quantum.backend import (
    NumpyBackend,
    SimulationBackend,
    available_simulation_backends,
    get_simulation_backend,
    register_simulation_backend,
)
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.statevector import Statevector, apply_unitary_to_tensor


def random_states(rng, batch, num_qubits):
    states = (rng.normal(size=(batch, 2 ** num_qubits))
              + 1j * rng.normal(size=(batch, 2 ** num_qubits)))
    return states / np.linalg.norm(states, axis=1, keepdims=True)


def random_unitary(rng, num_qubits):
    dim = 2 ** num_qubits
    matrix = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    unitary, _ = np.linalg.qr(matrix)
    return unitary


class TestRegistry:
    def test_numpy_backend_is_registered(self):
        assert "numpy" in available_simulation_backends()

    def test_get_by_name_and_default(self):
        assert isinstance(get_simulation_backend("numpy"), NumpyBackend)
        assert isinstance(get_simulation_backend(None), NumpyBackend)
        assert isinstance(get_simulation_backend("NumPy"), NumpyBackend)

    def test_instance_passthrough(self):
        backend = NumpyBackend()
        assert get_simulation_backend(backend) is backend

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            get_simulation_backend("cuda")

    def test_custom_registration(self):
        class EchoBackend(NumpyBackend):
            name = "echo-test"

        register_simulation_backend("echo-test", EchoBackend)
        try:
            assert isinstance(get_simulation_backend("echo-test"), EchoBackend)
        finally:
            # Keep the registry clean for other tests.
            from repro.quantum import backend as backend_module

            backend_module._REGISTRY.pop("echo-test")

    def test_abstract_base_is_not_instantiable(self):
        with pytest.raises(TypeError):
            SimulationBackend()


class TestStatevectorPrimitives:
    backend = NumpyBackend()

    def test_zero_states(self):
        states = self.backend.zero_states(4, 3)
        assert states.shape == (4, 8)
        assert np.allclose(states[:, 0], 1.0)
        assert np.allclose(states[:, 1:], 0.0)
        with pytest.raises(ValueError):
            self.backend.zero_states(0, 3)

    def test_apply_gate_batch_property_vs_per_sample(self):
        """Property test: the batched kernel agrees with apply_unitary_to_tensor
        applied row by row, for random gates, targets, and register sizes."""
        rng = np.random.default_rng(42)
        for _ in range(25):
            num_qubits = int(rng.integers(2, 5))
            k = int(rng.integers(1, min(num_qubits, 3) + 1))
            qubits = list(rng.choice(num_qubits, size=k, replace=False))
            gate = random_unitary(rng, k)
            states = random_states(rng, 6, num_qubits)
            batched = self.backend.apply_gate_batch(states, gate, qubits)
            assert batched.shape == states.shape
            for row in range(states.shape[0]):
                tensor = states[row].reshape((2,) * num_qubits)
                expected = apply_unitary_to_tensor(tensor, gate, qubits,
                                                   num_qubits).reshape(-1)
                assert np.allclose(batched[row], expected, atol=1e-10)

    def test_apply_gate_batch_validates_shapes(self):
        states = self.backend.zero_states(2, 2)
        with pytest.raises(ValueError):
            self.backend.apply_gate_batch(states, np.eye(4), [0])
        with pytest.raises(ValueError):
            self.backend.apply_gate_batch(np.ones(4), np.eye(2), [0])
        with pytest.raises(ValueError):
            self.backend.apply_gate_batch(np.ones((2, 3)), np.eye(2), [0])

    def test_apply_unitary_batch_matches_per_row(self):
        rng = np.random.default_rng(1)
        states = random_states(rng, 5, 3)
        unitary = random_unitary(rng, 3)
        batched = self.backend.apply_unitary_batch(states, unitary)
        for row in range(5):
            assert np.allclose(batched[row], unitary @ states[row], atol=1e-10)

    def test_probability_one_batch_matches_statevector(self):
        rng = np.random.default_rng(2)
        states = random_states(rng, 5, 3)
        for qubit in range(3):
            probs = self.backend.probability_one_batch(states, qubit)
            for row in range(5):
                expected = Statevector(states[row]).probability_of_outcome(qubit, 1)
                assert probs[row] == pytest.approx(expected, abs=1e-12)

    def test_collapse_qubit_batch(self):
        rng = np.random.default_rng(3)
        states = random_states(rng, 4, 3)
        outcomes = np.array([0, 1, 0, 1])
        collapsed = self.backend.collapse_qubit_batch(states, 1, outcomes)
        assert np.allclose(np.linalg.norm(collapsed, axis=1), 1.0)
        post = self.backend.probability_one_batch(collapsed, 1)
        assert np.allclose(post, outcomes, atol=1e-12)

    def test_collapse_with_reset_moves_to_zero(self):
        rng = np.random.default_rng(4)
        states = random_states(rng, 4, 3)
        outcomes = np.array([1, 1, 0, 1])
        reset = self.backend.collapse_qubit_batch(states, 0, outcomes,
                                                  reset_to_zero=True)
        assert np.allclose(self.backend.probability_one_batch(reset, 0), 0.0,
                           atol=1e-12)
        assert np.allclose(np.linalg.norm(reset, axis=1), 1.0)

    def test_collapse_impossible_outcome_raises(self):
        states = self.backend.zero_states(2, 2)  # qubit 0 is definitely 0
        with pytest.raises(RuntimeError):
            self.backend.collapse_qubit_batch(states, 0, np.array([1, 1]))

    def test_overlap_batch(self):
        rng = np.random.default_rng(5)
        states_a = random_states(rng, 6, 3)
        states_b = random_states(rng, 6, 3)
        overlaps = self.backend.overlap_batch(states_a, states_b)
        for row in range(6):
            expected = Statevector(states_a[row]).fidelity(
                Statevector(states_b[row]))
            assert overlaps[row] == pytest.approx(expected, abs=1e-12)
        assert np.allclose(self.backend.overlap_batch(states_a, states_a), 1.0)


class TestDensityPrimitives:
    backend = NumpyBackend()

    def test_density_from_states(self):
        rng = np.random.default_rng(6)
        states = random_states(rng, 3, 2)
        rhos = self.backend.density_from_states(states)
        for row in range(3):
            assert np.allclose(rhos[row], np.outer(states[row],
                                                   states[row].conj()))

    def test_apply_gate_density_batch_matches_density_matrix(self):
        rng = np.random.default_rng(7)
        states = random_states(rng, 4, 3)
        rhos = self.backend.density_from_states(states)
        gate = random_unitary(rng, 2)
        qubits = [2, 0]
        batched = self.backend.apply_gate_density_batch(rhos, gate, qubits)
        for row in range(4):
            expected = DensityMatrix(rhos[row]).evolve_gate(gate, qubits)
            assert np.allclose(batched[row], expected.data, atol=1e-10)

    def test_evolve_density_batch(self):
        rng = np.random.default_rng(8)
        states = random_states(rng, 3, 2)
        rhos = self.backend.density_from_states(states)
        unitary = random_unitary(rng, 2)
        evolved = self.backend.evolve_density_batch(rhos, unitary)
        for row in range(3):
            expected = unitary @ rhos[row] @ unitary.conj().T
            assert np.allclose(evolved[row], expected, atol=1e-10)

    def test_reset_low_qubits_matches_sequential_reset(self):
        rng = np.random.default_rng(9)
        states = random_states(rng, 3, 3)
        rhos = self.backend.density_from_states(states)
        for num_reset in (0, 1, 2, 3):
            batched = self.backend.reset_low_qubits_density_batch(rhos, num_reset)
            for row in range(3):
                expected = DensityMatrix(rhos[row])
                for qubit in range(num_reset):
                    expected = expected.reset_qubit(qubit)
                assert np.allclose(batched[row], expected.data, atol=1e-10)

    def test_expectation_batch(self):
        rng = np.random.default_rng(10)
        states = random_states(rng, 4, 2)
        probes = random_states(rng, 4, 2)
        rhos = self.backend.density_from_states(states)
        values = self.backend.expectation_batch(rhos, probes)
        for row in range(4):
            expected = np.real(probes[row].conj() @ rhos[row] @ probes[row])
            assert values[row] == pytest.approx(expected, abs=1e-12)


class TestUnitaryFromInstructions:
    def test_matches_circuit_to_unitary(self):
        from repro.quantum.circuit import QuantumCircuit

        backend = NumpyBackend()
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rz(0.37, 2)
        circuit.cswap(0, 1, 2)
        instructions = [(instr.matrix_or_standard(), instr.qubits)
                        for instr in circuit.instructions]
        unitary = backend.unitary_from_instructions(instructions, 3)
        assert np.allclose(unitary, circuit.to_unitary(), atol=1e-10)


class TestBatchedChannelPrimitives:
    """The density primitives added for the batched circuit walker."""

    def setup_method(self):
        self.rng = np.random.default_rng(7)
        self.backend = NumpyBackend()

    def random_densities(self, batch, num_qubits):
        states = random_states(self.rng, batch, num_qubits)
        return self.backend.density_from_states(states)

    def test_per_sample_gates_match_per_sample_conjugation(self):
        rhos = self.random_densities(5, 3)
        gates = np.stack([random_unitary(self.rng, 1) for _ in range(5)])
        batched = self.backend.apply_gates_density_batch(rhos, gates, [1])
        for index in range(5):
            reference = DensityMatrix(rhos[index]).evolve_gate(gates[index], [1])
            assert np.allclose(batched[index], reference.data, atol=1e-12)

    def test_per_sample_two_qubit_gates(self):
        rhos = self.random_densities(4, 3)
        gates = np.stack([random_unitary(self.rng, 2) for _ in range(4)])
        batched = self.backend.apply_gates_density_batch(rhos, gates, [0, 2])
        for index in range(4):
            reference = DensityMatrix(rhos[index]).evolve_gate(gates[index], [0, 2])
            assert np.allclose(batched[index], reference.data, atol=1e-12)

    def test_per_sample_gates_shape_mismatch_raises(self):
        rhos = self.random_densities(3, 2)
        gates = np.stack([random_unitary(self.rng, 1) for _ in range(2)])
        with pytest.raises(ValueError, match="per-sample gates"):
            self.backend.apply_gates_density_batch(rhos, gates, [0])

    def test_shared_superoperator_matches_density_matrix(self):
        from repro.quantum.noise import QuantumError, depolarizing_kraus

        error = QuantumError.from_kraus(depolarizing_kraus(0.1, 2))
        rhos = self.random_densities(4, 3)
        batched = self.backend.apply_superoperator_density_batch(
            rhos, error.superoperator, [0, 2])
        for index in range(4):
            reference = DensityMatrix(rhos[index]).apply_superoperator(
                error.superoperator, [0, 2])
            assert np.allclose(batched[index], reference.data, atol=1e-12)

    def test_per_sample_superoperators_match_shared(self):
        from repro.quantum.noise import QuantumError, depolarizing_kraus

        error = QuantumError.from_kraus(depolarizing_kraus(0.2, 1))
        rhos = self.random_densities(3, 3)
        shared = self.backend.apply_superoperator_density_batch(
            rhos, error.superoperator, [1])
        tiled = np.broadcast_to(
            error.superoperator, (3,) + error.superoperator.shape)
        per_sample = self.backend.apply_superoperators_density_batch(
            rhos, np.array(tiled), [1])
        assert np.allclose(shared, per_sample, atol=1e-12)

    def test_fused_gate_channel_superoperator(self):
        """kron(U, conj(U)) through the superoperator kernel == conjugation."""
        rhos = self.random_densities(4, 3)
        unitary = random_unitary(self.rng, 1)
        fused = self.backend.apply_superoperator_density_batch(
            rhos, np.kron(unitary, unitary.conj()), [2])
        direct = self.backend.apply_gate_density_batch(rhos, unitary, [2])
        assert np.allclose(fused, direct, atol=1e-12)

    def test_reset_qubit_matches_density_matrix(self):
        rhos = self.random_densities(5, 3)
        for qubit in range(3):
            batched = self.backend.reset_qubit_density_batch(rhos, qubit)
            for index in range(5):
                reference = DensityMatrix(rhos[index]).reset_qubit(qubit)
                assert np.allclose(batched[index], reference.data, atol=1e-12)

    def test_default_reset_implementation_matches_override(self):
        rhos = self.random_densities(3, 2)
        default = SimulationBackend.reset_qubit_density_batch(
            self.backend, rhos, 1)
        assert np.allclose(default,
                           self.backend.reset_qubit_density_batch(rhos, 1),
                           atol=1e-12)

    def test_probability_one_density_matches_density_matrix(self):
        rhos = self.random_densities(6, 3)
        for qubit in range(3):
            batched = self.backend.probability_one_density_batch(rhos, qubit)
            for index in range(6):
                reference = DensityMatrix(rhos[index]).probability_of_outcome(
                    qubit, 1)
                assert batched[index] == pytest.approx(reference, abs=1e-12)

    def test_compression_overlap_levels_matches_analytic_reduction(self):
        states = random_states(self.rng, 6, 3)
        levels = [0, 1, 2, 3]
        overlaps = self.backend.compression_overlap_levels(states, levels)
        assert overlaps.shape == (4, 6)
        assert np.allclose(overlaps[0], 1.0, atol=1e-12)
        for position, level in enumerate(levels[1:], start=1):
            reset_dim = 2 ** level
            tensor = states.reshape(-1, 8 // reset_dim, reset_dim)
            inner = np.einsum("nk,nks->ns", tensor[:, :, 0].conj(), tensor)
            assert np.allclose(overlaps[position],
                               np.sum(np.abs(inner) ** 2, axis=1), atol=1e-12)

    def test_compression_overlap_level_out_of_range_raises(self):
        states = random_states(self.rng, 2, 2)
        with pytest.raises(ValueError, match="compression level"):
            self.backend.compression_overlap_levels(states, [5])


class TestFloat32Backend:
    """Cross-validation of the single-precision backend variant."""

    def setup_method(self):
        self.rng = np.random.default_rng(11)
        self.reference = NumpyBackend()
        self.float32 = get_simulation_backend("numpy-float32")

    def test_registered_and_selectable(self):
        assert "numpy-float32" in available_simulation_backends()
        assert self.float32.dtype == np.dtype(np.complex64)

    def test_states_are_single_precision_results_float64(self):
        states = self.float32.as_states(random_states(self.rng, 4, 3))
        assert states.dtype == np.complex64
        probabilities = self.float32.probability_one_batch(states, 0)
        assert probabilities.dtype == np.float64

    def test_statevector_kernels_cross_validate(self):
        states = random_states(self.rng, 8, 3)
        unitary = random_unitary(self.rng, 3)
        exact = self.reference.apply_unitary_batch(
            self.reference.as_states(states), unitary)
        single = self.float32.apply_unitary_batch(
            self.float32.as_states(states), unitary)
        assert np.allclose(single, exact, atol=1e-5)
        assert np.allclose(
            self.float32.overlap_batch(single, single),
            self.reference.overlap_batch(exact, exact), atol=1e-5)

    def test_density_kernels_cross_validate(self):
        states = random_states(self.rng, 5, 3)
        rhos64 = self.reference.density_from_states(
            self.reference.as_states(states))
        rhos32 = self.float32.density_from_states(
            self.float32.as_states(states))
        reset64 = self.reference.reset_low_qubits_density_batch(rhos64, 1)
        reset32 = self.float32.reset_low_qubits_density_batch(rhos32, 1)
        assert np.allclose(reset32, reset64, atol=1e-5)
        expect64 = self.reference.expectation_batch(
            reset64, self.reference.as_states(states))
        expect32 = self.float32.expectation_batch(
            reset32, self.float32.as_states(states))
        assert expect32.dtype == np.float64
        assert np.allclose(expect32, expect64, atol=1e-5)

    def test_engines_cross_validate_against_reference(self):
        from repro.algorithms.ansatz import RandomAutoencoderAnsatz
        from repro.core.ensemble import batch_amplitudes
        from repro.core.execution import AnalyticEngine, DensityMatrixEngine

        ansatz = RandomAutoencoderAnsatz(3, seed=17)
        values = self.rng.uniform(0.0, 1.0 / np.sqrt(7), size=(12, 7))
        batch = batch_amplitudes(values, 3)
        for engine_cls in (AnalyticEngine, DensityMatrixEngine):
            exact = engine_cls(
                shots=None, simulation_backend="numpy"
            ).p1_levels_batch(batch, ansatz, [1, 2])
            single = engine_cls(
                shots=None, simulation_backend="numpy-float32"
            ).p1_levels_batch(batch, ansatz, [1, 2])
            assert single.dtype == np.float64
            assert np.allclose(single, exact, atol=1e-4)

    def test_detector_runs_on_float32_backend(self):
        from repro.core.detector import QuorumDetector

        data = self.rng.uniform(0.0, 1.0, size=(30, 6))
        exact = QuorumDetector(ensemble_groups=2, shots=None, seed=5,
                               simulation_backend="numpy").fit(data)
        single = QuorumDetector(ensemble_groups=2, shots=None, seed=5,
                                simulation_backend="numpy-float32").fit(data)
        assert np.allclose(single.anomaly_scores(), exact.anomaly_scores(),
                           atol=1e-3)
