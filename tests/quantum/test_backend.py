"""Tests for the batched simulation-backend layer (repro.quantum.backend)."""

import numpy as np
import pytest

from repro.quantum.backend import (
    NumpyBackend,
    SimulationBackend,
    available_simulation_backends,
    get_simulation_backend,
    register_simulation_backend,
)
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.statevector import Statevector, apply_unitary_to_tensor


def random_states(rng, batch, num_qubits):
    states = (rng.normal(size=(batch, 2 ** num_qubits))
              + 1j * rng.normal(size=(batch, 2 ** num_qubits)))
    return states / np.linalg.norm(states, axis=1, keepdims=True)


def random_unitary(rng, num_qubits):
    dim = 2 ** num_qubits
    matrix = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    unitary, _ = np.linalg.qr(matrix)
    return unitary


class TestRegistry:
    def test_numpy_backend_is_registered(self):
        assert "numpy" in available_simulation_backends()

    def test_get_by_name_and_default(self):
        assert isinstance(get_simulation_backend("numpy"), NumpyBackend)
        assert isinstance(get_simulation_backend(None), NumpyBackend)
        assert isinstance(get_simulation_backend("NumPy"), NumpyBackend)

    def test_instance_passthrough(self):
        backend = NumpyBackend()
        assert get_simulation_backend(backend) is backend

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            get_simulation_backend("cuda")

    def test_custom_registration(self):
        class EchoBackend(NumpyBackend):
            name = "echo-test"

        register_simulation_backend("echo-test", EchoBackend)
        try:
            assert isinstance(get_simulation_backend("echo-test"), EchoBackend)
        finally:
            # Keep the registry clean for other tests.
            from repro.quantum import backend as backend_module

            backend_module._REGISTRY.pop("echo-test")

    def test_abstract_base_is_not_instantiable(self):
        with pytest.raises(TypeError):
            SimulationBackend()


class TestStatevectorPrimitives:
    backend = NumpyBackend()

    def test_zero_states(self):
        states = self.backend.zero_states(4, 3)
        assert states.shape == (4, 8)
        assert np.allclose(states[:, 0], 1.0)
        assert np.allclose(states[:, 1:], 0.0)
        with pytest.raises(ValueError):
            self.backend.zero_states(0, 3)

    def test_apply_gate_batch_property_vs_per_sample(self):
        """Property test: the batched kernel agrees with apply_unitary_to_tensor
        applied row by row, for random gates, targets, and register sizes."""
        rng = np.random.default_rng(42)
        for _ in range(25):
            num_qubits = int(rng.integers(2, 5))
            k = int(rng.integers(1, min(num_qubits, 3) + 1))
            qubits = list(rng.choice(num_qubits, size=k, replace=False))
            gate = random_unitary(rng, k)
            states = random_states(rng, 6, num_qubits)
            batched = self.backend.apply_gate_batch(states, gate, qubits)
            assert batched.shape == states.shape
            for row in range(states.shape[0]):
                tensor = states[row].reshape((2,) * num_qubits)
                expected = apply_unitary_to_tensor(tensor, gate, qubits,
                                                   num_qubits).reshape(-1)
                assert np.allclose(batched[row], expected, atol=1e-10)

    def test_apply_gate_batch_validates_shapes(self):
        states = self.backend.zero_states(2, 2)
        with pytest.raises(ValueError):
            self.backend.apply_gate_batch(states, np.eye(4), [0])
        with pytest.raises(ValueError):
            self.backend.apply_gate_batch(np.ones(4), np.eye(2), [0])
        with pytest.raises(ValueError):
            self.backend.apply_gate_batch(np.ones((2, 3)), np.eye(2), [0])

    def test_apply_unitary_batch_matches_per_row(self):
        rng = np.random.default_rng(1)
        states = random_states(rng, 5, 3)
        unitary = random_unitary(rng, 3)
        batched = self.backend.apply_unitary_batch(states, unitary)
        for row in range(5):
            assert np.allclose(batched[row], unitary @ states[row], atol=1e-10)

    def test_probability_one_batch_matches_statevector(self):
        rng = np.random.default_rng(2)
        states = random_states(rng, 5, 3)
        for qubit in range(3):
            probs = self.backend.probability_one_batch(states, qubit)
            for row in range(5):
                expected = Statevector(states[row]).probability_of_outcome(qubit, 1)
                assert probs[row] == pytest.approx(expected, abs=1e-12)

    def test_collapse_qubit_batch(self):
        rng = np.random.default_rng(3)
        states = random_states(rng, 4, 3)
        outcomes = np.array([0, 1, 0, 1])
        collapsed = self.backend.collapse_qubit_batch(states, 1, outcomes)
        assert np.allclose(np.linalg.norm(collapsed, axis=1), 1.0)
        post = self.backend.probability_one_batch(collapsed, 1)
        assert np.allclose(post, outcomes, atol=1e-12)

    def test_collapse_with_reset_moves_to_zero(self):
        rng = np.random.default_rng(4)
        states = random_states(rng, 4, 3)
        outcomes = np.array([1, 1, 0, 1])
        reset = self.backend.collapse_qubit_batch(states, 0, outcomes,
                                                  reset_to_zero=True)
        assert np.allclose(self.backend.probability_one_batch(reset, 0), 0.0,
                           atol=1e-12)
        assert np.allclose(np.linalg.norm(reset, axis=1), 1.0)

    def test_collapse_impossible_outcome_raises(self):
        states = self.backend.zero_states(2, 2)  # qubit 0 is definitely 0
        with pytest.raises(RuntimeError):
            self.backend.collapse_qubit_batch(states, 0, np.array([1, 1]))

    def test_overlap_batch(self):
        rng = np.random.default_rng(5)
        states_a = random_states(rng, 6, 3)
        states_b = random_states(rng, 6, 3)
        overlaps = self.backend.overlap_batch(states_a, states_b)
        for row in range(6):
            expected = Statevector(states_a[row]).fidelity(
                Statevector(states_b[row]))
            assert overlaps[row] == pytest.approx(expected, abs=1e-12)
        assert np.allclose(self.backend.overlap_batch(states_a, states_a), 1.0)


class TestDensityPrimitives:
    backend = NumpyBackend()

    def test_density_from_states(self):
        rng = np.random.default_rng(6)
        states = random_states(rng, 3, 2)
        rhos = self.backend.density_from_states(states)
        for row in range(3):
            assert np.allclose(rhos[row], np.outer(states[row],
                                                   states[row].conj()))

    def test_apply_gate_density_batch_matches_density_matrix(self):
        rng = np.random.default_rng(7)
        states = random_states(rng, 4, 3)
        rhos = self.backend.density_from_states(states)
        gate = random_unitary(rng, 2)
        qubits = [2, 0]
        batched = self.backend.apply_gate_density_batch(rhos, gate, qubits)
        for row in range(4):
            expected = DensityMatrix(rhos[row]).evolve_gate(gate, qubits)
            assert np.allclose(batched[row], expected.data, atol=1e-10)

    def test_evolve_density_batch(self):
        rng = np.random.default_rng(8)
        states = random_states(rng, 3, 2)
        rhos = self.backend.density_from_states(states)
        unitary = random_unitary(rng, 2)
        evolved = self.backend.evolve_density_batch(rhos, unitary)
        for row in range(3):
            expected = unitary @ rhos[row] @ unitary.conj().T
            assert np.allclose(evolved[row], expected, atol=1e-10)

    def test_reset_low_qubits_matches_sequential_reset(self):
        rng = np.random.default_rng(9)
        states = random_states(rng, 3, 3)
        rhos = self.backend.density_from_states(states)
        for num_reset in (0, 1, 2, 3):
            batched = self.backend.reset_low_qubits_density_batch(rhos, num_reset)
            for row in range(3):
                expected = DensityMatrix(rhos[row])
                for qubit in range(num_reset):
                    expected = expected.reset_qubit(qubit)
                assert np.allclose(batched[row], expected.data, atol=1e-10)

    def test_expectation_batch(self):
        rng = np.random.default_rng(10)
        states = random_states(rng, 4, 2)
        probes = random_states(rng, 4, 2)
        rhos = self.backend.density_from_states(states)
        values = self.backend.expectation_batch(rhos, probes)
        for row in range(4):
            expected = np.real(probes[row].conj() @ rhos[row] @ probes[row])
            assert values[row] == pytest.approx(expected, abs=1e-12)


class TestUnitaryFromInstructions:
    def test_matches_circuit_to_unitary(self):
        from repro.quantum.circuit import QuantumCircuit

        backend = NumpyBackend()
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rz(0.37, 2)
        circuit.cswap(0, 1, 2)
        instructions = [(instr.matrix_or_standard(), instr.qubits)
                        for instr in circuit.instructions]
        unitary = backend.unitary_from_instructions(instructions, 3)
        assert np.allclose(unitary, circuit.to_unitary(), atol=1e-10)
