"""Compiled-vs-interpreted parity suite for :mod:`repro.quantum.compiler`.

The compiler may reassociate operator products (fusing gate runs into dense
blocks, pulling the readout projector back through the channel adjoint), but it
must never change *what* is computed: every compiled artifact is checked
against the gate-by-gate interpreted reference to ``<= 1e-10`` on the
``complex128`` backend (and to single precision on ``numpy-float32``), across
noise models, random ansatz/level combinations, and Hypothesis-driven random
circuits.  The LRU cache is pinned by compile counters, and the shot-noise RNG
stream of the compiled engines is pinned bitwise.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.algorithms.autoencoder import (
    QuorumCircuitFactory,
    build_autoencoder_prefix,
    build_autoencoder_suffix,
)
from repro.core.ensemble import batch_amplitudes
from repro.core.execution import AnalyticEngine, DensityMatrixEngine
from repro.quantum.backend import get_simulation_backend
from repro.quantum.backends import FakeBrisbane
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.circuit_library import random_circuit
from repro.quantum.compiler import (
    CircuitCompiler,
    circuit_signature,
    default_compiler,
    noise_model_fingerprint,
)
from repro.quantum.noise import NoiseModel, QuantumError, depolarizing_kraus
from repro.quantum.simulator import (
    BatchedDensityMatrixSimulator,
    DensityMatrixSimulator,
)
from repro.quantum.transpiler import unitaries_equivalent

seeds = st.integers(min_value=0, max_value=10_000)

#: (backend name, tolerance of compiled-vs-interpreted agreement).
BACKENDS = [("numpy", 1e-10), ("numpy-float32", 5e-5)]


def make_batch(num_samples=5, num_qubits=2, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.0, 1.0 / np.sqrt(2 ** num_qubits - 1),
                         size=(num_samples, 2 ** num_qubits - 1))
    return batch_amplitudes(values, num_qubits)


def depolarizing_model():
    return (
        NoiseModel()
        .add_all_single_qubit_error(QuantumError.from_kraus(
            depolarizing_kraus(0.02)))
        .add_all_two_qubit_error(QuantumError.from_kraus(
            depolarizing_kraus(0.05, 2)))
    )


NOISE_MODELS = {
    "brisbane": lambda total_qubits: FakeBrisbane(total_qubits).to_noise_model(),
    "depolarizing": lambda total_qubits: depolarizing_model(),
    "noiseless": lambda total_qubits: None,
}


class TestUnitaryCompilation:
    def test_fused_encoder_is_bitwise_the_ansatz_unitary(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=7)
        compiler = CircuitCompiler()
        fused = compiler.fused_unitary(
            ansatz.encoder_circuit(list(range(3))))
        assert np.array_equal(fused, ansatz.encoder_unitary())

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_unitary_program_matches_dense_circuit_unitary(self, seed):
        circuit = random_circuit(num_qubits=3, depth=8, seed=seed)
        compiler = CircuitCompiler()
        fused = compiler.fused_unitary(circuit)
        assert np.allclose(fused, circuit.to_unitary(), atol=1e-10)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_optimizing_compiler_is_equivalent_up_to_phase(self, seed):
        circuit = random_circuit(num_qubits=3, depth=10, seed=seed)
        plain = CircuitCompiler(optimize=False).fused_unitary(circuit)
        optimized = CircuitCompiler(optimize=True).fused_unitary(circuit)
        assert unitaries_equivalent(plain, optimized, atol=1e-8)

    def test_unitary_program_rejects_non_unitary_instructions(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.reset(0)
        with pytest.raises(ValueError, match="unitary programs"):
            CircuitCompiler().unitary_program(circuit)

    def test_compiled_operators_are_read_only(self):
        ansatz = RandomAutoencoderAnsatz(2, seed=3)
        fused = CircuitCompiler().fused_unitary(
            ansatz.encoder_circuit(list(range(2))))
        with pytest.raises(ValueError):
            fused[0, 0] = 0.0


class TestChannelCompilation:
    @pytest.mark.parametrize("noise_name", sorted(NOISE_MODELS))
    @pytest.mark.parametrize("backend_name,tolerance", BACKENDS)
    def test_compiled_suffix_matches_interpreted_replay(self, noise_name,
                                                        backend_name,
                                                        tolerance):
        ansatz = RandomAutoencoderAnsatz(2, seed=11)
        batch = make_batch(seed=1)
        noise = NOISE_MODELS[noise_name](5)
        backend = get_simulation_backend(backend_name)
        prefixes = [build_autoencoder_prefix(row, ansatz,
                                             gate_level_encoding=True)
                    for row in batch]
        interpreted = BatchedDensityMatrixSimulator(
            noise_model=noise, backend=backend, compile_programs=False)
        compiled = BatchedDensityMatrixSimulator(
            noise_model=noise, backend=backend, compiler=CircuitCompiler())
        checkpoint = interpreted.evolve_batch(prefixes)
        for level in (0, 1, 2):
            suffix = build_autoencoder_suffix(ansatz, level, measure=False)
            assert np.allclose(compiled.replay_suffix_batch(checkpoint, suffix),
                               interpreted.replay_suffix_batch(checkpoint,
                                                               suffix),
                               atol=tolerance)

    def test_narrow_suffix_compiles_to_one_superoperator(self):
        """A register within the support cap fuses the whole suffix -- gates,
        per-gate noise, and the reset channel -- into ONE 4^n x 4^n matrix."""
        ansatz = RandomAutoencoderAnsatz(2, seed=5)
        suffix = build_autoencoder_suffix(ansatz, 2, measure=False)
        factory = QuorumCircuitFactory(ansatz, compiler=CircuitCompiler())
        program = factory.compiled_suffix_channel(
            2, FakeBrisbane(5).to_noise_model())
        assert len(program) == 1
        (operator,) = program.operators
        assert operator.kind == "superoperator"
        assert operator.qubits == tuple(range(5))
        assert operator.matrix.shape == (4 ** 5, 4 ** 5)
        assert suffix.num_qubits == 5

    def test_support_cap_splits_wide_circuits(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=5)
        suffix = build_autoencoder_suffix(ansatz, 1, measure=False)
        compiler = CircuitCompiler(max_superop_qubits=3)
        program = compiler.channel_program(suffix,
                                           FakeBrisbane(7).to_noise_model())
        assert len(program) > 1
        assert all(len(op.qubits) <= 3 for op in program.operators)

    @pytest.mark.parametrize("cap", [1, 2, 3, 5])
    def test_parity_is_cap_independent(self, cap):
        ansatz = RandomAutoencoderAnsatz(2, seed=13)
        batch = make_batch(seed=3)
        noise = FakeBrisbane(5).to_noise_model()
        prefixes = [build_autoencoder_prefix(row, ansatz,
                                             gate_level_encoding=True)
                    for row in batch]
        reference = BatchedDensityMatrixSimulator(noise_model=noise,
                                                  compile_programs=False)
        checkpoint = reference.evolve_batch(prefixes)
        suffix = build_autoencoder_suffix(ansatz, 1, measure=False)
        expected = reference.replay_suffix_batch(checkpoint, suffix)
        walker = BatchedDensityMatrixSimulator(
            noise_model=noise, compiler=CircuitCompiler(max_superop_qubits=cap))
        assert np.allclose(walker.replay_suffix_batch(checkpoint, suffix),
                           expected, atol=1e-10)

    def test_noiseless_runs_fuse_to_unitary_blocks(self):
        """Channel runs without any noise or reset compile to plain unitaries
        (applied by the much cheaper conjugation kernel)."""
        circuit = QuantumCircuit(3, 1)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rx(0.3, 2)
        program = CircuitCompiler().channel_program(circuit, None)
        assert all(op.kind == "unitary" for op in program.operators)

    def test_channel_program_rejects_initialize(self):
        circuit = QuantumCircuit(2, 1)
        circuit.initialize(np.array([1.0, 0.0]), [0])
        with pytest.raises(ValueError, match="initialize"):
            CircuitCompiler().channel_program(circuit, None)

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_random_circuit_channel_parity(self, seed):
        """Hypothesis: random gate streams + noise compile to the same channel
        the per-circuit density-matrix interpreter applies."""
        circuit = random_circuit(num_qubits=3, depth=6, seed=seed)
        rng = np.random.default_rng(seed)
        if rng.random() < 0.5:
            circuit.reset(int(rng.integers(3)))
        noise = depolarizing_model() if rng.random() < 0.7 else None
        reference = DensityMatrixSimulator(noise_model=noise).evolve(circuit)
        program = CircuitCompiler(
            max_superop_qubits=int(rng.integers(1, 4))).channel_program(
            circuit, noise)
        backend = get_simulation_backend("numpy")
        initial = backend.density_from_states(backend.zero_states(1, 3))
        compiled = backend.apply_compiled_superoperator_batch(initial, program)
        assert np.allclose(compiled[0], reference.data, atol=1e-10)


class TestDualObservable:
    @pytest.mark.parametrize("noise_name", sorted(NOISE_MODELS))
    def test_observable_matches_forward_replay(self, noise_name):
        ansatz = RandomAutoencoderAnsatz(2, seed=21)
        batch = make_batch(seed=2)
        noise = NOISE_MODELS[noise_name](5)
        backend = get_simulation_backend("numpy")
        walker = BatchedDensityMatrixSimulator(noise_model=noise,
                                               compile_programs=False)
        checkpoint = walker.evolve_batch([
            build_autoencoder_prefix(row, ansatz, gate_level_encoding=True)
            for row in batch
        ])
        factory = QuorumCircuitFactory(ansatz, compiler=CircuitCompiler())
        for level in (0, 1, 2):
            suffix = build_autoencoder_suffix(ansatz, level, measure=False)
            forward = backend.probability_one_density_batch(
                walker.replay_suffix_batch(checkpoint, suffix), 4)
            observable = factory.suffix_observable(level, noise)
            dual = backend.observable_expectation_density_batch(checkpoint,
                                                                observable)
            assert np.allclose(dual, forward, atol=1e-10)

    def test_observable_is_hermitian(self):
        """The adjoint of a CPTP map preserves Hermiticity, so the compiled
        observable contracts to real expectations."""
        ansatz = RandomAutoencoderAnsatz(2, seed=23)
        observable = QuorumCircuitFactory(
            ansatz, compiler=CircuitCompiler()).suffix_observable(
            1, FakeBrisbane(5).to_noise_model())
        assert np.allclose(observable, observable.conj().T, atol=1e-12)


class TestEngineParity:
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds, level_seed=seeds)
    def test_random_ansatz_level_combinations(self, seed, level_seed):
        """Hypothesis: compiled and interpreted noisy engines agree to 1e-10
        for random ansatz draws and random level subsets."""
        rng = np.random.default_rng(level_seed)
        ansatz = RandomAutoencoderAnsatz(2, num_layers=int(rng.integers(1, 3)),
                                         seed=seed)
        levels = [int(level) for level in
                  rng.choice(3, size=int(rng.integers(1, 4)), replace=False)]
        batch = make_batch(num_samples=4, seed=seed)
        noise = FakeBrisbane(5).to_noise_model()
        kwargs = dict(shots=None, noise_model=noise, gate_level_encoding=True)
        compiled = DensityMatrixEngine(compiler=CircuitCompiler(), **kwargs)
        interpreted = DensityMatrixEngine(compile_circuits=False, **kwargs)
        assert np.allclose(compiled.p1_levels_batch(batch, ansatz, levels),
                           interpreted.p1_levels_batch(batch, ansatz, levels),
                           atol=1e-10)

    @pytest.mark.parametrize("backend_name,tolerance", BACKENDS)
    def test_noisy_engine_parity_per_backend(self, backend_name, tolerance):
        ansatz = RandomAutoencoderAnsatz(2, seed=31)
        batch = make_batch(seed=4)
        noise = FakeBrisbane(5).to_noise_model()
        kwargs = dict(shots=None, noise_model=noise, gate_level_encoding=True,
                      simulation_backend=backend_name)
        compiled = DensityMatrixEngine(compiler=CircuitCompiler(), **kwargs)
        interpreted = DensityMatrixEngine(compile_circuits=False, **kwargs)
        levels = [0, 1, 2]
        assert np.allclose(compiled.p1_levels_batch(batch, ansatz, levels),
                           interpreted.p1_levels_batch(batch, ansatz, levels),
                           atol=tolerance)

    def test_analytic_engine_is_bitwise_unchanged_by_compilation(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=33)
        batch = make_batch(num_samples=6, num_qubits=3, seed=5)
        compiled = AnalyticEngine(shots=None, compiler=CircuitCompiler())
        interpreted = AnalyticEngine(shots=None, compile_circuits=False)
        assert np.array_equal(
            compiled.p1_levels_batch(batch, ansatz, [0, 1, 2]),
            interpreted.p1_levels_batch(batch, ansatz, [0, 1, 2]),
        )

    def test_compiled_shot_noise_rng_stream_is_bitwise_pinned(self):
        """The compiled fused sweep and a compiled per-level loop share the
        exact operator arithmetic, so their binomial shot-noise draws consume
        the RNG stream bitwise identically."""
        ansatz = RandomAutoencoderAnsatz(2, seed=35)
        batch = make_batch(seed=6)
        noise = FakeBrisbane(5).to_noise_model()
        levels = [0, 1, 2]
        compiler = CircuitCompiler()
        fused = DensityMatrixEngine(
            shots=2048, noise_model=noise, gate_level_encoding=True,
            compiler=compiler, rng=np.random.default_rng(17),
        ).p1_levels_batch(batch, ansatz, levels)
        loop_engine = DensityMatrixEngine(
            shots=2048, noise_model=noise, gate_level_encoding=True,
            compiler=compiler, rng=np.random.default_rng(17),
        )
        looped = np.stack([
            loop_engine.p1_batch_circuit_level(batch, ansatz, level)
            for level in levels
        ])
        assert np.array_equal(fused, looped)

    def test_compiled_exact_probabilities_reproduce_across_runs(self):
        """Cached programs are deterministic: two compiled engines (cold and
        warm cache) produce bitwise identical exact probabilities."""
        ansatz = RandomAutoencoderAnsatz(2, seed=37)
        batch = make_batch(seed=7)
        noise = FakeBrisbane(5).to_noise_model()
        compiler = CircuitCompiler()
        kwargs = dict(shots=None, noise_model=noise, gate_level_encoding=True,
                      compiler=compiler)
        cold = DensityMatrixEngine(**kwargs).p1_levels_batch(batch, ansatz,
                                                             [0, 1, 2])
        warm = DensityMatrixEngine(**kwargs).p1_levels_batch(batch, ansatz,
                                                             [0, 1, 2])
        assert np.array_equal(cold, warm)


class TestCompilerCache:
    def test_recompiling_the_same_circuit_hits_the_cache(self):
        """Acceptance pin: compiling the same (circuit, noise model) twice must
        not recompile -- observed through the compile counter."""
        ansatz = RandomAutoencoderAnsatz(2, seed=41)
        suffix = build_autoencoder_suffix(ansatz, 1, measure=False)
        noise = FakeBrisbane(5).to_noise_model()
        compiler = CircuitCompiler()
        first = compiler.dual_observable(suffix, noise, 4)
        compiles_after_first = compiler.stats.compiles
        hits_after_first = compiler.stats.hits
        second = compiler.dual_observable(suffix, noise, 4)
        assert compiler.stats.compiles == compiles_after_first
        assert compiler.stats.hits == hits_after_first + 1
        assert second is first

    def test_equal_but_distinct_noise_models_share_entries(self):
        """Fingerprints are content-based: per-member FakeBrisbane models do
        not multiply the cache."""
        ansatz = RandomAutoencoderAnsatz(2, seed=43)
        suffix = build_autoencoder_suffix(ansatz, 1, measure=False)
        compiler = CircuitCompiler()
        first = compiler.dual_observable(suffix, FakeBrisbane(5).to_noise_model(), 4)
        compiles = compiler.stats.compiles
        second = compiler.dual_observable(suffix, FakeBrisbane(5).to_noise_model(), 4)
        assert compiler.stats.compiles == compiles
        assert second is first

    def test_different_noise_or_dtype_compile_separately(self):
        ansatz = RandomAutoencoderAnsatz(2, seed=45)
        suffix = build_autoencoder_suffix(ansatz, 1, measure=False)
        compiler = CircuitCompiler()
        noisy = compiler.dual_observable(suffix, FakeBrisbane(5).to_noise_model(), 4)
        noiseless = compiler.dual_observable(suffix, None, 4)
        float32 = compiler.dual_observable(suffix, None, 4, "numpy-float32")
        assert not np.array_equal(noisy, noiseless)
        assert float32.dtype == np.complex64

    def test_lru_eviction_is_bounded(self):
        compiler = CircuitCompiler(max_entries=2)
        for seed in range(5):
            circuit = random_circuit(num_qubits=2, depth=3, seed=seed)
            compiler.fused_unitary(circuit)
        assert compiler.cache_size() <= 2

    def test_lru_eviction_is_byte_bounded(self):
        """Fused superoperators are large; the cache evicts by payload bytes,
        not just entry count."""
        one_entry = CircuitCompiler().fused_unitary(
            random_circuit(num_qubits=3, depth=3, seed=0)).nbytes
        compiler = CircuitCompiler(max_bytes=int(2.5 * one_entry))
        for seed in range(5):
            compiler.fused_unitary(random_circuit(num_qubits=3, depth=3,
                                                  seed=seed))
        assert compiler.cache_bytes() <= 2.5 * one_entry
        assert compiler.cache_size() == 2

    def test_signature_distinguishes_parameters_and_payloads(self):
        a = QuantumCircuit(2, 1)
        a.rx(0.5, 0)
        b = QuantumCircuit(2, 1)
        b.rx(0.6, 0)
        assert circuit_signature(a) != circuit_signature(b)
        assert circuit_signature(a) == circuit_signature(a.copy())

    def test_noise_fingerprint_is_content_based(self):
        assert noise_model_fingerprint(None) is None
        assert (noise_model_fingerprint(FakeBrisbane(5).to_noise_model())
                == noise_fingerprint_twin())
        assert (noise_model_fingerprint(depolarizing_model())
                != noise_model_fingerprint(FakeBrisbane(5).to_noise_model()))

    def test_default_compiler_is_process_shared(self):
        assert default_compiler() is default_compiler()

    def test_compiler_pickles_without_its_cache(self):
        import pickle

        compiler = CircuitCompiler(max_entries=7, max_superop_qubits=3)
        compiler.fused_unitary(random_circuit(num_qubits=2, depth=3, seed=0))
        clone = pickle.loads(pickle.dumps(compiler))
        assert clone.max_entries == 7
        assert clone.max_superop_qubits == 3
        assert clone.cache_size() == 0


def noise_fingerprint_twin():
    return noise_model_fingerprint(FakeBrisbane(5).to_noise_model())


class TestNoiseModelCaches:
    def test_error_resolution_is_cached_per_gate_name_and_arity(self):
        model = depolarizing_model()
        from repro.quantum.circuit import Instruction

        first = model.error_for_instruction(Instruction(name="h", qubits=(0,)))
        again = model.error_for_instruction(Instruction(name="h", qubits=(2,)))
        assert again is first
        assert model.superoperator_for("h", 1) is first.superoperator

    def test_builder_methods_invalidate_the_caches(self):
        model = depolarizing_model()
        assert model.superoperator_for("h", 1) is not None
        fingerprint = model.fingerprint()
        replacement = QuantumError.from_kraus(depolarizing_kraus(0.5))
        model.add_gate_error("h", replacement)
        assert model.superoperator_for("h", 1) is replacement.superoperator
        assert model.fingerprint() != fingerprint
