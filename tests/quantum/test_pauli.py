"""Tests for Pauli-string operators and observables."""

import numpy as np
import pytest

from repro.quantum import gates
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.pauli import PauliString, PauliSum, single_qubit_pauli
from repro.quantum.statevector import Statevector


class TestPauliString:
    def test_label_validation(self):
        assert PauliString("xiz").label == "XIZ"
        with pytest.raises(ValueError):
            PauliString("")
        with pytest.raises(ValueError):
            PauliString("XQ")

    def test_matrix_of_single_qubit_labels(self):
        assert np.allclose(PauliString("X").to_matrix(), gates.X)
        assert np.allclose(PauliString("Z").to_matrix(), gates.Z)

    def test_little_endian_ordering(self):
        # "ZI": Z acts on qubit 1 (leftmost char is the most significant qubit).
        matrix = PauliString("ZI").to_matrix()
        assert np.allclose(matrix, np.kron(gates.Z, np.eye(2)))
        assert PauliString("ZI").factor(0) == "I"
        assert PauliString("ZI").factor(1) == "Z"

    def test_weight(self):
        assert PauliString("IXI").weight == 1
        assert PauliString("XYZ").weight == 3
        assert PauliString("III").weight == 0

    def test_commutation(self):
        assert PauliString("XX").commutes_with(PauliString("ZZ"))
        assert not PauliString("XI").commutes_with(PauliString("ZI"))
        with pytest.raises(ValueError):
            PauliString("X").commutes_with(PauliString("XX"))

    def test_composition(self):
        phase, result = PauliString("X").compose(PauliString("Y"))
        assert result.label == "Z"
        assert phase == pytest.approx(1j)
        phase, result = PauliString("Z").compose(PauliString("Z"))
        assert result.label == "I"
        assert phase == pytest.approx(1.0)

    def test_composition_matches_matrices(self):
        first = PauliString("XY")
        second = PauliString("ZX")
        phase, product = first.compose(second)
        assert np.allclose(phase * product.to_matrix(),
                           first.to_matrix() @ second.to_matrix())

    def test_expectation_on_basis_states(self):
        zero = Statevector.zero_state(1)
        one = zero.evolve_gate(gates.X, [0])
        assert PauliString("Z").expectation(zero) == pytest.approx(1.0)
        assert PauliString("Z").expectation(one) == pytest.approx(-1.0)
        plus = zero.evolve_gate(gates.H, [0])
        assert PauliString("X").expectation(plus) == pytest.approx(1.0)

    def test_expectation_on_density_matrix(self):
        mixed = DensityMatrix(np.eye(2) / 2)
        assert PauliString("Z").expectation(mixed) == pytest.approx(0.0)

    def test_expectation_on_raw_vector(self):
        assert PauliString("Z").expectation(np.array([0.0, 1.0])) == pytest.approx(-1.0)

    def test_expectation_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            PauliString("ZZ").expectation(np.array([1.0, 0.0]))

    def test_single_qubit_pauli_helper(self):
        assert single_qubit_pauli("Z", 0, 3).label == "IIZ"
        assert single_qubit_pauli("X", 2, 3).label == "XII"
        with pytest.raises(ValueError):
            single_qubit_pauli("I", 0, 3)
        with pytest.raises(ValueError):
            single_qubit_pauli("Z", 5, 3)


class TestPauliSum:
    def test_expectation_is_linear(self):
        state = Statevector.zero_state(2)
        observable = PauliSum([(0.5, "IZ"), (0.25, "ZI")])
        assert observable.expectation(state) == pytest.approx(0.75)

    def test_matrix_matches_term_sum(self):
        observable = PauliSum([(1.0, "XX"), (-0.5, "ZZ")])
        expected = PauliString("XX").to_matrix() - 0.5 * PauliString("ZZ").to_matrix()
        assert np.allclose(observable.to_matrix(), expected)

    def test_simplify_merges_duplicates(self):
        observable = PauliSum([(1.0, "Z"), (2.0, "Z"), (1.0, "X"), (-1.0, "X")])
        simplified = observable.simplified()
        labels = {string.label: coeff for coeff, string in simplified.terms}
        assert labels == {"Z": 3.0}

    def test_simplify_of_zero_sum_keeps_identity(self):
        observable = PauliSum([(1.0, "Z"), (-1.0, "Z")]).simplified()
        assert len(observable) == 1
        assert observable.terms[0][1].label == "I"

    def test_mixed_sizes_raise(self):
        with pytest.raises(ValueError):
            PauliSum([(1.0, "Z"), (1.0, "ZZ")])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            PauliSum([])

    def test_repr_shows_terms(self):
        assert "Z" in repr(PauliSum([(1.0, "Z")]))
