"""Unit and property tests for the statevector representation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum import gates
from repro.quantum.statevector import (
    Statevector,
    bitstring_from_index,
    expand_gate,
    index_from_bitstring,
)


def random_state(num_qubits, seed):
    rng = np.random.default_rng(seed)
    vec = rng.normal(size=2 ** num_qubits) + 1j * rng.normal(size=2 ** num_qubits)
    return Statevector.from_amplitudes(vec)


class TestConstruction:
    def test_zero_state(self):
        state = Statevector.zero_state(3)
        assert state.num_qubits == 3
        assert state.data[0] == 1.0
        assert np.allclose(state.data[1:], 0.0)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            Statevector([1.0, 0.0, 0.0])

    def test_rejects_inconsistent_num_qubits(self):
        with pytest.raises(ValueError):
            Statevector([1.0, 0.0], num_qubits=2)

    def test_from_amplitudes_normalizes(self):
        state = Statevector.from_amplitudes([3.0, 4.0])
        assert state.is_normalized()
        assert np.isclose(abs(state.data[0]), 0.6)

    def test_from_amplitudes_rejects_zero_vector(self):
        with pytest.raises(ValueError):
            Statevector.from_amplitudes([0.0, 0.0])


class TestBitstrings:
    def test_round_trip(self):
        for index in range(16):
            assert index_from_bitstring(bitstring_from_index(index, 4)) == index

    def test_width(self):
        assert bitstring_from_index(1, 5) == "00001"


class TestEvolution:
    def test_x_on_qubit0(self):
        state = Statevector.zero_state(2).evolve_gate(gates.X, [0])
        assert np.isclose(abs(state.data[1]), 1.0)

    def test_x_on_qubit1(self):
        state = Statevector.zero_state(2).evolve_gate(gates.X, [1])
        assert np.isclose(abs(state.data[2]), 1.0)

    def test_bell_state(self):
        state = Statevector.zero_state(2)
        state = state.evolve_gate(gates.H, [0]).evolve_gate(gates.CX, [0, 1])
        assert np.isclose(abs(state.data[0]) ** 2, 0.5)
        assert np.isclose(abs(state.data[3]) ** 2, 0.5)
        assert np.isclose(abs(state.data[1]), 0.0)

    def test_cx_direction_matters(self):
        # X on qubit 1, then CX with control qubit 1: target qubit 0 flips.
        state = Statevector.zero_state(2).evolve_gate(gates.X, [1])
        state = state.evolve_gate(gates.CX, [1, 0])
        assert np.isclose(abs(state.data[3]), 1.0)

    def test_three_qubit_gate_application(self):
        state = Statevector.zero_state(3)
        state = state.evolve_gate(gates.X, [0]).evolve_gate(gates.X, [1])
        state = state.evolve_gate(gates.CCX, [0, 1, 2])
        assert np.isclose(abs(state.data[7]), 1.0)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_unitary_evolution_preserves_norm(self, seed):
        state = random_state(3, seed)
        rng = np.random.default_rng(seed)
        theta = rng.uniform(0, 2 * math.pi)
        evolved = state.evolve_gate(gates.rx_matrix(theta), [1])
        assert evolved.is_normalized()

    def test_gate_on_listed_qubit_order(self):
        # CX with qubits (1, 0): control is qubit 1.
        state = Statevector.zero_state(2).evolve_gate(gates.X, [0])
        evolved = state.evolve_gate(gates.CX, [1, 0])
        # Control (qubit 1) is 0, so nothing changes.
        assert np.isclose(abs(evolved.data[1]), 1.0)


class TestProbabilities:
    def test_full_distribution_sums_to_one(self):
        state = random_state(3, 7)
        assert np.isclose(state.probabilities().sum(), 1.0)

    def test_marginal_single_qubit(self):
        state = Statevector.zero_state(2).evolve_gate(gates.H, [0])
        probs = state.probabilities([0])
        assert np.allclose(probs, [0.5, 0.5])
        probs = state.probabilities([1])
        assert np.allclose(probs, [1.0, 0.0])

    def test_marginal_ordering(self):
        # Qubit 0 in |1>, qubit 1 in |0>.
        state = Statevector.zero_state(2).evolve_gate(gates.X, [0])
        probs = state.probabilities([0, 1])
        # Little endian over (q0, q1): index 1 means q0=1, q1=0.
        assert np.isclose(probs[1], 1.0)
        probs_swapped = state.probabilities([1, 0])
        # Now q1 is the least significant: index 2 means q0=1, q1=0.
        assert np.isclose(probs_swapped[2], 1.0)

    def test_probability_of_outcome(self):
        state = Statevector.zero_state(1).evolve_gate(gates.H, [0])
        assert np.isclose(state.probability_of_outcome(0, 0), 0.5)

    def test_expectation_z(self):
        state = Statevector.zero_state(1)
        assert np.isclose(state.expectation_z(0), 1.0)
        state = state.evolve_gate(gates.X, [0])
        assert np.isclose(state.expectation_z(0), -1.0)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_marginals_sum_to_one(self, seed):
        state = random_state(4, seed)
        for qubit in range(4):
            assert np.isclose(state.probabilities([qubit]).sum(), 1.0)


class TestInnerProducts:
    def test_inner_orthogonal(self):
        zero = Statevector.zero_state(1)
        one = zero.evolve_gate(gates.X, [0])
        assert np.isclose(zero.inner(one), 0.0)

    def test_fidelity_self_is_one(self):
        state = random_state(3, 11)
        assert np.isclose(state.fidelity(state), 1.0)

    def test_fidelity_mismatched_sizes_raises(self):
        with pytest.raises(ValueError):
            Statevector.zero_state(1).inner(Statevector.zero_state(2))

    def test_density_matrix_of_pure_state(self):
        state = random_state(2, 5)
        rho = state.to_density_matrix()
        assert np.isclose(np.trace(rho).real, 1.0)
        assert np.allclose(rho, rho.conj().T)
        assert np.isclose(np.trace(rho @ rho).real, 1.0)


class TestSampling:
    def test_sample_counts_total(self):
        state = random_state(3, 3)
        counts = state.sample_counts(1000, np.random.default_rng(0))
        assert sum(counts.values()) == 1000

    def test_sample_deterministic_state(self):
        state = Statevector.zero_state(2).evolve_gate(gates.X, [1])
        counts = state.sample_counts(100, np.random.default_rng(0))
        assert counts == {"10": 100}

    def test_sample_subset_of_qubits(self):
        state = Statevector.zero_state(2).evolve_gate(gates.X, [1])
        counts = state.sample_counts(50, np.random.default_rng(0), qubits=[1])
        assert counts == {"1": 50}


class TestExpandGate:
    def test_expand_x_on_one_qubit(self):
        full = expand_gate(gates.X, [0], 2)
        expected = np.kron(np.eye(2), gates.X)
        assert np.allclose(full, expected)

    def test_expand_x_on_high_qubit(self):
        full = expand_gate(gates.X, [1], 2)
        expected = np.kron(gates.X, np.eye(2))
        assert np.allclose(full, expected)

    def test_expand_matches_direct_evolution(self):
        state = random_state(3, 9)
        gate = gates.standard_gate_matrix("crx", [0.8])
        direct = state.evolve_gate(gate, [2, 0])
        full = expand_gate(gate, [2, 0], 3)
        assert np.allclose(full @ state.data, direct.data)

    def test_expanded_gate_is_unitary(self):
        full = expand_gate(gates.CSWAP, [1, 0, 2], 4)
        assert gates.is_unitary(full)
