"""Tests for the density-matrix representation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum import gates
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.noise import amplitude_damping_kraus, depolarizing_kraus
from repro.quantum.operators import is_density_matrix
from repro.quantum.statevector import Statevector


def random_statevector(num_qubits, seed):
    rng = np.random.default_rng(seed)
    vec = rng.normal(size=2 ** num_qubits) + 1j * rng.normal(size=2 ** num_qubits)
    return Statevector.from_amplitudes(vec)


class TestConstruction:
    def test_zero_state(self):
        rho = DensityMatrix.zero_state(2)
        assert rho.num_qubits == 2
        assert np.isclose(rho.data[0, 0].real, 1.0)

    def test_from_statevector(self):
        state = random_statevector(2, 1)
        rho = DensityMatrix.from_statevector(state)
        assert np.isclose(rho.purity(), 1.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            DensityMatrix(np.ones((2, 3)))

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            DensityMatrix(np.eye(3))


class TestEvolution:
    def test_unitary_evolution_matches_statevector(self):
        state = random_statevector(3, 5)
        rho = DensityMatrix.from_statevector(state)
        gate = gates.standard_gate_matrix("cry", [1.1])
        evolved_rho = rho.evolve_gate(gate, [0, 2])
        evolved_state = state.evolve_gate(gate, [0, 2])
        assert np.allclose(evolved_rho.data, evolved_state.to_density_matrix())

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_evolution_preserves_density_matrix_properties(self, seed):
        rho = DensityMatrix.from_statevector(random_statevector(2, seed))
        evolved = rho.evolve_gate(gates.H, [0]).evolve_gate(gates.CX, [0, 1])
        assert is_density_matrix(evolved.data)

    def test_reset_on_product_state(self):
        state = Statevector.zero_state(2).evolve_gate(gates.X, [0])
        rho = DensityMatrix.from_statevector(state).reset_qubit(0)
        assert np.isclose(rho.data[0, 0].real, 1.0)

    def test_reset_on_entangled_state_gives_mixed_state(self):
        state = Statevector.zero_state(2)
        state = state.evolve_gate(gates.H, [0]).evolve_gate(gates.CX, [0, 1])
        rho = DensityMatrix.from_statevector(state).reset_qubit(0)
        # Qubit 0 is |0> but qubit 1 stays maximally mixed.
        assert np.isclose(rho.purity(), 0.5)
        assert np.isclose(rho.probability_of_outcome(0, 0), 1.0)
        assert np.isclose(rho.probability_of_outcome(1, 0), 0.5)

    def test_reset_is_trace_preserving(self):
        rho = DensityMatrix.from_statevector(random_statevector(3, 8)).reset_qubit(1)
        assert np.isclose(rho.trace(), 1.0)

    def test_apply_depolarizing_channel(self):
        rho = DensityMatrix.zero_state(1)
        noisy = rho.apply_kraus(depolarizing_kraus(1.0, 1), [0])
        # Full depolarization leaves the maximally mixed state.
        assert np.allclose(noisy.data, np.eye(2) / 2, atol=1e-9)

    def test_apply_amplitude_damping(self):
        excited = DensityMatrix.from_statevector(
            Statevector.zero_state(1).evolve_gate(gates.X, [0])
        )
        damped = excited.apply_kraus(amplitude_damping_kraus(1.0), [0])
        assert np.isclose(damped.probability_of_outcome(0, 0), 1.0)


class TestMeasurement:
    def test_probabilities_match_statevector(self):
        state = random_statevector(3, 12)
        rho = DensityMatrix.from_statevector(state)
        assert np.allclose(rho.probabilities(), state.probabilities())
        assert np.allclose(rho.probabilities([1]), state.probabilities([1]))

    def test_sample_counts_total(self):
        rho = DensityMatrix.from_statevector(random_statevector(2, 4))
        counts = rho.sample_counts(256, np.random.default_rng(1))
        assert sum(counts.values()) == 256

    def test_expectation_z(self):
        rho = DensityMatrix.zero_state(1)
        assert np.isclose(rho.expectation_z(0), 1.0)


class TestReductionsAndOverlap:
    def test_reduced_of_product_state(self):
        state = Statevector.zero_state(2).evolve_gate(gates.X, [1])
        rho = DensityMatrix.from_statevector(state)
        reduced = rho.reduced([1])
        assert np.isclose(reduced.data[1, 1].real, 1.0)

    def test_overlap_identical_pure_states(self):
        rho = DensityMatrix.from_statevector(random_statevector(2, 6))
        assert np.isclose(rho.overlap(rho), 1.0)

    def test_overlap_orthogonal_states(self):
        zero = DensityMatrix.zero_state(1)
        one = DensityMatrix.from_statevector(
            Statevector.zero_state(1).evolve_gate(gates.X, [0])
        )
        assert np.isclose(zero.overlap(one), 0.0)

    def test_overlap_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            DensityMatrix.zero_state(1).overlap(DensityMatrix.zero_state(2))
