"""Tests for basis decomposition and optimization passes."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum import gates
from repro.quantum.transpiler import (
    SUPPORTED_BASES,
    cancel_adjacent_self_inverse,
    decompose_instruction,
    decompose_single_qubit,
    drop_trivial_gates,
    euler_zyz_angles,
    merge_adjacent_rotations,
    transpile,
    unitaries_equivalent,
)

ANGLES = st.floats(min_value=-2 * math.pi, max_value=2 * math.pi,
                   allow_nan=False, allow_infinity=False)


def instructions_to_unitary(instructions, num_qubits):
    circuit = QuantumCircuit(num_qubits)
    for instruction in instructions:
        circuit.append(instruction)
    return circuit.to_unitary()


def random_single_qubit_unitary(seed):
    rng = np.random.default_rng(seed)
    theta, phi, lam = rng.uniform(0, 2 * math.pi, size=3)
    return gates.u_matrix(theta, phi, lam)


class TestEulerDecomposition:
    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=50, deadline=None)
    def test_zyz_reconstruction(self, seed):
        unitary = random_single_qubit_unitary(seed)
        alpha, a, b, c = euler_zyz_angles(unitary)
        rebuilt = (np.exp(1j * alpha) * gates.rz_matrix(a) @ gates.ry_matrix(b)
                   @ gates.rz_matrix(c))
        assert np.allclose(rebuilt, unitary, atol=1e-8)

    def test_identity(self):
        alpha, a, b, c = euler_zyz_angles(np.eye(2))
        rebuilt = (np.exp(1j * alpha) * gates.rz_matrix(a) @ gates.ry_matrix(b)
                   @ gates.rz_matrix(c))
        assert np.allclose(rebuilt, np.eye(2))

    def test_pure_x_rotation(self):
        unitary = gates.rx_matrix(1.3)
        alpha, a, b, c = euler_zyz_angles(unitary)
        rebuilt = (np.exp(1j * alpha) * gates.rz_matrix(a) @ gates.ry_matrix(b)
                   @ gates.rz_matrix(c))
        assert np.allclose(rebuilt, unitary, atol=1e-8)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            euler_zyz_angles(np.eye(4))


class TestSingleQubitDecomposition:
    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_rx_rz_basis(self, seed):
        unitary = random_single_qubit_unitary(seed)
        instructions = decompose_single_qubit(unitary, 0, ("rz", "rx", "cx"))
        rebuilt = instructions_to_unitary(instructions, 1)
        assert unitaries_equivalent(rebuilt, unitary)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_sx_rz_basis(self, seed):
        unitary = random_single_qubit_unitary(seed)
        instructions = decompose_single_qubit(unitary, 0, ("rz", "sx", "x", "cx"))
        rebuilt = instructions_to_unitary(instructions, 1)
        assert unitaries_equivalent(rebuilt, unitary)

    def test_hadamard_in_both_bases(self):
        for basis in SUPPORTED_BASES:
            instructions = decompose_single_qubit(gates.H, 0, basis)
            rebuilt = instructions_to_unitary(instructions, 1)
            assert unitaries_equivalent(rebuilt, gates.H)

    def test_unsupported_basis_raises(self):
        with pytest.raises(ValueError):
            decompose_single_qubit(gates.H, 0, ("h", "cx"))


class TestInstructionDecomposition:
    @pytest.mark.parametrize("name,params,qubits", [
        ("cz", (), (0, 1)),
        ("cy", (), (0, 1)),
        ("ch", (), (0, 1)),
        ("swap", (), (0, 1)),
        ("crx", (0.7,), (0, 1)),
        ("cry", (1.1,), (1, 0)),
        ("crz", (2.2,), (0, 1)),
        ("cp", (0.9,), (0, 1)),
        ("rzz", (0.6,), (0, 1)),
        ("rxx", (1.4,), (0, 1)),
    ])
    def test_two_qubit_gates_decompose_exactly(self, name, params, qubits):
        instruction = Instruction(name=name, qubits=qubits, params=params)
        expected = instructions_to_unitary([instruction], 2)
        for basis in SUPPORTED_BASES:
            lowered = decompose_instruction(instruction, basis)
            assert all(instr.name in basis for instr in lowered)
            rebuilt = instructions_to_unitary(lowered, 2)
            assert unitaries_equivalent(rebuilt, expected)

    @pytest.mark.parametrize("name,qubits", [
        ("ccx", (0, 1, 2)),
        ("ccx", (2, 0, 1)),
        ("cswap", (0, 1, 2)),
        ("cswap", (1, 2, 0)),
    ])
    def test_three_qubit_gates_decompose_exactly(self, name, qubits):
        instruction = Instruction(name=name, qubits=qubits)
        expected = instructions_to_unitary([instruction], 3)
        for basis in SUPPORTED_BASES:
            lowered = decompose_instruction(instruction, basis)
            assert all(instr.name in basis for instr in lowered)
            rebuilt = instructions_to_unitary(lowered, 3)
            assert unitaries_equivalent(rebuilt, expected)

    def test_basis_gates_pass_through(self):
        instruction = Instruction(name="cx", qubits=(0, 1))
        assert decompose_instruction(instruction, ("rz", "rx", "cx")) == [instruction]

    def test_non_unitary_pass_through(self):
        instruction = Instruction(name="reset", qubits=(0,))
        assert decompose_instruction(instruction, ("rz", "rx", "cx")) == [instruction]


class TestOptimizationPasses:
    def test_drop_trivial_gates(self):
        instructions = [
            Instruction(name="id", qubits=(0,)),
            Instruction(name="rz", qubits=(0,), params=(0.0,)),
            Instruction(name="rx", qubits=(0,), params=(2 * math.pi,)),
            Instruction(name="h", qubits=(0,)),
        ]
        kept = drop_trivial_gates(instructions)
        assert [instr.name for instr in kept] == ["h"]

    def test_merge_adjacent_rotations(self):
        instructions = [
            Instruction(name="rz", qubits=(0,), params=(0.4,)),
            Instruction(name="rz", qubits=(0,), params=(0.6,)),
        ]
        merged = merge_adjacent_rotations(instructions)
        assert len(merged) == 1
        assert np.isclose(merged[0].params[0], 1.0)

    def test_merge_cancelling_rotations_removes_both(self):
        instructions = [
            Instruction(name="rx", qubits=(1,), params=(0.5,)),
            Instruction(name="rx", qubits=(1,), params=(-0.5,)),
        ]
        assert merge_adjacent_rotations(instructions) == []

    def test_merge_does_not_cross_qubits(self):
        instructions = [
            Instruction(name="rz", qubits=(0,), params=(0.4,)),
            Instruction(name="rz", qubits=(1,), params=(0.6,)),
        ]
        assert len(merge_adjacent_rotations(instructions)) == 2

    def test_cancel_adjacent_cx(self):
        instructions = [
            Instruction(name="cx", qubits=(0, 1)),
            Instruction(name="cx", qubits=(0, 1)),
        ]
        assert cancel_adjacent_self_inverse(instructions) == []

    def test_cancel_requires_same_qubits(self):
        instructions = [
            Instruction(name="cx", qubits=(0, 1)),
            Instruction(name="cx", qubits=(1, 0)),
        ]
        assert len(cancel_adjacent_self_inverse(instructions)) == 2


class TestTranspile:
    def _ansatz_like_circuit(self):
        circuit = QuantumCircuit(3)
        rng = np.random.default_rng(7)
        for qubit in range(3):
            circuit.rx(rng.uniform(0, 2 * math.pi), qubit)
            circuit.rz(rng.uniform(0, 2 * math.pi), qubit)
        circuit.cx(0, 1).cx(1, 2)
        circuit.h(0)
        circuit.cswap(0, 1, 2)
        return circuit

    @pytest.mark.parametrize("basis", SUPPORTED_BASES)
    def test_transpiled_circuit_equivalent(self, basis):
        circuit = self._ansatz_like_circuit()
        transpiled = transpile(circuit, basis=basis)
        assert unitaries_equivalent(transpiled.to_unitary(), circuit.to_unitary())
        allowed = set(basis) | {"barrier"}
        assert all(instr.name in allowed for instr in transpiled.instructions)

    def test_optimization_reduces_gate_count(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.3, 0).rz(-0.3, 0).cx(0, 1).cx(0, 1).h(1).h(1)
        transpiled = transpile(circuit, basis=("rz", "rx", "cx"), optimization_level=1)
        assert transpiled.size() < circuit.size()
        assert unitaries_equivalent(transpiled.to_unitary(), np.eye(4))

    def test_optimization_level_zero_keeps_structure(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.3, 0).rz(-0.3, 0)
        transpiled = transpile(circuit, basis=("rz", "rx", "cx"), optimization_level=0)
        assert transpiled.size() == 2

    def test_unsupported_basis_raises(self):
        with pytest.raises(ValueError):
            transpile(QuantumCircuit(1), basis=("h", "t"))

    def test_measure_and_reset_survive_transpilation(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).reset(1).measure(0, 0)
        transpiled = transpile(circuit, basis=("rz", "rx", "cx"))
        names = [instr.name for instr in transpiled.instructions]
        assert "reset" in names
        assert "measure" in names


class TestUnitaryEquivalence:
    def test_equal_up_to_phase(self):
        unitary = random_single_qubit_unitary(3)
        assert unitaries_equivalent(unitary, np.exp(0.7j) * unitary)

    def test_detects_difference(self):
        assert not unitaries_equivalent(gates.X, gates.Z)

    def test_shape_mismatch(self):
        assert not unitaries_equivalent(np.eye(2), np.eye(4))
