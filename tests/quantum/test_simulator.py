"""Tests for the shot-based execution engines."""

import math

import numpy as np
import pytest

from repro.quantum.backends import FakeBrisbane
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise import NoiseModel, QuantumError, ReadoutError, depolarizing_kraus
from repro.quantum.simulator import DensityMatrixSimulator, StatevectorSimulator


def bell_circuit(measured=True):
    circuit = QuantumCircuit(2)
    circuit.h(0).cx(0, 1)
    if measured:
        circuit.measure_all()
    return circuit


class TestStatevectorSimulator:
    def test_deterministic_circuit_counts(self):
        circuit = QuantumCircuit(2)
        circuit.x(0).measure_all()
        result = StatevectorSimulator(seed=1).run(circuit, shots=100)
        assert result.counts == {"01": 100}

    def test_bell_counts_are_balanced(self):
        result = StatevectorSimulator(seed=2).run(bell_circuit(), shots=4000)
        assert set(result.counts) == {"00", "11"}
        assert abs(result.counts["00"] - 2000) < 200

    def test_no_measurement_returns_statevector(self):
        result = StatevectorSimulator(seed=0).run(bell_circuit(measured=False),
                                                  shots=10)
        assert result.counts == {}
        assert result.statevector is not None
        assert np.isclose(abs(result.statevector.data[0]) ** 2, 0.5)

    def test_negative_shots_raises(self):
        with pytest.raises(ValueError):
            StatevectorSimulator().run(bell_circuit(), shots=-1)

    def test_initialize_instruction(self):
        circuit = QuantumCircuit(2)
        amplitudes = np.array([0.5, 0.5, 0.5, 0.5])
        circuit.initialize(amplitudes, [0, 1]).measure_all()
        result = StatevectorSimulator(seed=3).run(circuit, shots=4000)
        assert set(result.counts) == {"00", "01", "10", "11"}

    def test_initialize_subset_of_qubits(self):
        circuit = QuantumCircuit(3)
        circuit.initialize([0.0, 1.0], [1])
        circuit.measure_all()
        result = StatevectorSimulator(seed=4).run(circuit, shots=50)
        assert result.counts == {"010": 50}

    def test_reset_gives_zero(self):
        circuit = QuantumCircuit(1)
        circuit.x(0).reset(0).measure(0, 0)
        result = StatevectorSimulator(seed=5).run(circuit, shots=64)
        assert result.counts == {"0": 64}

    def test_reset_on_superposition(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).reset(0).measure(0, 0)
        result = StatevectorSimulator(seed=6).run(circuit, shots=64)
        assert result.counts == {"0": 64}

    def test_reset_of_entangled_qubit_leaves_partner_mixed(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).reset(0)
        circuit.measure(0, 0).measure(1, 1)
        result = StatevectorSimulator(seed=7).run(circuit, shots=2000)
        # Qubit 0 must always read 0; qubit 1 is split roughly 50/50.
        assert all(key[1] == "0" for key in result.counts)
        ones = result.counts.get("10", 0)
        assert abs(ones - 1000) < 200

    def test_mid_circuit_measurement_collapses(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).measure(0, 0).x(0).measure(0, 0)
        result = StatevectorSimulator(seed=8).run(circuit, shots=200)
        # The final measurement overwrites clbit 0 with the flipped outcome.
        assert set(result.counts) <= {"0", "1"}
        assert sum(result.counts.values()) == 200

    def test_max_trajectories_cap(self):
        simulator = StatevectorSimulator(seed=9, max_trajectories=10)
        circuit = QuantumCircuit(1)
        circuit.h(0).reset(0).h(0).measure(0, 0)
        result = simulator.run(circuit, shots=1000)
        assert result.metadata["trajectories"] <= 10
        assert sum(result.counts.values()) == 1000

    def test_result_probability_helpers(self):
        result = StatevectorSimulator(seed=10).run(bell_circuit(), shots=1000)
        assert np.isclose(result.probability("00") + result.probability("11"), 1.0)
        assert np.isclose(result.marginal_probability(0, 0),
                          result.probability("00"), atol=1e-9)


class TestDensityMatrixSimulator:
    def test_matches_statevector_on_unitary_circuit(self):
        circuit = bell_circuit()
        sv_result = StatevectorSimulator(seed=1).run(circuit, shots=8000)
        dm_result = DensityMatrixSimulator(seed=1).run(circuit, shots=8000)
        sv_p00 = sv_result.probability("00")
        dm_p00 = dm_result.probability("00")
        assert abs(sv_p00 - dm_p00) < 0.05

    def test_exact_reset_behaviour(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).reset(0)
        state = DensityMatrixSimulator().evolve(circuit)
        assert np.isclose(state.probability_of_outcome(0, 0), 1.0)
        assert np.isclose(state.probability_of_outcome(1, 1), 0.5)
        assert np.isclose(state.purity(), 0.5)

    def test_noise_model_reduces_purity(self):
        noise = NoiseModel()
        noise.add_all_two_qubit_error(
            QuantumError.from_kraus(depolarizing_kraus(0.2, 2))
        )
        circuit = bell_circuit(measured=False)
        noisy = DensityMatrixSimulator(noise_model=noise).evolve(circuit)
        clean = DensityMatrixSimulator().evolve(circuit)
        assert noisy.purity() < clean.purity()

    def test_readout_error_flips_deterministic_outcome(self):
        noise = NoiseModel().set_readout_error(ReadoutError.symmetric(0.25))
        circuit = QuantumCircuit(1)
        circuit.measure(0, 0)
        result = DensityMatrixSimulator(noise_model=noise, seed=3).run(circuit,
                                                                       shots=4000)
        flipped = result.counts.get("1", 0) / 4000
        assert 0.15 < flipped < 0.35

    def test_brisbane_noise_model_runs(self):
        noise = FakeBrisbane().to_noise_model()
        circuit = bell_circuit()
        result = DensityMatrixSimulator(noise_model=noise, seed=5).run(circuit,
                                                                       shots=2000)
        assert sum(result.counts.values()) == 2000
        assert result.metadata["noisy"] is True
        # Noise should leave the dominant outcomes dominant.
        top_two = sorted(result.counts.values(), reverse=True)[:2]
        assert sum(top_two) > 1800

    def test_initialize_and_swap_test_structure(self):
        # A tiny SWAP test between identical single-qubit states must read 0 on the
        # ancilla with probability 1.
        circuit = QuantumCircuit(3, 1)
        amplitudes = [math.sqrt(0.3), math.sqrt(0.7)]
        circuit.initialize(amplitudes, [1])
        circuit.initialize(amplitudes, [2])
        circuit.h(0)
        circuit.cswap(0, 1, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        result = DensityMatrixSimulator(seed=11).run(circuit, shots=512)
        assert result.counts == {"0": 512}

    def test_negative_shots_raises(self):
        with pytest.raises(ValueError):
            DensityMatrixSimulator().run(bell_circuit(), shots=-5)
