"""Hypothesis property tests for the batched density-matrix primitives.

Every batched kernel in :mod:`repro.quantum.backend` must (a) preserve the
defining properties of a density matrix -- unit trace, Hermiticity, positivity
up to numerical tolerance -- and (b) agree row by row with the single-sample
reference implementations (:class:`repro.quantum.density_matrix.DensityMatrix`
and :class:`repro.quantum.simulator.DensityMatrixSimulator`).  Random mixed
states, random gates, random target-qubit subsets, and random CPTP channels are
drawn per Hypothesis example (seed-driven, mirroring the style of
``tests/quantum/test_density_matrix.py``).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum.backend import get_simulation_backend
from repro.quantum.circuit_library import random_circuit
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.noise import (
    QuantumError,
    amplitude_damping_kraus,
    depolarizing_kraus,
    thermal_relaxation_kraus,
)
from repro.quantum.simulator import (
    BatchedDensityMatrixSimulator,
    DensityMatrixSimulator,
)

#: (backend name, numerical tolerance) -- the float32 variant computes in
#: complex64, so its kernels are only accurate to single precision.
BACKENDS = [("numpy", 1e-10), ("numpy-float32", 2e-4)]

seeds = st.integers(min_value=0, max_value=10_000)


def random_density_batch(rng, batch, num_qubits):
    """Random full-rank mixed states: ``A A^dagger`` normalized to unit trace."""
    dim = 2 ** num_qubits
    factors = (rng.normal(size=(batch, dim, dim))
               + 1j * rng.normal(size=(batch, dim, dim)))
    rhos = np.matmul(factors, factors.conj().transpose(0, 2, 1))
    traces = np.einsum("bii->b", rhos).real
    return rhos / traces[:, None, None]


def random_unitaries(rng, batch, num_target_qubits):
    dim = 2 ** num_target_qubits
    matrices = (rng.normal(size=(batch, dim, dim))
                + 1j * rng.normal(size=(batch, dim, dim)))
    return np.stack([np.linalg.qr(matrix)[0] for matrix in matrices])


def random_qubit_subset(rng, num_qubits, size):
    return [int(q) for q in rng.permutation(num_qubits)[:size]]


def random_channel(rng, num_qubits):
    """A random CPTP channel from the noise library (superoperator form)."""
    choice = int(rng.integers(3)) if num_qubits == 1 else 2
    if choice == 0:
        kraus = amplitude_damping_kraus(float(rng.uniform(0.0, 1.0)))
    elif choice == 1:
        t1 = float(rng.uniform(50.0, 300.0))
        kraus = thermal_relaxation_kraus(t1, float(rng.uniform(10.0, 2 * t1)),
                                         float(rng.uniform(0.0, 50.0)))
    else:
        kraus = depolarizing_kraus(float(rng.uniform(0.0, 1.0)), num_qubits)
    return QuantumError.from_kraus(kraus)


def assert_density_properties(rhos, tolerance):
    traces = np.einsum("bii->b", rhos)
    assert np.allclose(traces, 1.0, atol=tolerance), "trace must be preserved"
    assert np.allclose(rhos, rhos.conj().transpose(0, 2, 1),
                       atol=tolerance), "result must stay Hermitian"
    eigenvalues = np.linalg.eigvalsh(rhos)
    assert eigenvalues.min() >= -tolerance, "result must stay positive"


@pytest.mark.parametrize("backend_name,tolerance", BACKENDS)
class TestApplyGatesDensityBatch:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_per_sample_gates_preserve_density_properties_and_match_reference(
            self, backend_name, tolerance, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(2, 4))
        num_targets = int(rng.integers(1, num_qubits + 1))
        batch = int(rng.integers(1, 6))
        qubits = random_qubit_subset(rng, num_qubits, num_targets)
        rhos = random_density_batch(rng, batch, num_qubits)
        gates = random_unitaries(rng, batch, num_targets)

        backend = get_simulation_backend(backend_name)
        evolved = backend.apply_gates_density_batch(rhos, gates, qubits)

        assert_density_properties(evolved, tolerance)
        for index in range(batch):
            reference = DensityMatrix(rhos[index]).evolve_gate(gates[index],
                                                               qubits)
            assert np.allclose(evolved[index], reference.data, atol=tolerance)


@pytest.mark.parametrize("backend_name,tolerance", BACKENDS)
class TestApplySuperoperatorDensityBatch:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_shared_channel_preserves_density_properties_and_matches_kraus(
            self, backend_name, tolerance, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(2, 4))
        num_targets = int(rng.integers(1, 3))
        batch = int(rng.integers(1, 6))
        qubits = random_qubit_subset(rng, num_qubits, num_targets)
        rhos = random_density_batch(rng, batch, num_qubits)
        error = random_channel(rng, num_targets)

        backend = get_simulation_backend(backend_name)
        evolved = backend.apply_superoperator_density_batch(
            rhos, error.superoperator, qubits
        )

        assert_density_properties(evolved, tolerance)
        for index in range(batch):
            reference = DensityMatrix(rhos[index]).apply_kraus(
                list(error.kraus_operators), qubits
            )
            assert np.allclose(evolved[index], reference.data, atol=tolerance)

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_per_sample_channels_match_per_row_kraus(self, backend_name,
                                                     tolerance, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(2, 4))
        num_targets = int(rng.integers(1, 3))
        batch = int(rng.integers(1, 6))
        qubits = random_qubit_subset(rng, num_qubits, num_targets)
        rhos = random_density_batch(rng, batch, num_qubits)
        errors = [random_channel(rng, num_targets) for _ in range(batch)]
        superoperators = np.stack([error.superoperator for error in errors])

        backend = get_simulation_backend(backend_name)
        evolved = backend.apply_superoperators_density_batch(
            rhos, superoperators, qubits
        )

        assert_density_properties(evolved, tolerance)
        for index in range(batch):
            reference = DensityMatrix(rhos[index]).apply_kraus(
                list(errors[index].kraus_operators), qubits
            )
            assert np.allclose(evolved[index], reference.data, atol=tolerance)


@pytest.mark.parametrize("backend_name,tolerance", BACKENDS)
class TestResetQubitDensityBatch:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_reset_preserves_density_properties_and_matches_reference(
            self, backend_name, tolerance, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(2, 4))
        qubit = int(rng.integers(num_qubits))
        batch = int(rng.integers(1, 6))
        rhos = random_density_batch(rng, batch, num_qubits)

        backend = get_simulation_backend(backend_name)
        reset = backend.reset_qubit_density_batch(rhos, qubit)

        assert_density_properties(reset, tolerance)
        # The reset qubit is in |0> with certainty afterwards.
        assert np.allclose(
            backend.probability_one_density_batch(reset, qubit), 0.0,
            atol=tolerance,
        )
        for index in range(batch):
            reference = DensityMatrix(rhos[index]).reset_qubit(qubit)
            assert np.allclose(reset[index], reference.data, atol=tolerance)


@pytest.mark.parametrize("backend_name,tolerance", BACKENDS)
class TestProbabilityOneDensityBatch:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_probabilities_are_valid_and_match_reference(self, backend_name,
                                                         tolerance, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(2, 4))
        qubit = int(rng.integers(num_qubits))
        batch = int(rng.integers(1, 6))
        rhos = random_density_batch(rng, batch, num_qubits)

        backend = get_simulation_backend(backend_name)
        probabilities = backend.probability_one_density_batch(rhos, qubit)

        assert probabilities.shape == (batch,)
        assert np.all(probabilities >= -tolerance)
        assert np.all(probabilities <= 1.0 + tolerance)
        for index in range(batch):
            reference = DensityMatrix(rhos[index]).probability_of_outcome(qubit, 1)
            assert np.isclose(probabilities[index], reference, atol=tolerance)


class TestBatchedWalkOnRandomCircuits:
    """The batched circuit walker agrees with the per-sample simulator on
    arbitrary random circuits (not just the Quorum autoencoder family)."""

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_random_circuit_batch_matches_per_sample_simulator(self, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(2, 4))
        depth = int(rng.integers(1, 4))
        circuits = [
            random_circuit(num_qubits, depth, seed=int(rng.integers(1_000_000)))
            for _ in range(int(rng.integers(1, 5)))
        ]
        noise = None
        if rng.random() < 0.5:
            from repro.quantum.backends import FakeBrisbane

            noise = FakeBrisbane(num_qubits).to_noise_model()

        walker = BatchedDensityMatrixSimulator(noise_model=noise)
        batched = walker.evolve_batch(circuits)

        assert_density_properties(batched, 1e-10)
        reference = DensityMatrixSimulator(noise_model=noise)
        for index, circuit in enumerate(circuits):
            assert np.allclose(batched[index], reference.evolve(circuit).data,
                               atol=1e-10)
