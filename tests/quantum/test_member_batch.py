"""Hypothesis property tests for the member-stacked batch primitives.

Every stacked kernel added for ensemble-wide fused execution must agree with
the per-member loop it replaces to ``<= 1e-10`` on the ``complex128`` backend
(single precision on ``numpy-float32``), across random group sizes, batch
sizes, and qubit counts:

* :meth:`~repro.quantum.backend.SimulationBackend.apply_compiled_unitary_member_batch`
  vs one :meth:`apply_unitary_batch` per member;
* :meth:`~repro.quantum.backend.SimulationBackend.apply_compiled_superoperator_member_batch`
  over a compiled :class:`~repro.quantum.compiler.MemberStackedProgram` vs one
  :meth:`apply_compiled_superoperator_batch` per member program;
* :meth:`~repro.quantum.backend.SimulationBackend.observable_expectation_density_member_batch`
  vs one :meth:`observable_expectation_density_batch` per member;
* :meth:`~repro.quantum.simulator.BatchedDensityMatrixSimulator.evolve_member_batch`
  vs one :meth:`evolve_batch` per member (plus its declared
  :class:`~repro.quantum.simulator.IncompatibleMemberBatch` fallbacks).

The member circuit families are drawn from the same population the fused
executor stacks in production: random autoencoder ansatzes of one register
size, which share a structure signature and differ only in rotation angles.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.algorithms.autoencoder import build_autoencoder_prefix
from repro.core.ensemble import batch_amplitudes
from repro.quantum.backend import get_simulation_backend
from repro.quantum.compiler import CircuitCompiler, structure_signature
from repro.quantum.noise import NoiseModel, QuantumError, depolarizing_kraus
from repro.quantum.simulator import (
    BatchedDensityMatrixSimulator,
    IncompatibleMemberBatch,
)

#: (backend name, tolerance): the float32 variant computes in complex64.
BACKENDS = [("numpy", 1e-10), ("numpy-float32", 2e-4)]

seeds = st.integers(min_value=0, max_value=10_000)


def member_ansatzes(rng, members, num_qubits):
    """Random ansatzes of one register size: a structure-signature group."""
    return [RandomAutoencoderAnsatz(num_qubits,
                                    seed=int(rng.integers(1_000_000)))
            for _ in range(members)]


def member_encoder_circuits(ansatzes):
    return [ansatz.encoder_circuit(list(range(ansatz.num_qubits)))
            for ansatz in ansatzes]


def random_state_stack(rng, members, batch, num_qubits):
    dim = 2 ** num_qubits
    states = (rng.normal(size=(members, batch, dim))
              + 1j * rng.normal(size=(members, batch, dim)))
    return states / np.linalg.norm(states, axis=-1, keepdims=True)


def random_density_stack(rng, members, batch, num_qubits):
    dim = 2 ** num_qubits
    factors = (rng.normal(size=(members, batch, dim, dim))
               + 1j * rng.normal(size=(members, batch, dim, dim)))
    rhos = np.matmul(factors, factors.conj().transpose(0, 1, 3, 2))
    traces = np.einsum("mbii->mb", rhos).real
    return rhos / traces[..., None, None]


def random_hermitians(rng, members, num_qubits):
    dim = 2 ** num_qubits
    raw = (rng.normal(size=(members, dim, dim))
           + 1j * rng.normal(size=(members, dim, dim)))
    return raw + raw.conj().transpose(0, 2, 1)


def depolarizing_model():
    return (
        NoiseModel()
        .add_all_single_qubit_error(QuantumError.from_kraus(
            depolarizing_kraus(0.02)))
        .add_all_two_qubit_error(QuantumError.from_kraus(
            depolarizing_kraus(0.05, 2)))
    )


class TestAnsatzFamiliesShareStructure:
    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_equal_register_ansatzes_form_one_signature_group(self, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(2, 4))
        circuits = member_encoder_circuits(
            member_ansatzes(rng, int(rng.integers(2, 5)), num_qubits))
        signatures = {structure_signature(circuit) for circuit in circuits}
        assert len(signatures) == 1


@pytest.mark.parametrize("backend_name,tolerance", BACKENDS)
class TestUnitaryMemberBatch:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_stacked_unitaries_match_per_member_loop(self, backend_name,
                                                     tolerance, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(1, 4))
        members = int(rng.integers(1, 5))
        batch = int(rng.integers(1, 6))
        ansatzes = member_ansatzes(rng, members, num_qubits)
        states = random_state_stack(rng, members, batch, num_qubits)

        backend = get_simulation_backend(backend_name)
        compiler = CircuitCompiler()
        unitaries = compiler.member_stacked_unitary(
            member_encoder_circuits(ansatzes), backend)
        stacked = backend.apply_compiled_unitary_member_batch(
            backend.as_states(states.reshape(members * batch, -1))
                   .reshape(members, batch, -1),
            unitaries)

        assert stacked.shape == states.shape
        for member in range(members):
            reference = backend.apply_unitary_batch(states[member],
                                                    unitaries[member])
            assert np.allclose(stacked[member], reference, atol=tolerance)

    def test_mismatched_stacks_raise(self, backend_name, tolerance):
        backend = get_simulation_backend(backend_name)
        states = random_state_stack(np.random.default_rng(0), 3, 2, 2)
        unitaries = np.stack([np.eye(4, dtype=complex)] * 2)
        with pytest.raises(ValueError):
            backend.apply_compiled_unitary_member_batch(states, unitaries)


@pytest.mark.parametrize("backend_name,tolerance", BACKENDS)
class TestSuperoperatorMemberBatch:
    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_stacked_program_matches_per_member_programs(self, backend_name,
                                                         tolerance, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(2, 4))
        members = int(rng.integers(1, 4))
        batch = int(rng.integers(1, 5))
        circuits = member_encoder_circuits(
            member_ansatzes(rng, members, num_qubits))
        noise = depolarizing_model() if rng.random() < 0.7 else None
        rhos = random_density_stack(rng, members, batch, num_qubits)

        backend = get_simulation_backend(backend_name)
        compiler = CircuitCompiler()
        program = compiler.member_stacked_channel_program(circuits, noise,
                                                          backend)
        stacked = backend.apply_compiled_superoperator_member_batch(
            rhos, program)

        assert stacked.shape == rhos.shape
        for member, circuit in enumerate(circuits):
            serial = compiler.channel_program(circuit, noise, backend)
            reference = backend.apply_compiled_superoperator_batch(
                rhos[member], serial)
            assert np.allclose(stacked[member], reference, atol=tolerance)


@pytest.mark.parametrize("backend_name,tolerance", BACKENDS)
class TestExpectationMemberBatch:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_stacked_expectations_match_per_member_loop(self, backend_name,
                                                        tolerance, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(1, 4))
        members = int(rng.integers(1, 5))
        batch = int(rng.integers(1, 6))
        rhos = random_density_stack(rng, members, batch, num_qubits)
        observables = random_hermitians(rng, members, num_qubits)

        backend = get_simulation_backend(backend_name)
        stacked = backend.observable_expectation_density_member_batch(
            rhos, observables)

        assert stacked.shape == (members, batch)
        for member in range(members):
            reference = backend.observable_expectation_density_batch(
                rhos[member], observables[member])
            assert np.allclose(stacked[member], reference, atol=tolerance)


class TestEvolveMemberBatch:
    def _member_prefixes(self, rng, members, samples, num_qubits):
        """Per-member prefix circuit lists over shared random sample rows."""
        values = rng.uniform(0.05, 1.0 / np.sqrt(2 ** num_qubits - 1),
                             size=(samples, 2 ** num_qubits - 1))
        amplitudes = batch_amplitudes(values, num_qubits)
        ansatzes = member_ansatzes(rng, members, num_qubits)
        return [
            [build_autoencoder_prefix(row, ansatz, gate_level_encoding=True)
             for row in amplitudes]
            for ansatz in ansatzes
        ]

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=8, deadline=None)
    def test_member_walk_matches_per_member_walks(self, seed):
        rng = np.random.default_rng(seed)
        members = int(rng.integers(1, 4))
        samples = int(rng.integers(1, 4))
        num_qubits = 2
        member_prefixes = self._member_prefixes(rng, members, samples,
                                                num_qubits)
        noise = depolarizing_model() if rng.random() < 0.7 else None

        walker = BatchedDensityMatrixSimulator(noise_model=noise)
        stacked = walker.evolve_member_batch(member_prefixes)

        assert stacked.shape[:2] == (members, samples)
        for member, prefixes in enumerate(member_prefixes):
            reference = walker.evolve_batch(prefixes)
            assert np.allclose(stacked[member], reference, atol=1e-10)

    def test_interpreted_mode_raises_incompatible(self):
        rng = np.random.default_rng(3)
        member_prefixes = self._member_prefixes(rng, 2, 2, 2)
        walker = BatchedDensityMatrixSimulator(compile_programs=False)
        with pytest.raises(IncompatibleMemberBatch):
            walker.evolve_member_batch(member_prefixes)

    def test_oversize_sample_batch_raises_incompatible(self):
        rng = np.random.default_rng(5)
        member_prefixes = self._member_prefixes(rng, 2, 3, 2)
        walker = BatchedDensityMatrixSimulator()
        walker.MAX_FLAT_ELEMENTS = 2 * 16  # two 4x4 densities per chunk
        with pytest.raises(IncompatibleMemberBatch):
            walker.evolve_member_batch(member_prefixes)

    def test_structural_divergence_raises_incompatible(self):
        rng = np.random.default_rng(7)
        diverged = self._member_prefixes(rng, 1, 2, 2)[0]
        diverged[1].instructions = diverged[1].instructions[:-1]
        walker = BatchedDensityMatrixSimulator()
        with pytest.raises(IncompatibleMemberBatch):
            walker.evolve_member_batch([diverged])
