"""Unit tests for the QuantumCircuit IR."""

import math

import numpy as np
import pytest

from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum import gates
from repro.quantum.transpiler import unitaries_equivalent


class TestCircuitConstruction:
    def test_requires_at_least_one_qubit(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_default_clbits_match_qubits(self):
        circuit = QuantumCircuit(3)
        assert circuit.num_clbits == 3

    def test_qubit_out_of_range_raises(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(IndexError):
            circuit.x(2)

    def test_duplicate_qubits_raise(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.cx(1, 1)

    def test_gate_arity_mismatch_raises(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit._add_gate("cx", [0])

    def test_clbit_out_of_range_raises(self):
        circuit = QuantumCircuit(2, 1)
        with pytest.raises(IndexError):
            circuit.measure(0, 1)

    def test_method_chaining(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).measure_all()
        assert circuit.size() == 4

    def test_initialize_requires_normalized_state(self):
        circuit = QuantumCircuit(1)
        with pytest.raises(ValueError):
            circuit.initialize([1.0, 1.0], [0])

    def test_initialize_requires_power_of_two_amplitudes(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.initialize([1.0, 0.0, 0.0], [0, 1])

    def test_unitary_rejects_non_unitary_matrix(self):
        circuit = QuantumCircuit(1)
        with pytest.raises(ValueError):
            circuit.unitary(np.array([[1, 1], [0, 1]]), [0])

    def test_measure_all_needs_enough_clbits(self):
        circuit = QuantumCircuit(3, 1)
        with pytest.raises(ValueError):
            circuit.measure_all()


class TestCircuitStructure:
    def test_count_ops(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2).rx(0.5, 2)
        counts = circuit.count_ops()
        assert counts == {"h": 1, "cx": 2, "rx": 1}

    def test_depth_serial_vs_parallel(self):
        serial = QuantumCircuit(1)
        serial.h(0).h(0).h(0)
        assert serial.depth() == 3
        parallel = QuantumCircuit(3)
        parallel.h(0).h(1).h(2)
        assert parallel.depth() == 1

    def test_depth_ignores_barriers(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().h(1)
        assert circuit.depth() == 1

    def test_size_ignores_barriers(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().cx(0, 1)
        assert circuit.size() == 2

    def test_two_qubit_gate_count(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cswap(0, 1, 2).rx(0.2, 1)
        assert circuit.two_qubit_gate_count() == 2

    def test_has_nonunitary_flag(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        assert not circuit.has_nonunitary_operations
        circuit.reset(1)
        assert circuit.has_nonunitary_operations

    def test_copy_is_independent(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        duplicate = circuit.copy()
        duplicate.x(1)
        assert circuit.size() == 1
        assert duplicate.size() == 2

    def test_repr_mentions_size(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        assert "size=1" in repr(circuit)


class TestCompose:
    def test_compose_identity_mapping(self):
        inner = QuantumCircuit(2)
        inner.h(0).cx(0, 1)
        outer = QuantumCircuit(2)
        outer.compose(inner)
        assert outer.count_ops() == {"h": 1, "cx": 1}

    def test_compose_with_qubit_mapping(self):
        inner = QuantumCircuit(2)
        inner.cx(0, 1)
        outer = QuantumCircuit(4)
        outer.compose(inner, qubits=[2, 3])
        assert outer.instructions[0].qubits == (2, 3)

    def test_compose_wrong_mapping_length_raises(self):
        inner = QuantumCircuit(2)
        outer = QuantumCircuit(4)
        with pytest.raises(ValueError):
            outer.compose(inner, qubits=[0])


class TestInverse:
    def test_inverse_of_unitary_circuit_is_identity(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).rx(0.3, 1).cx(0, 1).rz(1.2, 0).t(1)
        combined = circuit.copy()
        combined.compose(circuit.inverse())
        assert unitaries_equivalent(combined.to_unitary(), np.eye(4))

    def test_inverse_reverses_order(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).t(0)
        inverse = circuit.inverse()
        assert [instr.name for instr in inverse.instructions] == ["tdg", "h"]

    def test_inverse_of_reset_raises(self):
        circuit = QuantumCircuit(1)
        circuit.reset(0)
        with pytest.raises(ValueError):
            circuit.inverse()

    def test_instruction_inverse_of_rotation_negates_angle(self):
        instr = Instruction(name="rx", qubits=(0,), params=(0.7,))
        assert instr.inverse().params == (-0.7,)

    def test_instruction_inverse_of_u_gate(self):
        instr = Instruction(name="u", qubits=(0,), params=(0.3, 0.5, 0.7))
        matrix = instr.matrix_or_standard()
        inverse_matrix = instr.inverse().matrix_or_standard()
        assert np.allclose(matrix @ inverse_matrix, np.eye(2), atol=1e-10)


class TestToUnitary:
    def test_bell_circuit_unitary(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        unitary = circuit.to_unitary()
        state = unitary @ np.array([1, 0, 0, 0], dtype=complex)
        expected = np.array([1, 0, 0, 1], dtype=complex) / math.sqrt(2)
        assert np.allclose(state, expected)

    def test_to_unitary_rejects_nonunitary_circuit(self):
        circuit = QuantumCircuit(1)
        circuit.reset(0)
        with pytest.raises(ValueError):
            circuit.to_unitary()

    def test_gate_order_matters(self):
        circuit = QuantumCircuit(1)
        circuit.x(0).h(0)
        expected = gates.H @ gates.X
        assert np.allclose(circuit.to_unitary(), expected)
