"""Tests for noise channels, the noise model container, and fake backends."""

import numpy as np
import pytest

from repro.quantum.backends import BackendProperties, FakeBrisbane, FakeIdealBackend
from repro.quantum.circuit import Instruction
from repro.quantum.noise import (
    NoiseModel,
    QuantumError,
    ReadoutError,
    amplitude_damping_kraus,
    bit_flip_kraus,
    depolarizing_kraus,
    phase_damping_kraus,
    phase_flip_kraus,
    thermal_relaxation_kraus,
)
from repro.quantum.operators import apply_kraus, process_is_trace_preserving


class TestChannels:
    @pytest.mark.parametrize("probability", [0.0, 0.1, 0.5, 1.0])
    def test_depolarizing_is_trace_preserving(self, probability):
        assert process_is_trace_preserving(depolarizing_kraus(probability, 1))
        assert process_is_trace_preserving(depolarizing_kraus(probability, 2))

    def test_depolarizing_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            depolarizing_kraus(1.5, 1)

    def test_amplitude_damping_trace_preserving(self):
        assert process_is_trace_preserving(amplitude_damping_kraus(0.3))

    def test_phase_damping_trace_preserving(self):
        assert process_is_trace_preserving(phase_damping_kraus(0.3))

    def test_bit_and_phase_flip_trace_preserving(self):
        assert process_is_trace_preserving(bit_flip_kraus(0.2))
        assert process_is_trace_preserving(phase_flip_kraus(0.2))

    def test_thermal_relaxation_trace_preserving(self):
        kraus = thermal_relaxation_kraus(t1=230.0, t2=143.0, gate_time=0.5)
        assert process_is_trace_preserving(kraus)

    def test_thermal_relaxation_rejects_t2_greater_than_2t1(self):
        with pytest.raises(ValueError):
            thermal_relaxation_kraus(t1=10.0, t2=25.0, gate_time=0.1)

    def test_phase_damping_kills_coherences(self):
        plus = 0.5 * np.ones((2, 2), dtype=complex)
        dephased = apply_kraus(plus, phase_damping_kraus(1.0))
        assert np.allclose(dephased, np.diag([0.5, 0.5]))

    def test_amplitude_damping_decays_excited_population(self):
        excited = np.diag([0.0, 1.0]).astype(complex)
        damped = apply_kraus(excited, amplitude_damping_kraus(0.4))
        assert np.isclose(damped[0, 0].real, 0.4)
        assert np.isclose(damped[1, 1].real, 0.6)


class TestReadoutError:
    def test_symmetric_constructor(self):
        error = ReadoutError.symmetric(0.02)
        assert error.prob_1_given_0 == error.prob_0_given_1 == 0.02

    def test_confusion_matrix_columns_sum_to_one(self):
        matrix = ReadoutError(0.1, 0.2).confusion_matrix()
        assert np.allclose(matrix.sum(axis=0), [1.0, 1.0])

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            ReadoutError(1.5, 0.0)

    def test_apply_to_bit_statistics(self):
        rng = np.random.default_rng(0)
        error = ReadoutError(0.3, 0.0)
        flips = sum(error.apply_to_bit(0, rng) for _ in range(5000))
        assert 0.25 < flips / 5000 < 0.35


class TestNoiseModel:
    def test_trivial_model(self):
        assert NoiseModel().is_trivial

    def test_gate_specific_error_lookup(self):
        model = NoiseModel()
        error = QuantumError.from_kraus(depolarizing_kraus(0.01, 2))
        model.add_gate_error("cx", error)
        found = model.error_for_instruction(Instruction(name="cx", qubits=(0, 1)))
        assert found is error
        assert model.error_for_instruction(Instruction(name="h", qubits=(0,))) is None

    def test_default_arity_errors(self):
        model = NoiseModel()
        one_q = QuantumError.from_kraus(depolarizing_kraus(0.01, 1))
        two_q = QuantumError.from_kraus(depolarizing_kraus(0.02, 2))
        model.add_all_single_qubit_error(one_q)
        model.add_all_two_qubit_error(two_q)
        assert model.error_for_instruction(
            Instruction(name="rx", qubits=(0,), params=(0.3,))) is one_q
        assert model.error_for_instruction(
            Instruction(name="cx", qubits=(0, 1))) is two_q

    def test_arity_mismatch_raises(self):
        model = NoiseModel()
        two_q = QuantumError.from_kraus(depolarizing_kraus(0.02, 2))
        with pytest.raises(ValueError):
            model.add_all_single_qubit_error(two_q)

    def test_non_unitary_instructions_have_no_error(self):
        model = NoiseModel()
        model.add_all_single_qubit_error(
            QuantumError.from_kraus(depolarizing_kraus(0.01, 1)))
        assert model.error_for_instruction(Instruction(name="reset", qubits=(0,))) is None

    def test_repr_lists_gates(self):
        model = NoiseModel()
        model.add_gate_error("cx", QuantumError.from_kraus(depolarizing_kraus(0.1, 2)))
        assert "cx" in repr(model)


class TestBackends:
    def test_brisbane_figures_match_paper(self):
        backend = FakeBrisbane()
        assert backend.t1_us == pytest.approx(230.42)
        assert backend.t2_us == pytest.approx(143.41)
        assert backend.single_qubit_gate_error == pytest.approx(2.274e-4)
        assert backend.two_qubit_gate_error == pytest.approx(2.903e-3)
        assert backend.readout_error == pytest.approx(1.38e-2)

    def test_brisbane_noise_model_is_not_trivial(self):
        assert not FakeBrisbane().to_noise_model().is_trivial

    def test_ideal_backend_errors_are_zero(self):
        backend = FakeIdealBackend()
        assert backend.single_qubit_gate_error == 0.0
        assert backend.readout_error == 0.0

    def test_invalid_properties_raise(self):
        with pytest.raises(ValueError):
            BackendProperties(name="bad", num_qubits=0, t1_us=1, t2_us=1,
                              single_qubit_gate_error=0, two_qubit_gate_error=0,
                              readout_error=0)
        with pytest.raises(ValueError):
            BackendProperties(name="bad", num_qubits=1, t1_us=1, t2_us=1,
                              single_qubit_gate_error=2.0, two_qubit_gate_error=0,
                              readout_error=0)
