"""Tests for the text circuit drawer."""

import numpy as np

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.algorithms.autoencoder import build_autoencoder_circuit
from repro.core.ensemble import batch_amplitudes
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.visualization import draw_circuit


class TestDrawCircuit:
    def test_empty_circuit(self):
        text = draw_circuit(QuantumCircuit(2))
        lines = text.splitlines()
        assert lines[0].startswith("q0:")
        assert lines[1].startswith("q1:")

    def test_one_line_per_qubit(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).rx(0.5, 2)
        text = draw_circuit(circuit)
        lines = [line for line in text.splitlines() if line]
        assert len(lines) == 3

    def test_gate_labels_present(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).rx(1.5708, 1)
        text = draw_circuit(circuit)
        assert "[H]" in text
        assert "RX(1.57)" in text

    def test_cx_shows_control_and_target(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        text = draw_circuit(circuit)
        lines = text.splitlines()
        assert "●" in lines[0]
        assert "X" in lines[1]

    def test_measure_reset_and_barrier(self):
        circuit = QuantumCircuit(2)
        circuit.reset(0).barrier().measure(1, 0)
        text = draw_circuit(circuit)
        assert "[|0>]" in text
        assert "░" in text
        assert "[M->c0]" in text

    def test_cswap_marks_three_qubits(self):
        circuit = QuantumCircuit(3)
        circuit.cswap(0, 1, 2)
        lines = draw_circuit(circuit).splitlines()
        assert "●" in lines[0]
        assert "x" in lines[1]
        assert "x" in lines[2]

    def test_wrapping_into_blocks(self):
        circuit = QuantumCircuit(1)
        for _ in range(40):
            circuit.h(0)
        text = draw_circuit(circuit, max_width=50)
        # Wrapped output has more than one "q0:" prefix.
        assert text.count("q0:") > 1

    def test_full_quorum_circuit_draws_without_error(self):
        amplitudes = batch_amplitudes(
            np.random.default_rng(0).uniform(0, 1 / np.sqrt(7), size=(1, 7)), 3)[0]
        circuit = build_autoencoder_circuit(
            amplitudes, RandomAutoencoderAnsatz(3, seed=1), 1)
        text = draw_circuit(circuit)
        assert text.count("q0:") >= 1
        assert "[INIT]" in text
