"""Tests for partial trace, fidelity, purity, and Kraus helpers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.quantum import gates
from repro.quantum.operators import (
    apply_kraus,
    is_density_matrix,
    partial_trace,
    process_is_trace_preserving,
    purity,
    state_fidelity,
)
from repro.quantum.statevector import Statevector


def bell_density_matrix():
    state = Statevector.zero_state(2)
    state = state.evolve_gate(gates.H, [0]).evolve_gate(gates.CX, [0, 1])
    return state.to_density_matrix()


def random_pure_density(num_qubits, seed):
    rng = np.random.default_rng(seed)
    vec = rng.normal(size=2 ** num_qubits) + 1j * rng.normal(size=2 ** num_qubits)
    return Statevector.from_amplitudes(vec).to_density_matrix()


class TestPartialTrace:
    def test_bell_state_reduction_is_maximally_mixed(self):
        rho = bell_density_matrix()
        reduced = partial_trace(rho, [0], 2)
        assert np.allclose(reduced, np.eye(2) / 2)
        reduced = partial_trace(rho, [1], 2)
        assert np.allclose(reduced, np.eye(2) / 2)

    def test_product_state_reduction(self):
        # Qubit 0 in |1>, qubit 1 in |+>.
        state = Statevector.zero_state(2)
        state = state.evolve_gate(gates.X, [0]).evolve_gate(gates.H, [1])
        rho = state.to_density_matrix()
        reduced0 = partial_trace(rho, [0], 2)
        assert np.allclose(reduced0, np.array([[0, 0], [0, 1]], dtype=complex))
        reduced1 = partial_trace(rho, [1], 2)
        assert np.allclose(reduced1, 0.5 * np.ones((2, 2), dtype=complex))

    def test_keep_all_returns_input(self):
        rho = random_pure_density(2, 1)
        assert np.allclose(partial_trace(rho, [0, 1], 2), rho)

    def test_keep_order_permutes_result(self):
        # Qubit 0 in |1>, qubit 1 in |0>; keeping (0,1) vs (1,0) permutes the index.
        state = Statevector.zero_state(2).evolve_gate(gates.X, [0])
        rho = state.to_density_matrix()
        keep01 = partial_trace(rho, [0, 1], 2)
        keep10 = partial_trace(rho, [1, 0], 2)
        assert np.isclose(keep01[1, 1].real, 1.0)
        assert np.isclose(keep10[2, 2].real, 1.0)

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_reduced_states_are_density_matrices(self, seed):
        rho = random_pure_density(3, seed)
        for keep in ([0], [1], [2], [0, 1], [1, 2], [0, 2]):
            reduced = partial_trace(rho, keep, 3)
            assert is_density_matrix(reduced)

    def test_trace_preserved(self):
        rho = random_pure_density(3, 42)
        reduced = partial_trace(rho, [0, 2], 3)
        assert np.isclose(np.trace(reduced).real, 1.0)


class TestPurityAndFidelity:
    def test_pure_state_purity(self):
        assert np.isclose(purity(random_pure_density(2, 3)), 1.0)

    def test_maximally_mixed_purity(self):
        assert np.isclose(purity(np.eye(4) / 4), 0.25)

    def test_fidelity_identical_states(self):
        rho = random_pure_density(2, 8)
        assert np.isclose(state_fidelity(rho, rho), 1.0, atol=1e-6)

    def test_fidelity_orthogonal_states(self):
        zero = np.diag([1.0, 0.0]).astype(complex)
        one = np.diag([0.0, 1.0]).astype(complex)
        assert np.isclose(state_fidelity(zero, one), 0.0, atol=1e-9)

    def test_fidelity_pure_vs_mixed(self):
        zero = np.diag([1.0, 0.0]).astype(complex)
        mixed = np.eye(2) / 2
        assert np.isclose(state_fidelity(zero, mixed), 0.5, atol=1e-8)


class TestKraus:
    def test_apply_identity_channel(self):
        rho = random_pure_density(1, 2)
        assert np.allclose(apply_kraus(rho, [np.eye(2)]), rho)

    def test_reset_channel(self):
        k0 = np.array([[1, 0], [0, 0]], dtype=complex)
        k1 = np.array([[0, 1], [0, 0]], dtype=complex)
        rho = np.diag([0.3, 0.7]).astype(complex)
        out = apply_kraus(rho, [k0, k1])
        assert np.allclose(out, np.diag([1.0, 0.0]))

    def test_completeness_check(self):
        k0 = np.array([[1, 0], [0, 0]], dtype=complex)
        k1 = np.array([[0, 1], [0, 0]], dtype=complex)
        assert process_is_trace_preserving([k0, k1])
        assert not process_is_trace_preserving([k0])


class TestIsDensityMatrix:
    def test_valid(self):
        assert is_density_matrix(np.eye(2) / 2)

    def test_rejects_trace_not_one(self):
        assert not is_density_matrix(np.eye(2))

    def test_rejects_non_hermitian(self):
        assert not is_density_matrix(np.array([[0.5, 1.0], [0.0, 0.5]]))

    def test_rejects_negative_eigenvalues(self):
        assert not is_density_matrix(np.diag([1.5, -0.5]))

    def test_rejects_non_square(self):
        assert not is_density_matrix(np.ones((2, 3)))
