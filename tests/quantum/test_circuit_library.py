"""Tests for the standard-circuit library (and, through it, the substrate)."""

import math

import numpy as np
import pytest

from repro.quantum.circuit_library import (
    bell_pair,
    ghz_circuit,
    qft_circuit,
    random_circuit,
    w_state_circuit,
)
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.transpiler import transpile, unitaries_equivalent


def final_state(circuit):
    return StatevectorSimulator().run(circuit, shots=0).statevector


class TestBellAndGhz:
    def test_bell_pair_amplitudes(self):
        state = final_state(bell_pair())
        assert np.isclose(abs(state.data[0]) ** 2, 0.5)
        assert np.isclose(abs(state.data[3]) ** 2, 0.5)

    @pytest.mark.parametrize("num_qubits", [2, 3, 5])
    def test_ghz_amplitudes(self, num_qubits):
        state = final_state(ghz_circuit(num_qubits))
        probabilities = np.abs(state.data) ** 2
        assert np.isclose(probabilities[0], 0.5)
        assert np.isclose(probabilities[-1], 0.5)
        assert np.isclose(probabilities[1:-1].sum(), 0.0)

    def test_ghz_requires_two_qubits(self):
        with pytest.raises(ValueError):
            ghz_circuit(1)


class TestWState:
    @pytest.mark.parametrize("num_qubits", [2, 3, 4])
    def test_w_state_is_uniform_over_weight_one_strings(self, num_qubits):
        state = final_state(w_state_circuit(num_qubits))
        probabilities = np.abs(state.data) ** 2
        for index, probability in enumerate(probabilities):
            weight = bin(index).count("1")
            if weight == 1:
                assert probability == pytest.approx(1.0 / num_qubits, abs=1e-9)
            else:
                assert probability == pytest.approx(0.0, abs=1e-9)

    def test_w_state_requires_two_qubits(self):
        with pytest.raises(ValueError):
            w_state_circuit(1)


class TestQft:
    def test_qft_matrix_matches_dft(self):
        num_qubits = 3
        dim = 2 ** num_qubits
        unitary = qft_circuit(num_qubits).to_unitary()
        omega = np.exp(2j * math.pi / dim)
        dft = np.array([[omega ** (row * col) for col in range(dim)]
                        for row in range(dim)]) / math.sqrt(dim)
        assert unitaries_equivalent(unitary, dft)

    def test_qft_on_zero_state_is_uniform(self):
        state = final_state(qft_circuit(4))
        assert np.allclose(np.abs(state.data), 0.25, atol=1e-9)

    def test_qft_without_swaps_permutes_outputs(self):
        with_swaps = qft_circuit(3).to_unitary()
        without_swaps = qft_circuit(3, include_swaps=False).to_unitary()
        assert not unitaries_equivalent(with_swaps, without_swaps)

    def test_qft_transpiles_to_brisbane_basis(self):
        circuit = qft_circuit(3)
        lowered = transpile(circuit, basis=("rz", "sx", "x", "cx"))
        assert unitaries_equivalent(lowered.to_unitary(), circuit.to_unitary())

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            qft_circuit(0)


class TestRandomCircuit:
    def test_reproducibility(self):
        first = random_circuit(4, 5, seed=3)
        second = random_circuit(4, 5, seed=3)
        assert [i.name for i in first.instructions] == [i.name for i in second.instructions]
        assert np.allclose(
            [i.params[0] for i in first.instructions if i.params],
            [i.params[0] for i in second.instructions if i.params],
        )

    def test_different_seeds_differ(self):
        first = random_circuit(4, 5, seed=1)
        second = random_circuit(4, 5, seed=2)
        params_first = [i.params[0] for i in first.instructions if i.params]
        params_second = [i.params[0] for i in second.instructions if i.params]
        assert params_first != params_second

    def test_transpiled_random_circuit_is_equivalent(self):
        circuit = random_circuit(3, 4, seed=9)
        lowered = transpile(circuit, basis=("rz", "rx", "cx"))
        assert unitaries_equivalent(lowered.to_unitary(), circuit.to_unitary())

    def test_normalized_output_state(self):
        state = final_state(random_circuit(5, 6, seed=0))
        assert state.is_normalized()

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            random_circuit(0, 3)
        with pytest.raises(ValueError):
            random_circuit(3, 0)
