"""Unit tests for gate matrices."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.quantum import gates


ANGLES = st.floats(min_value=-4 * math.pi, max_value=4 * math.pi,
                   allow_nan=False, allow_infinity=False)


class TestFixedGates:
    def test_all_fixed_gates_are_unitary(self):
        for name, matrix in gates.GATE_MATRICES.items():
            assert gates.is_unitary(matrix), f"{name} is not unitary"

    def test_pauli_algebra(self):
        assert np.allclose(gates.X @ gates.X, np.eye(2))
        assert np.allclose(gates.Y @ gates.Y, np.eye(2))
        assert np.allclose(gates.Z @ gates.Z, np.eye(2))
        assert np.allclose(gates.X @ gates.Y, 1j * gates.Z)

    def test_hadamard_maps_z_to_x(self):
        assert np.allclose(gates.H @ gates.Z @ gates.H, gates.X)

    def test_s_squared_is_z(self):
        assert np.allclose(gates.S @ gates.S, gates.Z)

    def test_t_squared_is_s(self):
        assert np.allclose(gates.T @ gates.T, gates.S)

    def test_sx_squared_is_x(self):
        assert np.allclose(gates.SX @ gates.SX, gates.X)

    def test_cx_flips_target_when_control_set(self):
        # Little endian: control is qubit 0 (LSB).  |control=1, target=0> = index 1.
        state = np.zeros(4, dtype=complex)
        state[1] = 1.0
        result = gates.CX @ state
        expected = np.zeros(4, dtype=complex)
        expected[3] = 1.0  # |11>
        assert np.allclose(result, expected)

    def test_cx_identity_when_control_clear(self):
        state = np.zeros(4, dtype=complex)
        state[2] = 1.0  # |control=0, target=1>
        assert np.allclose(gates.CX @ state, state)

    def test_swap_exchanges_basis_states(self):
        state = np.zeros(4, dtype=complex)
        state[1] = 1.0  # |q0=1, q1=0>
        expected = np.zeros(4, dtype=complex)
        expected[2] = 1.0  # |q0=0, q1=1>
        assert np.allclose(gates.SWAP @ state, expected)

    def test_cswap_swaps_targets_only_when_control_set(self):
        # Qubit order (control, a, b); control = LSB.
        # |control=1, a=1, b=0> = 1 + 2 = 3 -> |control=1, a=0, b=1> = 1 + 4 = 5.
        state = np.zeros(8, dtype=complex)
        state[3] = 1.0
        expected = np.zeros(8, dtype=complex)
        expected[5] = 1.0
        assert np.allclose(gates.CSWAP @ state, expected)
        # Control clear: nothing happens.
        state = np.zeros(8, dtype=complex)
        state[2] = 1.0
        assert np.allclose(gates.CSWAP @ state, state)

    def test_ccx_flips_target_only_when_both_controls_set(self):
        # Qubit order (c0, c1, target), c0 = LSB.
        state = np.zeros(8, dtype=complex)
        state[3] = 1.0  # c0=1, c1=1, t=0
        expected = np.zeros(8, dtype=complex)
        expected[7] = 1.0
        assert np.allclose(gates.CCX @ state, expected)
        state = np.zeros(8, dtype=complex)
        state[1] = 1.0  # only c0 set
        assert np.allclose(gates.CCX @ state, state)


class TestParametricGates:
    @given(theta=ANGLES)
    def test_rotations_are_unitary(self, theta):
        for factory in (gates.rx_matrix, gates.ry_matrix, gates.rz_matrix):
            assert gates.is_unitary(factory(theta))

    @given(theta=ANGLES)
    def test_rotation_inverse_is_negated_angle(self, theta):
        for factory in (gates.rx_matrix, gates.ry_matrix, gates.rz_matrix):
            product = factory(theta) @ factory(-theta)
            assert np.allclose(product, np.eye(2), atol=1e-9)

    def test_rx_pi_is_x_up_to_phase(self):
        assert np.allclose(gates.rx_matrix(math.pi), -1j * gates.X)

    def test_ry_pi_is_y_up_to_phase(self):
        assert np.allclose(gates.ry_matrix(math.pi), -1j * gates.Y)

    def test_rz_pi_is_z_up_to_phase(self):
        assert np.allclose(gates.rz_matrix(math.pi), -1j * gates.Z)

    def test_u_gate_special_cases(self):
        assert np.allclose(gates.u_matrix(0, 0, 0), np.eye(2))
        assert np.allclose(gates.u_matrix(math.pi / 2, 0, math.pi), gates.H, atol=1e-12)

    @given(theta=ANGLES)
    def test_controlled_rotation_block_structure(self, theta):
        crx = gates.standard_gate_matrix("crx", [theta])
        # Control clear (even indices in little endian with control = LSB):
        assert np.isclose(crx[0, 0], 1.0)
        assert np.isclose(crx[2, 2], 1.0)
        # Control set block equals rx(theta).
        block = crx[np.ix_([1, 3], [1, 3])]
        assert np.allclose(block, gates.rx_matrix(theta))

    def test_rzz_is_diagonal(self):
        matrix = gates.rzz_matrix(0.7)
        assert np.allclose(matrix, np.diag(np.diag(matrix)))


class TestStandardGateLookup:
    def test_lookup_fixed_gate(self):
        assert np.allclose(gates.standard_gate_matrix("h"), gates.H)

    def test_lookup_parametric_gate(self):
        assert np.allclose(gates.standard_gate_matrix("rx", [0.3]),
                           gates.rx_matrix(0.3))

    def test_unknown_gate_raises(self):
        with pytest.raises(KeyError):
            gates.standard_gate_matrix("nope")

    def test_fixed_gate_with_params_raises(self):
        with pytest.raises(ValueError):
            gates.standard_gate_matrix("x", [0.1])

    def test_parametric_gate_with_wrong_arity_raises(self):
        with pytest.raises(ValueError):
            gates.standard_gate_matrix("u", [0.1])

    def test_gate_num_qubits_consistent_with_matrices(self):
        for name, arity in gates.GATE_NUM_QUBITS.items():
            if name in gates.GATE_MATRICES:
                assert gates.GATE_MATRICES[name].shape == (2 ** arity, 2 ** arity)

    def test_is_unitary_rejects_non_square(self):
        assert not gates.is_unitary(np.ones((2, 3)))

    def test_is_unitary_rejects_singular(self):
        assert not gates.is_unitary(np.zeros((2, 2)))
