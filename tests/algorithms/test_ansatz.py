"""Tests for the random autoencoder ansatz."""

import numpy as np
import pytest

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.quantum.transpiler import unitaries_equivalent


class TestConstruction:
    def test_parameter_count(self):
        ansatz = RandomAutoencoderAnsatz(num_qubits=3, num_layers=2)
        assert ansatz.num_parameters == 12
        assert ansatz.angles_.shape == (12,)

    def test_angles_in_range(self):
        ansatz = RandomAutoencoderAnsatz(num_qubits=4, num_layers=3, seed=5)
        assert np.all(ansatz.angles_ >= 0.0)
        assert np.all(ansatz.angles_ <= 2.0 * np.pi)

    def test_seed_reproducibility(self):
        first = RandomAutoencoderAnsatz(3, seed=42)
        second = RandomAutoencoderAnsatz(3, seed=42)
        assert np.allclose(first.angles_, second.angles_)

    def test_different_seeds_differ(self):
        first = RandomAutoencoderAnsatz(3, seed=1)
        second = RandomAutoencoderAnsatz(3, seed=2)
        assert not np.allclose(first.angles_, second.angles_)

    def test_explicit_angles_accepted(self):
        angles = np.linspace(0, 1, 12)
        ansatz = RandomAutoencoderAnsatz(3, angles_=angles)
        assert np.allclose(ansatz.angles_, angles)

    def test_explicit_angles_wrong_shape_raise(self):
        with pytest.raises(ValueError):
            RandomAutoencoderAnsatz(3, angles_=np.zeros(5))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            RandomAutoencoderAnsatz(0)
        with pytest.raises(ValueError):
            RandomAutoencoderAnsatz(3, num_layers=0)
        with pytest.raises(ValueError):
            RandomAutoencoderAnsatz(3, entanglement="star")


class TestCircuits:
    def test_encoder_gate_content(self):
        ansatz = RandomAutoencoderAnsatz(3, num_layers=2, seed=0)
        counts = ansatz.encoder_circuit().count_ops()
        assert counts["rx"] == 6
        assert counts["rz"] == 6
        assert counts["cx"] == 4  # linear chain, 2 per layer

    def test_ring_entanglement_adds_wraparound(self):
        ansatz = RandomAutoencoderAnsatz(3, num_layers=1, entanglement="ring", seed=0)
        assert ansatz.encoder_circuit().count_ops()["cx"] == 3

    def test_full_entanglement_pairs(self):
        ansatz = RandomAutoencoderAnsatz(3, num_layers=1, entanglement="full", seed=0)
        assert ansatz.encoder_circuit().count_ops()["cx"] == 3

    def test_decoder_inverts_encoder(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=3)
        encoder = ansatz.encoder_circuit()
        decoder = ansatz.decoder_circuit()
        combined = encoder.copy()
        combined.compose(decoder)
        assert unitaries_equivalent(combined.to_unitary(), np.eye(8))

    def test_encoder_on_shifted_qubits(self):
        ansatz = RandomAutoencoderAnsatz(2, seed=4)
        circuit = ansatz.encoder_circuit(qubits=[3, 4], num_circuit_qubits=5)
        touched = {q for instr in circuit.instructions for q in instr.qubits}
        assert touched == {3, 4}

    def test_qubit_list_length_mismatch_raises(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=1)
        with pytest.raises(ValueError):
            ansatz.encoder_circuit(qubits=[0, 1])

    def test_encoder_unitary_is_unitary(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=9)
        unitary = ansatz.encoder_unitary()
        assert np.allclose(unitary @ unitary.conj().T, np.eye(8), atol=1e-9)

    def test_with_new_angles_keeps_structure(self):
        ansatz = RandomAutoencoderAnsatz(3, num_layers=4, entanglement="ring", seed=1)
        fresh = ansatz.with_new_angles(seed=2)
        assert fresh.num_layers == 4
        assert fresh.entanglement == "ring"
        assert not np.allclose(fresh.angles_, ansatz.angles_)
