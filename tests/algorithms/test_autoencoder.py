"""Tests for the full Quorum circuit assembly and the analytic fast path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.algorithms.autoencoder import (
    QuorumCircuitFactory,
    analytic_swap_test_p1,
    build_autoencoder_circuit,
    build_autoencoder_prefix,
    build_autoencoder_suffix,
)
from repro.algorithms.swap_test import p1_from_counts
from repro.encoding.amplitude import amplitudes_from_features
from repro.quantum.simulator import DensityMatrixSimulator, StatevectorSimulator


def sample_amplitudes(seed=0, num_qubits=3):
    rng = np.random.default_rng(seed)
    features = rng.uniform(0, 1.0 / np.sqrt(2 ** num_qubits),
                           size=2 ** num_qubits - 1)
    return amplitudes_from_features(features, num_qubits)


class TestCircuitAssembly:
    def test_circuit_dimensions(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=1)
        circuit = build_autoencoder_circuit(sample_amplitudes(), ansatz, 1)
        assert circuit.num_qubits == 7
        assert circuit.count_ops()["measure"] == 1
        assert circuit.count_ops()["cswap"] == 3
        assert circuit.count_ops()["reset"] == 1

    def test_compression_level_controls_reset_count(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=1)
        for level in range(4):
            circuit = build_autoencoder_circuit(sample_amplitudes(), ansatz, level)
            assert circuit.count_ops().get("reset", 0) == level

    def test_gate_level_encoding_has_no_initialize(self):
        ansatz = RandomAutoencoderAnsatz(2, seed=1)
        circuit = build_autoencoder_circuit(sample_amplitudes(1, 2), ansatz, 1,
                                            gate_level_encoding=True)
        assert "initialize" not in circuit.count_ops()
        assert circuit.count_ops()["ry"] > 0

    def test_wrong_amplitude_length_raises(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=1)
        with pytest.raises(ValueError):
            build_autoencoder_circuit(np.array([1.0, 0.0]), ansatz, 1)

    def test_invalid_compression_level_raises(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=1)
        with pytest.raises(ValueError):
            build_autoencoder_circuit(sample_amplitudes(), ansatz, 4)

    def test_factory_accessors(self):
        factory = QuorumCircuitFactory(RandomAutoencoderAnsatz(3, seed=2))
        assert factory.num_qubits == 3
        assert factory.total_qubits == 7


class TestPrefixSuffixSplit:
    """The prefix/suffix builders must compose into exactly the full circuit."""

    @pytest.mark.parametrize("gate_level", [False, True])
    @pytest.mark.parametrize("level", [0, 1, 3])
    def test_prefix_plus_suffix_equals_full_circuit(self, gate_level, level):
        ansatz = RandomAutoencoderAnsatz(3, seed=4)
        amplitudes = sample_amplitudes(7)
        full = build_autoencoder_circuit(amplitudes, ansatz, level,
                                         gate_level_encoding=gate_level)
        prefix = build_autoencoder_prefix(amplitudes, ansatz,
                                          gate_level_encoding=gate_level)
        suffix = build_autoencoder_suffix(ansatz, level)
        assert full.instructions == prefix.instructions + suffix.instructions

    def test_prefix_is_level_independent_and_suffix_is_sample_independent(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=4)
        prefix = build_autoencoder_prefix(sample_amplitudes(7), ansatz)
        # The prefix carries the sample data but no reset/decoder/SWAP block ...
        ops = prefix.count_ops()
        assert "reset" not in ops and "cswap" not in ops and "measure" not in ops
        # ... while the suffix carries the level but no sample data.
        suffix = build_autoencoder_suffix(ansatz, 2, measure=False)
        assert suffix.count_ops()["reset"] == 2
        assert suffix.count_ops()["cswap"] == 3
        assert all(instruction.state is None
                   for instruction in suffix.instructions)

    def test_suffix_rejects_out_of_range_level(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=4)
        with pytest.raises(ValueError, match="compression level"):
            build_autoencoder_suffix(ansatz, 4)

    def test_factory_exposes_the_split(self):
        factory = QuorumCircuitFactory(RandomAutoencoderAnsatz(2, seed=2))
        amplitudes = sample_amplitudes(3, 2)
        combined = factory.prefix(amplitudes).compose(factory.suffix(1))
        assert combined.instructions == factory.circuit(amplitudes, 1).instructions


class TestAnalyticFastPath:
    def test_zero_compression_gives_zero_p1(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=5)
        assert analytic_swap_test_p1(sample_amplitudes(), ansatz, 0) == pytest.approx(0.0)

    def test_p1_bounded_by_half(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=6)
        for level in (1, 2, 3):
            p1 = analytic_swap_test_p1(sample_amplitudes(3), ansatz, level)
            assert 0.0 <= p1 <= 0.5

    def test_more_compression_does_not_decrease_p1_on_average(self):
        values = {1: [], 2: []}
        for seed in range(12):
            ansatz = RandomAutoencoderAnsatz(3, seed=seed)
            amplitudes = sample_amplitudes(seed)
            for level in (1, 2):
                values[level].append(analytic_swap_test_p1(amplitudes, ansatz, level))
        assert np.mean(values[2]) >= np.mean(values[1]) - 1e-6

    @given(seed=st.integers(min_value=0, max_value=200),
           level=st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_analytic_matches_density_matrix_simulation(self, seed, level):
        ansatz = RandomAutoencoderAnsatz(3, seed=seed)
        amplitudes = sample_amplitudes(seed)
        analytic = analytic_swap_test_p1(amplitudes, ansatz, level)
        circuit = build_autoencoder_circuit(amplitudes, ansatz, level, measure=False)
        final = DensityMatrixSimulator().evolve(circuit)
        simulated = final.probability_of_outcome(6, 1)
        assert analytic == pytest.approx(simulated, abs=1e-9)

    def test_analytic_matches_statevector_sampling(self):
        ansatz = RandomAutoencoderAnsatz(2, seed=11)
        amplitudes = sample_amplitudes(4, 2)
        analytic = analytic_swap_test_p1(amplitudes, ansatz, 1)
        circuit = build_autoencoder_circuit(amplitudes, ansatz, 1, measure=True)
        result = StatevectorSimulator(seed=3, max_trajectories=200).run(circuit,
                                                                        shots=4000)
        sampled = p1_from_counts(result.counts)
        assert abs(sampled - analytic) < 0.05

    def test_identical_samples_have_identical_p1(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=8)
        amplitudes = sample_amplitudes(9)
        first = analytic_swap_test_p1(amplitudes, ansatz, 2)
        second = analytic_swap_test_p1(amplitudes, ansatz, 2)
        assert first == pytest.approx(second)

    def test_wrong_amplitude_length_raises(self):
        ansatz = RandomAutoencoderAnsatz(3, seed=1)
        with pytest.raises(ValueError):
            analytic_swap_test_p1(np.array([1.0, 0.0]), ansatz, 1)
