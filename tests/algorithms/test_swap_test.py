"""Tests for the SWAP test construction and readout helpers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.swap_test import (
    append_swap_test,
    overlap_from_counts,
    overlap_from_p1,
    p1_from_counts,
    swap_test_circuit,
)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.simulator import DensityMatrixSimulator


def _encode_pair(theta_a, theta_b, register_size=1):
    """Circuit with two single-qubit registers in RY(theta) states plus ancilla 0."""
    circuit = QuantumCircuit(2 * register_size + 1, 1)
    circuit.ry(theta_a, 1)
    circuit.ry(theta_b, 2)
    return circuit


class TestSwapTestConstruction:
    def test_standalone_circuit_structure(self):
        circuit = swap_test_circuit(3)
        counts = circuit.count_ops()
        assert counts["h"] == 2
        assert counts["cswap"] == 3
        assert counts["measure"] == 1

    def test_register_size_must_be_positive(self):
        with pytest.raises(ValueError):
            swap_test_circuit(0)

    def test_register_length_mismatch_raises(self):
        circuit = QuantumCircuit(4)
        with pytest.raises(ValueError):
            append_swap_test(circuit, 0, [1], [2, 3])

    def test_ancilla_cannot_be_in_register(self):
        circuit = QuantumCircuit(3)
        with pytest.raises(ValueError):
            append_swap_test(circuit, 1, [1], [2])

    def test_overlapping_registers_raise(self):
        circuit = QuantumCircuit(3)
        with pytest.raises(ValueError):
            append_swap_test(circuit, 0, [1], [1])

    def test_measure_false_skips_measurement(self):
        circuit = QuantumCircuit(3, 1)
        append_swap_test(circuit, 0, [1], [2], measure=False)
        assert "measure" not in circuit.count_ops()


class TestSwapTestPhysics:
    def test_identical_states_give_p1_zero(self):
        circuit = _encode_pair(0.7, 0.7)
        append_swap_test(circuit, 0, [1], [2])
        result = DensityMatrixSimulator(seed=0).run(circuit, shots=2048)
        assert result.counts.get("1", 0) == 0

    def test_orthogonal_states_give_p1_half(self):
        circuit = _encode_pair(0.0, math.pi)
        append_swap_test(circuit, 0, [1], [2])
        result = DensityMatrixSimulator(seed=1).run(circuit, shots=8192)
        p1 = result.counts.get("1", 0) / 8192
        assert abs(p1 - 0.5) < 0.03

    @given(theta_a=st.floats(min_value=0.0, max_value=math.pi),
           theta_b=st.floats(min_value=0.0, max_value=math.pi))
    @settings(max_examples=15, deadline=None)
    def test_p1_matches_analytic_overlap(self, theta_a, theta_b):
        circuit = _encode_pair(theta_a, theta_b)
        append_swap_test(circuit, 0, [1], [2], measure=False)
        final = DensityMatrixSimulator().evolve(circuit)
        p1 = final.probability_of_outcome(0, 1)
        overlap = math.cos((theta_a - theta_b) / 2.0) ** 2
        assert abs(p1 - (1.0 - overlap) / 2.0) < 1e-9

    def test_two_qubit_registers(self):
        circuit = QuantumCircuit(5, 1)
        circuit.h(1).h(2)
        circuit.h(3).h(4)
        append_swap_test(circuit, 0, [1, 2], [3, 4], measure=False)
        final = DensityMatrixSimulator().evolve(circuit)
        assert final.probability_of_outcome(0, 1) < 1e-9


class TestReadoutHelpers:
    def test_overlap_from_p1_bounds(self):
        assert overlap_from_p1(0.0) == 1.0
        assert overlap_from_p1(0.5) == 0.0
        assert overlap_from_p1(0.7) == 0.0  # clipped

    def test_p1_from_counts(self):
        counts = {"0": 75, "1": 25}
        assert p1_from_counts(counts) == pytest.approx(0.25)

    def test_p1_from_counts_multibit_register(self):
        counts = {"10": 30, "11": 10, "00": 60}
        assert p1_from_counts(counts, clbit=0) == pytest.approx(0.1)
        assert p1_from_counts(counts, clbit=1) == pytest.approx(0.4)

    def test_empty_counts_raise(self):
        with pytest.raises(ValueError):
            p1_from_counts({})

    def test_overlap_from_counts(self):
        counts = {"0": 900, "1": 100}
        assert overlap_from_counts(counts) == pytest.approx(0.8)
