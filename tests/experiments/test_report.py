"""Tests for the full-evaluation report generator."""

from repro.experiments.common import ExperimentSettings
from repro.experiments.report import (
    render_report,
    run_full_evaluation,
    write_report,
)

TINY = ExperimentSettings(ensemble_groups=3, shots=None, seed=9,
                          noisy_ensemble_groups=1, noisy_subsample=25,
                          qnn_epochs=2)


class TestFullEvaluation:
    def test_report_generation_end_to_end(self, tmp_path):
        report = run_full_evaluation(TINY, include_noisy=False)

        rendered = render_report(report)
        for heading in ("Table I", "Fig. 8", "Fig. 9", "Fig. 10", "Table II"):
            assert heading in rendered

        markdown_path = write_report(report, tmp_path / "report.md",
                                     json_path=tmp_path / "report.json")
        assert markdown_path.exists()
        assert (tmp_path / "report.json").exists()
        assert "Table II" in markdown_path.read_text(encoding="utf-8")

        payload = report.to_jsonable()
        assert set(payload) == {"settings", "table1", "fig8", "fig9", "fig10",
                                "table2"}
        assert payload["settings"]["ensemble_groups"] == 3
        assert len(payload["fig8"]["entries"]) == 4
