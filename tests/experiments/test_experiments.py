"""Small-scale tests of the experiment runners (full scale lives in benchmarks/)."""

import pytest

from repro.experiments.common import (
    ExperimentSettings,
    markdown_table,
    run_qnn_baseline,
    run_quorum,
    stratified_subsample,
)
from repro.experiments.fig8 import format_fig8, run_fig8
from repro.experiments.fig9 import format_fig9, run_fig9
from repro.experiments.fig10 import format_fig10, run_fig10
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.data.registry import load_dataset


TINY = ExperimentSettings(ensemble_groups=4, shots=None, seed=5,
                          noisy_ensemble_groups=1, noisy_subsample=30,
                          qnn_epochs=4)


class TestCommon:
    def test_quorum_config_uses_table1_probability(self):
        config = TINY.quorum_config("letter")
        assert config.bucket_probability == 0.95
        assert config.anomaly_fraction_estimate == pytest.approx(33 / 533)

    def test_run_quorum_returns_scores_and_detector(self):
        dataset = load_dataset("power_plant", seed=TINY.seed).subset(range(60))
        scores, detector = run_quorum(dataset, TINY.quorum_config("power_plant"))
        assert scores.shape == (60,)
        assert detector.is_fitted

    def test_stratified_subsample_keeps_anomalies(self):
        dataset = load_dataset("pen_global", seed=1)
        subsample = stratified_subsample(dataset, 80, seed=2)
        assert subsample.num_samples == 80
        assert subsample.num_anomalies >= 1

    def test_stratified_subsample_full_size_is_identity(self):
        dataset = load_dataset("breast_cancer", seed=1)
        assert stratified_subsample(dataset, 10_000, seed=0) is dataset

    def test_markdown_table_shape(self):
        table = markdown_table(["a", "b"], [(1, 2), (3, 4)])
        assert table.count("\n") == 3
        assert "| 3 | 4 |" in table

    def test_qnn_baseline_runs(self):
        dataset = load_dataset("power_plant", seed=TINY.seed).subset(range(100))
        predictions, report = run_qnn_baseline(dataset, TINY)
        assert predictions.shape == (100,)
        assert 0.0 <= report.f1 <= 1.0


class TestTable1:
    def test_rows_cover_all_datasets(self):
        result = run_table1()
        assert len(result.rows) == 4
        assert result.row_for("letter").target_probability == 0.95

    def test_bucket_probability_achieved(self):
        for row in run_table1().rows:
            assert row.achieved_probability >= row.target_probability - 1e-9

    def test_format_contains_display_names(self):
        formatted = format_table1(run_table1())
        assert "Breast Cancer" in formatted
        assert "Power Plant" in formatted

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            run_table1().row_for("mnist")


class TestFig8:
    def test_single_dataset_entry(self):
        result = run_fig8(TINY, dataset_names=["power_plant"])
        entry = result.entry_for("power_plant")
        assert 0.0 <= entry.quorum.f1 <= 1.0
        assert 0.0 <= entry.qnn.f1 <= 1.0
        assert isinstance(result.average_f1_advantage, float)

    def test_format_lists_both_methods(self):
        result = run_fig8(TINY, dataset_names=["power_plant"])
        formatted = format_fig8(result)
        assert "Quorum" in formatted
        assert "QNN" in formatted

    def test_missing_entry_raises(self):
        result = run_fig8(TINY, dataset_names=["power_plant"])
        with pytest.raises(KeyError):
            result.entry_for("letter")


class TestFig9:
    def test_noiseless_only(self):
        result = run_fig9(TINY, dataset_names=["power_plant"], include_noisy=False)
        entry = result.entry_for("power_plant")
        assert entry.noisy is None
        assert entry.noiseless.detection_rates[-1] == pytest.approx(1.0)
        assert entry.degradation_at(0.2) is None

    def test_with_noisy_subsample(self):
        result = run_fig9(TINY, dataset_names=["power_plant"], include_noisy=True)
        entry = result.entry_for("power_plant")
        assert entry.noisy is not None
        assert entry.noisy.detection_rates[-1] == pytest.approx(1.0)
        formatted = format_fig9(result)
        assert "noisy (Brisbane)" in formatted


class TestFig10:
    def test_summary_statistics(self):
        result = run_fig10(TINY, shots=2048)
        assert result.dataset == "breast_cancer"
        assert result.num_anomalies == 10
        assert len(result.sorted_scores) == 367
        assert result.anomaly_mean_score > result.normal_mean_score
        assert "Separation ratio" in format_fig10(result)


class TestTable2:
    def test_shape_and_lookup(self):
        result = run_table2(TINY, dataset_names=["power_plant"],
                            probabilities=(0.5, 0.75))
        assert result.probabilities == (0.5, 0.75)
        assert len(result.f1_scores["power_plant"]) == 2
        assert isinstance(result.f1_for("power_plant", 0.75), float)
        assert result.best_probability("power_plant") in (0.5, 0.75)

    def test_bucket_size_grows_with_probability(self):
        result = run_table2(TINY, dataset_names=["power_plant"],
                            probabilities=(0.5, 0.95))
        sizes = result.bucket_sizes["power_plant"]
        assert sizes[1] > sizes[0]

    def test_format_contains_probability_headers(self):
        result = run_table2(TINY, dataset_names=["power_plant"],
                            probabilities=(0.5, 0.75))
        assert "p = 0.75" in format_table2(result)
