"""Small-scale tests of the ablation-study runners."""

import pytest

from repro.experiments.ablations import (
    run_baseline_comparison,
    run_ensemble_scaling,
    run_register_size_ablation,
    run_stability_analysis,
)
from repro.experiments.common import ExperimentSettings

TINY = ExperimentSettings(ensemble_groups=3, shots=None, seed=13, qnn_epochs=2)


class TestEnsembleScaling:
    def test_sweep_structure(self):
        result = run_ensemble_scaling(TINY, dataset_name="power_plant",
                                      ensemble_sizes=(2, 5),
                                      shot_counts=(128, None),
                                      shots_ensemble=3)
        assert set(result.f1_by_ensemble_size) == {2, 5}
        assert set(result.f1_by_shots) == {128, None}
        assert all(0.0 <= value <= 1.0 for value in result.f1_by_ensemble_size.values())
        assert isinstance(result.diminishing_returns(), bool)


class TestRegisterSize:
    def test_two_vs_three_qubits(self):
        result = run_register_size_ablation(TINY, dataset_name="power_plant",
                                            register_sizes=(2, 3))
        assert result.features_per_circuit == {2: 3, 3: 7}
        assert result.circuit_qubits == {2: 5, 3: 7}
        assert set(result.f1_by_num_qubits) == {2, 3}


class TestBaselineComparison:
    def test_quorum_and_all_baselines_scored(self):
        result = run_baseline_comparison(TINY, dataset_names=("power_plant",))
        methods = result.f1_scores["power_plant"]
        assert "Quorum" in methods
        assert "Isolation Forest" in methods
        assert "Local Outlier Factor" in methods
        assert len(methods) == 7
        rank = result.quorum_rank("power_plant")
        assert 1 <= rank <= 7


class TestStability:
    def test_curve_and_agreement(self):
        result = run_stability_analysis(TINY, dataset_name="power_plant",
                                        checkpoints=(2, 4), num_seeds=2)
        assert set(result.stability_curve) == {2, 4}
        assert result.stability_curve[4] == pytest.approx(1.0)
        assert 0.0 <= result.cross_seed_agreement["mean_top_k_jaccard"] <= 1.0
        assert result.converged(threshold=0.99)
