"""Tests for JSON serialization helpers."""

from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.utils.serialization import (
    coerce_float_array,
    coerce_int_array,
    dataclass_to_dict,
    load_json,
    save_json,
    to_jsonable,
)


@dataclass(frozen=True)
class _Inner:
    values: tuple
    weight: float


@dataclass(frozen=True)
class _Outer:
    name: str
    inner: _Inner
    matrix: np.ndarray


class TestToJsonable:
    def test_scalars_pass_through(self):
        assert to_jsonable(3) == 3
        assert to_jsonable(2.5) == 2.5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True

    def test_numpy_scalars_converted(self):
        assert to_jsonable(np.int64(4)) == 4
        assert isinstance(to_jsonable(np.float32(0.5)), float)
        assert to_jsonable(np.bool_(True)) is True

    def test_numpy_arrays_become_lists(self):
        assert to_jsonable(np.array([1, 2, 3])) == [1, 2, 3]
        assert to_jsonable(np.array([[1.0, 2.0]])) == [[1.0, 2.0]]

    def test_nested_dataclasses(self):
        outer = _Outer(name="run", inner=_Inner(values=(1, 2), weight=0.5),
                       matrix=np.eye(2))
        converted = to_jsonable(outer)
        assert converted["inner"]["values"] == [1, 2]
        assert converted["matrix"] == [[1.0, 0.0], [0.0, 1.0]]

    def test_dict_keys_become_strings(self):
        assert to_jsonable({1: "a"}) == {"1": "a"}

    def test_sets_become_lists(self):
        assert sorted(to_jsonable({3, 1, 2})) == [1, 2, 3]

    def test_paths_become_strings(self):
        assert to_jsonable(Path("/tmp/x.json")) == "/tmp/x.json"

    def test_unknown_objects_fall_back_to_repr(self):
        class Strange:
            def __repr__(self):
                return "<strange>"

        assert to_jsonable(Strange()) == "<strange>"


class TestDataclassToDict:
    def test_requires_dataclass_instance(self):
        with pytest.raises(TypeError):
            dataclass_to_dict({"not": "a dataclass"})
        with pytest.raises(TypeError):
            dataclass_to_dict(_Inner)

    def test_round_trip(self):
        inner = _Inner(values=(1,), weight=1.5)
        assert dataclass_to_dict(inner) == {"values": [1], "weight": 1.5}


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        payload = {"scores": np.array([0.1, 0.9]), "config": _Inner((1, 2), 0.3)}
        path = save_json(payload, tmp_path / "results" / "run.json")
        assert path.exists()
        loaded = load_json(path)
        assert loaded["scores"] == [0.1, 0.9]
        assert loaded["config"]["weight"] == 0.3


class TestCoerceArrays:
    def test_float_array_round_trip(self):
        array = coerce_float_array([0.25, 1.5], "x", shape=(2,))
        assert array.dtype == np.float64
        assert np.array_equal(array, [0.25, 1.5])

    def test_float_array_rejects_strings(self):
        with pytest.raises(TypeError, match="numeric"):
            coerce_float_array(["a", "b"], "x")

    def test_float_array_rejects_numeric_strings(self):
        with pytest.raises(TypeError, match="numeric"):
            coerce_float_array(["1.5", "2"], "x")

    def test_float_array_rejects_booleans(self):
        with pytest.raises(TypeError, match="numeric"):
            coerce_float_array([True, False], "x")

    def test_float_array_rejects_non_finite(self):
        with pytest.raises(TypeError, match="non-finite"):
            coerce_float_array([0.1, float("nan")], "x")

    def test_float_array_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            coerce_float_array([0.1, 0.2], "x", shape=(3,))

    def test_float_array_rejects_ragged_input(self):
        with pytest.raises(TypeError):
            coerce_float_array([[0.1], [0.2, 0.3]], "x")

    def test_int_array_round_trip(self):
        array = coerce_int_array([1, 2, 3], "x")
        assert array.dtype == np.int64
        assert np.array_equal(array, [1, 2, 3])

    def test_int_array_rejects_fractional_values(self):
        with pytest.raises(TypeError, match="non-integer"):
            coerce_int_array([1.5], "x")
