"""Tests for the stopwatch and seed-derivation helpers."""

import time

import pytest

from repro.utils.seeding import spawn_seeds, stable_hash_seed
from repro.utils.timing import Stopwatch, timed


class TestStopwatch:
    def test_measures_elapsed_time(self):
        watch = Stopwatch()
        with watch.measure("sleep"):
            time.sleep(0.01)
        assert watch.seconds("sleep") >= 0.009
        assert watch.total_seconds() == pytest.approx(watch.seconds("sleep"))

    def test_accumulates_repeated_labels(self):
        watch = Stopwatch()
        for _ in range(3):
            with watch.measure("step"):
                time.sleep(0.002)
        assert watch.seconds("step") >= 0.005

    def test_unknown_label_is_zero(self):
        assert Stopwatch().seconds("missing") == 0.0

    def test_summary_rounds_values(self):
        watch = Stopwatch()
        with watch.measure("a"):
            pass
        assert set(watch.summary()) == {"a"}

    def test_timed_context_prints(self):
        messages = []
        with timed("block", printer=messages.append):
            time.sleep(0.001)
        assert len(messages) == 1
        assert messages[0].startswith("block:")


class TestSeeding:
    def test_spawn_is_deterministic(self):
        assert spawn_seeds(7, 4) == spawn_seeds(7, 4)

    def test_spawn_produces_distinct_values(self):
        seeds = spawn_seeds(1, 64)
        assert len(set(seeds)) == 64

    def test_spawn_requires_positive_count(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, 0)

    def test_stable_hash_seed_deterministic(self):
        assert stable_hash_seed("fig8", "letter", 3) == stable_hash_seed("fig8",
                                                                         "letter", 3)

    def test_stable_hash_seed_sensitive_to_parts(self):
        assert stable_hash_seed("fig8", "letter") != stable_hash_seed("fig8", "pen")

    def test_stable_hash_seed_respects_bit_width(self):
        for _ in range(5):
            assert stable_hash_seed("x", bits=8) < 256

    def test_stable_hash_seed_invalid_bits(self):
        with pytest.raises(ValueError):
            stable_hash_seed("x", bits=0)
