"""Tests for the quorum-repro command-line interface."""

import threading

import numpy as np
import pytest

from repro.cli import _parse_model_specs, build_parser, main
from repro.core.detector import QuorumDetector
from repro.data.dataset import Dataset
from repro.data.io import load_dataset_csv, save_dataset_csv


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_detect_requires_data_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect"])

    def test_dataset_and_csv_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--dataset", "letter",
                                       "--csv", "x.csv"])

    def test_experiment_artifact_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig42"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "Breast Cancer" in output
        assert "power_plant" in output

    def test_detect_on_builtin_dataset(self, capsys):
        exit_code = main(["detect", "--dataset", "power_plant",
                          "--ensembles", "4", "--shots", "0", "--top", "3",
                          "--seed", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Precision" in output
        assert "score" in output

    def test_detect_on_csv_without_labels(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        dataset = Dataset("toy", rng.normal(size=(40, 4)),
                          np.zeros(40, dtype=int))
        path = save_dataset_csv(dataset, tmp_path / "toy.csv")
        exit_code = main(["detect", "--csv", str(path), "--ensembles", "3",
                          "--shots", "0", "--top", "2"])
        assert exit_code == 0
        assert "Top 2 samples" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        exit_code = main(["compare", "--dataset", "power_plant",
                          "--ensembles", "4", "--seed", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Isolation Forest" in output
        assert "Quorum (quantum)" in output

    def test_compare_rejects_unlabeled_csv(self, tmp_path, capsys):
        dataset = Dataset("toy", np.random.default_rng(1).normal(size=(20, 3)),
                          np.zeros(20, dtype=int))
        path = save_dataset_csv(dataset, tmp_path / "toy.csv")
        exit_code = main(["compare", "--csv", str(path), "--ensembles", "3"])
        assert exit_code == 2

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Pr[Anomaly in Bucket]" in capsys.readouterr().out

    def test_fit_then_score_round_trip(self, tmp_path, capsys):
        rng = np.random.default_rng(3)
        dataset = Dataset("toy", rng.normal(size=(30, 4)),
                          np.zeros(30, dtype=int))
        csv_path = save_dataset_csv(dataset, tmp_path / "toy.csv")
        model_path = tmp_path / "model.json"
        assert main(["fit", "--csv", str(csv_path), "--save-model",
                     str(model_path), "--ensembles", "3", "--shots", "128",
                     "--seed", "4"]) == 0
        assert "model saved to" in capsys.readouterr().out
        assert model_path.exists()

        assert main(["score", "--model", str(model_path), "--csv",
                     str(csv_path), "--top", "3"]) == 0
        output = capsys.readouterr().out
        assert "3 frozen members" in output
        assert "Top 3 samples" in output

    def test_score_replay_matches_fit_bitwise(self, tmp_path, capsys):
        """The CLI replay path reproduces the in-process fit scores."""
        rng = np.random.default_rng(9)
        dataset = Dataset("toy", rng.normal(size=(25, 4)),
                          np.zeros(25, dtype=int))
        csv_path = save_dataset_csv(dataset, tmp_path / "toy.csv")
        model_path = tmp_path / "model.json"
        assert main(["fit", "--csv", str(csv_path), "--save-model",
                     str(model_path), "--ensembles", "2", "--shots", "256",
                     "--seed", "6"]) == 0
        capsys.readouterr()
        assert main(["score", "--model", str(model_path), "--csv",
                     str(csv_path), "--mode", "replay", "--top", "2"]) == 0
        assert "mode=replay" in capsys.readouterr().out

    def test_score_unlabeled_csv_without_label_column(self, tmp_path, capsys):
        """The primary serving flow: score a CSV holding only features."""
        rng = np.random.default_rng(5)
        train = Dataset("train", rng.normal(size=(20, 3)),
                        np.zeros(20, dtype=int))
        train_csv = save_dataset_csv(train, tmp_path / "train.csv")
        model_path = tmp_path / "model.json"
        assert main(["fit", "--csv", str(train_csv), "--save-model",
                     str(model_path), "--ensembles", "2", "--shots", "64",
                     "--seed", "1"]) == 0
        capsys.readouterr()
        unlabeled = tmp_path / "new.csv"
        unlabeled.write_text("a,b,c\n" + "\n".join(
            ",".join(f"{value:.3f}" for value in row)
            for row in rng.normal(size=(5, 3))) + "\n")
        # Without --no-labels the missing label column is a clean exit 2 ...
        assert main(["score", "--model", str(model_path), "--csv",
                     str(unlabeled)]) == 2
        assert "--no-labels" in capsys.readouterr().err
        # ... and with it the file scores as pure features.
        assert main(["score", "--model", str(model_path), "--csv",
                     str(unlabeled), "--no-labels", "--top", "2"]) == 0
        assert "Scored 5 samples" in capsys.readouterr().out

    def test_score_with_missing_model(self, tmp_path, capsys):
        rng = np.random.default_rng(3)
        dataset = Dataset("toy", rng.normal(size=(10, 3)),
                          np.zeros(10, dtype=int))
        csv_path = save_dataset_csv(dataset, tmp_path / "toy.csv")
        exit_code = main(["score", "--model", str(tmp_path / "nope.json"),
                          "--csv", str(csv_path)])
        assert exit_code == 2
        assert "cannot load model" in capsys.readouterr().err

    def test_score_with_wrong_feature_count(self, tmp_path, capsys):
        rng = np.random.default_rng(3)
        train = Dataset("train", rng.normal(size=(20, 4)),
                        np.zeros(20, dtype=int))
        other = Dataset("other", rng.normal(size=(8, 6)),
                        np.zeros(8, dtype=int))
        train_csv = save_dataset_csv(train, tmp_path / "train.csv")
        other_csv = save_dataset_csv(other, tmp_path / "other.csv")
        model_path = tmp_path / "model.json"
        assert main(["fit", "--csv", str(train_csv), "--save-model",
                     str(model_path), "--ensembles", "2", "--shots", "64",
                     "--seed", "1"]) == 0
        capsys.readouterr()
        exit_code = main(["score", "--model", str(model_path), "--csv",
                          str(other_csv)])
        assert exit_code == 2
        assert "scoring failed" in capsys.readouterr().err

    def test_serve_with_missing_model(self, tmp_path, capsys):
        exit_code = main(["serve", "--model", str(tmp_path / "nope.json"),
                          "--port", "0"])
        assert exit_code == 2
        assert "cannot load model" in capsys.readouterr().err

    def test_serve_with_invalid_batching_flags(self, tmp_path, capsys):
        rng = np.random.default_rng(2)
        dataset = Dataset("toy", rng.normal(size=(12, 3)),
                          np.zeros(12, dtype=int))
        csv_path = save_dataset_csv(dataset, tmp_path / "toy.csv")
        model_path = tmp_path / "model.json"
        assert main(["fit", "--csv", str(csv_path), "--save-model",
                     str(model_path), "--ensembles", "1", "--shots", "64",
                     "--seed", "1"]) == 0
        capsys.readouterr()
        exit_code = main(["serve", "--model", str(model_path), "--port", "0",
                          "--max-batch-samples", "0"])
        assert exit_code == 2
        assert "cannot start server" in capsys.readouterr().err

    def test_fit_unlabeled_csv_without_label_column(self, tmp_path, capsys):
        unlabeled = tmp_path / "plain.csv"
        unlabeled.write_text("a,b\n1.0,2.0\n3.0,4.0\n5.0,6.0\n7.0,8.0\n")
        exit_code = main(["fit", "--csv", str(unlabeled), "--save-model",
                          str(tmp_path / "m.json")])
        assert exit_code == 2
        assert "--no-labels" in capsys.readouterr().err
        assert main(["fit", "--csv", str(unlabeled), "--no-labels",
                     "--save-model", str(tmp_path / "m.json"),
                     "--ensembles", "1", "--shots", "64"]) == 0

    def test_fit_requires_save_model_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fit", "--dataset", "letter"])

    def test_report_to_file(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        exit_code = main(["report", "--ensembles", "3", "--seed", "4",
                          "--skip-noisy", "--output", str(output)])
        assert exit_code == 0
        assert output.exists()
        assert "Table II" in output.read_text(encoding="utf-8")


class TestModelSpecs:
    def test_valid_specs_build_a_mapping(self):
        assert _parse_model_specs(["a=x.json", "b=y.json"]) == {
            "a": "x.json", "b": "y.json"}
        assert _parse_model_specs(None) == {}

    @pytest.mark.parametrize("specs, match", [
        (["bare-path.json"], "must be ID=PATH"),
        (["=x.json"], "empty id or path"),
        (["a="], "empty id or path"),
        (["a=x.json", "a=y.json"], "given twice"),
    ])
    def test_invalid_specs_raise(self, specs, match):
        with pytest.raises(ValueError, match=match):
            _parse_model_specs(specs)

    def test_serve_without_any_model_is_exit_2(self, capsys):
        assert main(["serve", "--port", "0"]) == 2
        assert "--model and/or --models" in capsys.readouterr().err

    def test_serve_with_malformed_models_spec_is_exit_2(self, capsys):
        assert main(["serve", "--models", "bare-path.json",
                     "--port", "0"]) == 2
        assert "cannot start server" in capsys.readouterr().err


@pytest.fixture(scope="module")
def jobs_server(tmp_path_factory):
    """A live runtime server plus the CSV its model was fitted on."""
    from repro.serving.artifact import save_model
    from repro.serving.server import build_server

    tmp_path = tmp_path_factory.mktemp("jobs_cli")
    rng = np.random.default_rng(6)
    dataset = Dataset("toy", rng.normal(size=(20, 4)),
                      np.zeros(20, dtype=int))
    csv_path = save_dataset_csv(dataset, tmp_path / "toy.csv")
    features = load_dataset_csv(csv_path).features_only()
    detector = QuorumDetector(ensemble_groups=2, seed=8, shots=256)
    detector.fit(features)
    model_path = save_model(detector, tmp_path / "model.json")

    server = build_server(model_path, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield {"server": f"http://{host}:{port}", "csv": str(csv_path),
           "detector": detector}
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


class TestJobsCommand:
    def test_submit_wait_replay_prints_fit_scores(self, jobs_server, capsys):
        import json

        exit_code = main(["jobs", "submit", "--server",
                          jobs_server["server"], "--kind", "replay_dataset",
                          "--csv", jobs_server["csv"], "--wait",
                          "--poll-interval", "0.05"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "submitted" in output
        assert "finished: succeeded" in output
        payload = json.loads(output[output.index("{"):])
        assert np.array_equal(np.array(payload["scores"]),
                              jobs_server["detector"].anomaly_scores())

    def test_submit_then_status_result_cancel(self, jobs_server, capsys):
        assert main(["jobs", "submit", "--server", jobs_server["server"],
                     "--kind", "score", "--csv", jobs_server["csv"]]) == 0
        job_id = capsys.readouterr().out.split()[1]

        import time
        deadline = time.monotonic() + 30
        while main(["jobs", "status", "--server", jobs_server["server"],
                    job_id]) == 0:
            status_output = capsys.readouterr().out
            if '"status": "succeeded"' in status_output:
                break
            assert time.monotonic() < deadline
            time.sleep(0.05)

        assert main(["jobs", "result", "--server", jobs_server["server"],
                     job_id]) == 0
        assert '"scores"' in capsys.readouterr().out
        # Cancelling a finished job is an acknowledged no-op.
        assert main(["jobs", "cancel", "--server", jobs_server["server"],
                     job_id]) == 0
        assert "succeeded" in capsys.readouterr().out

    def test_unknown_job_id_prints_envelope(self, jobs_server, capsys):
        exit_code = main(["jobs", "status", "--server",
                          jobs_server["server"], "deadbeef"])
        assert exit_code == 2
        assert "server error [job_not_found]" in capsys.readouterr().err

    def test_bad_params_json_fails_before_any_request(self, jobs_server,
                                                      capsys):
        exit_code = main(["jobs", "submit", "--server", "http://127.0.0.1:1",
                          "--kind", "score", "--csv", jobs_server["csv"],
                          "--params", "{not json"])
        assert exit_code == 2
        assert "--params is not valid JSON" in capsys.readouterr().err

    def test_unreachable_server_is_exit_2(self, jobs_server, capsys):
        exit_code = main(["jobs", "status", "--server", "http://127.0.0.1:1",
                          "deadbeef"])
        assert exit_code == 2
        assert "cannot reach server" in capsys.readouterr().err


class TestFlagPlumbing:
    """`--simulation-backend` / `--executor` / `--jobs` must reach QuorumConfig
    unchanged, and a fixed seed must score identically whichever combination
    executes the run."""

    def capture_config(self, monkeypatch):
        captured = {}
        original_init = QuorumDetector.__init__

        def spy(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            captured["config"] = self.config

        monkeypatch.setattr(QuorumDetector, "__init__", spy)
        return captured

    def test_detect_flags_reach_quorum_config(self, monkeypatch, capsys):
        captured = self.capture_config(monkeypatch)
        assert main(["detect", "--dataset", "power_plant", "--ensembles", "2",
                     "--shots", "0", "--seed", "2",
                     "--simulation-backend", "numpy-float32",
                     "--executor", "threads", "--jobs", "3"]) == 0
        config = captured["config"]
        assert config.simulation_backend == "numpy-float32"
        assert config.executor == "threads"
        assert config.n_jobs == 3
        assert config.compile_circuits is True

    def test_no_compile_flag_reaches_quorum_config(self, monkeypatch, capsys):
        captured = self.capture_config(monkeypatch)
        assert main(["detect", "--dataset", "power_plant", "--ensembles", "2",
                     "--shots", "0", "--seed", "2", "--no-compile"]) == 0
        assert captured["config"].compile_circuits is False

    def test_compiled_and_interpreted_runs_score_identically(self, capsys):
        """The noiseless CLI path is bitwise unchanged by compilation."""
        outputs = {}
        for label, flags in (("compiled", []), ("interpreted", ["--no-compile"])):
            assert main(["detect", "--dataset", "power_plant", "--ensembles",
                         "2", "--seed", "5"] + flags) == 0
            outputs[label] = capsys.readouterr().out
        assert outputs["compiled"] == outputs["interpreted"]

    def test_default_jobs_depend_on_executor_choice(self, monkeypatch, capsys):
        import os

        captured = self.capture_config(monkeypatch)
        assert main(["detect", "--dataset", "power_plant", "--ensembles", "2",
                     "--shots", "0", "--seed", "2"]) == 0
        assert captured["config"].n_jobs == 1
        assert captured["config"].executor == "auto"
        assert main(["detect", "--dataset", "power_plant", "--ensembles", "2",
                     "--shots", "0", "--seed", "2",
                     "--executor", "processes"]) == 0
        assert captured["config"].n_jobs == (os.cpu_count() or 1)

    @pytest.mark.parametrize("command", ["detect", "compare"])
    def test_executor_combinations_score_identically(self, command, capsys):
        outputs = {}
        for flags in (["--executor", "serial"],
                      ["--executor", "threads", "--jobs", "2"],
                      ["--executor", "processes", "--jobs", "2"]):
            argv = [command, "--dataset", "power_plant", "--ensembles", "3",
                    "--seed", "7"] + flags
            if command == "detect":
                argv += ["--shots", "0", "--top", "5"]
            assert main(argv) == 0
            outputs[tuple(flags)] = capsys.readouterr().out
        results = set(outputs.values())
        assert len(results) == 1, "scores must not depend on the executor"

    def test_simulation_backend_flag_runs_end_to_end(self, capsys):
        assert main(["detect", "--dataset", "power_plant", "--ensembles", "2",
                     "--shots", "0", "--seed", "2", "--top", "3",
                     "--simulation-backend", "numpy-float32"]) == 0
        assert "Top 3 samples" in capsys.readouterr().out

    def test_unknown_simulation_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--dataset", "letter",
                                       "--simulation-backend", "cuda"])

    def test_unknown_executor_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--dataset", "letter",
                                       "--executor", "distributed"])


class TestLoadtestCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["loadtest", "--model", "m.json"])
        assert args.replicas == 1
        assert args.concurrency == [8]
        assert args.mode == "reference"
        assert args.batch_window_ms == [2.0]
        assert args.report is None

    def test_parser_accepts_sweeps(self):
        args = build_parser().parse_args(
            ["loadtest", "--model", "m.json", "--replicas", "2",
             "--concurrency", "2", "4", "8", "--batch-window-ms", "1", "4",
             "--duration", "0.5", "--report", "-"])
        assert args.concurrency == [2, 4, 8]
        assert args.batch_window_ms == [1.0, 4.0]

    def test_model_flag_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadtest"])

    def test_replay_without_data_is_exit_2(self, capsys):
        exit_code = main(["loadtest", "--model", "m.json", "--mode",
                          "replay"])
        assert exit_code == 2
        assert "--dataset or --csv" in capsys.readouterr().err

    def test_missing_model_is_exit_2(self, tmp_path, capsys):
        exit_code = main(["loadtest", "--model",
                          str(tmp_path / "ghost.json"), "--duration", "0.2"])
        assert exit_code == 2
        assert "loadtest failed" in capsys.readouterr().err

    def test_small_run_writes_report(self, tmp_path, capsys):
        rng = np.random.default_rng(6)
        dataset = Dataset("toy", rng.normal(size=(14, 3)),
                          np.zeros(14, dtype=int))
        csv_path = save_dataset_csv(dataset, tmp_path / "toy.csv")
        model_path = tmp_path / "model.json"
        assert main(["fit", "--csv", str(csv_path), "--save-model",
                     str(model_path), "--ensembles", "1", "--shots", "64",
                     "--seed", "1"]) == 0
        capsys.readouterr()
        report_path = tmp_path / "report.json"
        exit_code = main(["loadtest", "--model", str(model_path),
                          "--concurrency", "2", "--duration", "0.4",
                          "--warmup", "0.1", "--samples-per-request", "2",
                          "--report", str(report_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "| replicas |" in out
        assert "suggested batching" in out
        import json as json_module
        report = json_module.loads(report_path.read_text())
        assert report["runs"][0]["requests"] > 0
        assert report["replica_exits"]["clean"] is True


class TestFleetCommand:
    """The fleet verb drives a (stubbed) FleetSupervisor end to end."""

    class _StubSupervisor:
        instances = []

        def __init__(self, model, replicas, **kwargs):
            self.model = model
            self.target_replicas = replicas
            self.kwargs = kwargs
            self.started = False
            self.loop_started = False
            self.closed = False
            self.autoscaled = None
            self.alive = True
            type(self).instances.append(self)

        class _Proxy:
            address = ("127.0.0.1", 4242)

        proxy = _Proxy()

        def start(self):
            self.started = True

        def start_health_loop(self):
            self.loop_started = True

        def autoscale_to_target(self, target_rps, per_replica_rps):
            self.autoscaled = (target_rps, per_replica_rps)
            self.target_replicas = 3
            return 3

        def status(self):
            return {"slots": [{"alive": self.alive,
                               "last_transition_reason": "boom"}]}

        def close(self):
            self.closed = True
            return [0]

    @pytest.fixture()
    def stub(self, monkeypatch):
        import repro.serving.supervisor as supervisor_module

        self._StubSupervisor.instances = []
        monkeypatch.setattr(supervisor_module, "FleetSupervisor",
                            self._StubSupervisor)
        # The status loop's first sleep ends the (stubbed) serve loop.
        monkeypatch.setattr("time.sleep",
                            lambda seconds: (_ for _ in ()).throw(
                                KeyboardInterrupt()))
        return self._StubSupervisor

    def test_happy_path_serves_and_closes(self, stub, capsys):
        assert main(["fleet", "--model", "m.json", "--replicas", "3"]) == 0
        (supervisor,) = stub.instances
        assert supervisor.started and supervisor.loop_started
        assert supervisor.closed
        out = capsys.readouterr().out
        assert "fleet serving m.json with 3 replicas" in out
        assert "http://127.0.0.1:4242" in out

    def test_autoscale_flags_reach_the_supervisor(self, stub, capsys):
        assert main(["fleet", "--model", "m.json", "--target-rps", "100",
                     "--per-replica-rps", "40"]) == 0
        (supervisor,) = stub.instances
        assert supervisor.autoscaled == (100.0, 40.0)
        assert "autoscaled to 3 replicas" in capsys.readouterr().out

    def test_no_replica_up_fails_fast(self, stub, capsys, monkeypatch):
        # Every slot reports dead once start() returns (bad model path).
        monkeypatch.setattr(
            stub, "start", lambda self: setattr(self, "alive", False))
        assert main(["fleet", "--model", "missing.json"]) == 2
        (supervisor,) = stub.instances
        assert supervisor.closed  # still cleaned up on the failure path
        err = capsys.readouterr().err
        assert "no replica came up" in err
        assert "boom" in err

    def test_mismatched_autoscale_flags_rejected(self, capsys):
        assert main(["fleet", "--model", "m.json",
                     "--target-rps", "100"]) == 2
        assert "--per-replica-rps" in capsys.readouterr().err

    def test_invalid_policy_flags_rejected(self, capsys):
        assert main(["fleet", "--model", "m.json",
                     "--eject-after", "0"]) == 2
        assert "cannot configure fleet" in capsys.readouterr().err
