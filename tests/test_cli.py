"""Tests for the quorum-repro command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.detector import QuorumDetector
from repro.data.dataset import Dataset
from repro.data.io import save_dataset_csv


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_detect_requires_data_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect"])

    def test_dataset_and_csv_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--dataset", "letter",
                                       "--csv", "x.csv"])

    def test_experiment_artifact_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig42"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "Breast Cancer" in output
        assert "power_plant" in output

    def test_detect_on_builtin_dataset(self, capsys):
        exit_code = main(["detect", "--dataset", "power_plant",
                          "--ensembles", "4", "--shots", "0", "--top", "3",
                          "--seed", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Precision" in output
        assert "score" in output

    def test_detect_on_csv_without_labels(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        dataset = Dataset("toy", rng.normal(size=(40, 4)),
                          np.zeros(40, dtype=int))
        path = save_dataset_csv(dataset, tmp_path / "toy.csv")
        exit_code = main(["detect", "--csv", str(path), "--ensembles", "3",
                          "--shots", "0", "--top", "2"])
        assert exit_code == 0
        assert "Top 2 samples" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        exit_code = main(["compare", "--dataset", "power_plant",
                          "--ensembles", "4", "--seed", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Isolation Forest" in output
        assert "Quorum (quantum)" in output

    def test_compare_rejects_unlabeled_csv(self, tmp_path, capsys):
        dataset = Dataset("toy", np.random.default_rng(1).normal(size=(20, 3)),
                          np.zeros(20, dtype=int))
        path = save_dataset_csv(dataset, tmp_path / "toy.csv")
        exit_code = main(["compare", "--csv", str(path), "--ensembles", "3"])
        assert exit_code == 2

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Pr[Anomaly in Bucket]" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        exit_code = main(["report", "--ensembles", "3", "--seed", "4",
                          "--skip-noisy", "--output", str(output)])
        assert exit_code == 0
        assert output.exists()
        assert "Table II" in output.read_text(encoding="utf-8")


class TestFlagPlumbing:
    """`--simulation-backend` / `--executor` / `--jobs` must reach QuorumConfig
    unchanged, and a fixed seed must score identically whichever combination
    executes the run."""

    def capture_config(self, monkeypatch):
        captured = {}
        original_init = QuorumDetector.__init__

        def spy(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            captured["config"] = self.config

        monkeypatch.setattr(QuorumDetector, "__init__", spy)
        return captured

    def test_detect_flags_reach_quorum_config(self, monkeypatch, capsys):
        captured = self.capture_config(monkeypatch)
        assert main(["detect", "--dataset", "power_plant", "--ensembles", "2",
                     "--shots", "0", "--seed", "2",
                     "--simulation-backend", "numpy-float32",
                     "--executor", "threads", "--jobs", "3"]) == 0
        config = captured["config"]
        assert config.simulation_backend == "numpy-float32"
        assert config.executor == "threads"
        assert config.n_jobs == 3
        assert config.compile_circuits is True

    def test_no_compile_flag_reaches_quorum_config(self, monkeypatch, capsys):
        captured = self.capture_config(monkeypatch)
        assert main(["detect", "--dataset", "power_plant", "--ensembles", "2",
                     "--shots", "0", "--seed", "2", "--no-compile"]) == 0
        assert captured["config"].compile_circuits is False

    def test_compiled_and_interpreted_runs_score_identically(self, capsys):
        """The noiseless CLI path is bitwise unchanged by compilation."""
        outputs = {}
        for label, flags in (("compiled", []), ("interpreted", ["--no-compile"])):
            assert main(["detect", "--dataset", "power_plant", "--ensembles",
                         "2", "--seed", "5"] + flags) == 0
            outputs[label] = capsys.readouterr().out
        assert outputs["compiled"] == outputs["interpreted"]

    def test_default_jobs_depend_on_executor_choice(self, monkeypatch, capsys):
        import os

        captured = self.capture_config(monkeypatch)
        assert main(["detect", "--dataset", "power_plant", "--ensembles", "2",
                     "--shots", "0", "--seed", "2"]) == 0
        assert captured["config"].n_jobs == 1
        assert captured["config"].executor == "auto"
        assert main(["detect", "--dataset", "power_plant", "--ensembles", "2",
                     "--shots", "0", "--seed", "2",
                     "--executor", "processes"]) == 0
        assert captured["config"].n_jobs == (os.cpu_count() or 1)

    @pytest.mark.parametrize("command", ["detect", "compare"])
    def test_executor_combinations_score_identically(self, command, capsys):
        outputs = {}
        for flags in (["--executor", "serial"],
                      ["--executor", "threads", "--jobs", "2"],
                      ["--executor", "processes", "--jobs", "2"]):
            argv = [command, "--dataset", "power_plant", "--ensembles", "3",
                    "--seed", "7"] + flags
            if command == "detect":
                argv += ["--shots", "0", "--top", "5"]
            assert main(argv) == 0
            outputs[tuple(flags)] = capsys.readouterr().out
        results = set(outputs.values())
        assert len(results) == 1, "scores must not depend on the executor"

    def test_simulation_backend_flag_runs_end_to_end(self, capsys):
        assert main(["detect", "--dataset", "power_plant", "--ensembles", "2",
                     "--shots", "0", "--seed", "2", "--top", "3",
                     "--simulation-backend", "numpy-float32"]) == 0
        assert "Top 3 samples" in capsys.readouterr().out

    def test_unknown_simulation_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--dataset", "letter",
                                       "--simulation-backend", "cuda"])

    def test_unknown_executor_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--dataset", "letter",
                                       "--executor", "distributed"])
