"""Stability diagnostics for ensemble-based anomaly scores.

Quorum's guarantees are statistical: the ranking should stabilize as ensemble
members accumulate, and independent runs (different seeds) should agree on who the
anomalies are.  These helpers quantify that, and back the ensemble-scaling
ablation (the paper's "benefits diminishing" remark in Section V).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "spearman_rank_correlation",
    "top_k_jaccard",
    "ranking_stability_curve",
    "score_agreement",
]


def spearman_rank_correlation(first: Sequence[float], second: Sequence[float]) -> float:
    """Spearman rank correlation between two score vectors (ties get mean ranks)."""
    first = np.asarray(first, dtype=float).ravel()
    second = np.asarray(second, dtype=float).ravel()
    if first.shape != second.shape:
        raise ValueError("score vectors must have the same length")
    if first.size < 2:
        raise ValueError("need at least two samples")
    first_ranks = _mean_ranks(first)
    second_ranks = _mean_ranks(second)
    first_centered = first_ranks - first_ranks.mean()
    second_centered = second_ranks - second_ranks.mean()
    denominator = np.sqrt((first_centered ** 2).sum() * (second_centered ** 2).sum())
    if denominator == 0.0:
        return 0.0
    return float((first_centered * second_centered).sum() / denominator)


def _mean_ranks(values: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty_like(values)
    ranks[order] = np.arange(1, values.size + 1, dtype=float)
    # Average the ranks of tied values.
    unique_values, inverse, counts = np.unique(values, return_inverse=True,
                                               return_counts=True)
    sums = np.zeros(unique_values.size)
    np.add.at(sums, inverse, ranks)
    return sums[inverse] / counts[inverse]


def top_k_jaccard(first: Sequence[float], second: Sequence[float], k: int) -> float:
    """Jaccard overlap of the top-k index sets of two score vectors."""
    first = np.asarray(first, dtype=float).ravel()
    second = np.asarray(second, dtype=float).ravel()
    if first.shape != second.shape:
        raise ValueError("score vectors must have the same length")
    if not 1 <= k <= first.size:
        raise ValueError("k out of range")
    top_first = set(np.argsort(first)[::-1][:k].tolist())
    top_second = set(np.argsort(second)[::-1][:k].tolist())
    union = top_first | top_second
    return len(top_first & top_second) / len(union)


def ranking_stability_curve(member_deviations: Sequence[np.ndarray],
                            reference: Sequence[float],
                            checkpoints: Sequence[int]) -> Dict[int, float]:
    """Rank correlation of partial ensemble sums against a reference ranking.

    Parameters
    ----------
    member_deviations:
        Per-member deviation vectors (e.g. from
        :meth:`QuorumDetector.member_results`).
    reference:
        The final (full-ensemble) scores to compare against.
    checkpoints:
        Ensemble sizes at which to evaluate the partial ranking.
    """
    member_deviations = [np.asarray(member, dtype=float) for member in member_deviations]
    if not member_deviations:
        raise ValueError("need at least one ensemble member")
    reference = np.asarray(reference, dtype=float)
    curve: Dict[int, float] = {}
    running = np.zeros_like(member_deviations[0])
    consumed = 0
    targets = sorted(set(int(point) for point in checkpoints))
    for target in targets:
        if not 1 <= target <= len(member_deviations):
            raise ValueError(f"checkpoint {target} outside the ensemble size")
        while consumed < target:
            running = running + member_deviations[consumed]
            consumed += 1
        curve[target] = spearman_rank_correlation(running, reference)
    return curve


def score_agreement(score_vectors: Sequence[Sequence[float]], k: int) -> Dict[str, float]:
    """Pairwise agreement statistics across independent detector runs.

    Returns the mean pairwise Spearman correlation and the mean pairwise top-k
    Jaccard overlap -- the two numbers that summarize "do different seeds find the
    same anomalies?".
    """
    vectors = [np.asarray(vector, dtype=float).ravel() for vector in score_vectors]
    if len(vectors) < 2:
        raise ValueError("need at least two runs to measure agreement")
    correlations: List[float] = []
    overlaps: List[float] = []
    for index_a in range(len(vectors)):
        for index_b in range(index_a + 1, len(vectors)):
            correlations.append(spearman_rank_correlation(vectors[index_a],
                                                          vectors[index_b]))
            overlaps.append(top_k_jaccard(vectors[index_a], vectors[index_b], k))
    return {
        "mean_spearman": float(np.mean(correlations)),
        "mean_top_k_jaccard": float(np.mean(overlaps)),
        "num_pairs": float(len(correlations)),
    }
