"""Detection-rate curves (Fig. 9) and score-separation profiles (Fig. 10)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "DetectionCurve",
    "detection_rate_curve",
    "detection_rate_at_fraction",
    "separation_profile",
]


@dataclass(frozen=True)
class DetectionCurve:
    """Fraction of anomalies detected vs fraction of the dataset inspected.

    Samples are inspected in decreasing anomaly-score order, exactly as in the
    paper's Fig. 9.
    """

    fractions: Tuple[float, ...]
    detection_rates: Tuple[float, ...]

    def rate_at(self, fraction: float) -> float:
        """Detection rate at the largest tabulated fraction <= ``fraction``."""
        best = 0.0
        for tabulated, rate in zip(self.fractions, self.detection_rates):
            if tabulated <= fraction + 1e-12:
                best = rate
            else:
                break
        return best

    def area(self) -> float:
        """Area under the curve (1.0 = all anomalies found immediately)."""
        return float(np.trapezoid(self.detection_rates, self.fractions))

    def as_dict(self) -> Dict[str, List[float]]:
        """Plain-dict form for serialization in the benchmark harness."""
        return {
            "fractions": list(self.fractions),
            "detection_rates": list(self.detection_rates),
        }


def detection_rate_curve(scores: Sequence[float], y_true: Sequence[int],
                         num_points: int = 101) -> DetectionCurve:
    """Compute the Fig. 9 curve for one detector run.

    Parameters
    ----------
    scores:
        Anomaly scores (higher = more anomalous).
    y_true:
        Ground-truth binary labels.
    num_points:
        Number of evenly spaced dataset fractions (including 0 and 1).
    """
    scores = np.asarray(scores, dtype=float).ravel()
    y_true = np.asarray(y_true, dtype=int).ravel()
    if scores.shape != y_true.shape:
        raise ValueError("scores and labels must have the same length")
    total_anomalies = int(y_true.sum())
    if total_anomalies == 0:
        raise ValueError("the dataset contains no anomalies to detect")
    order = np.argsort(scores)[::-1]
    sorted_labels = y_true[order]
    cumulative = np.cumsum(sorted_labels)
    fractions = np.linspace(0.0, 1.0, num_points)
    rates = []
    for fraction in fractions:
        inspected = int(round(fraction * scores.size))
        if inspected == 0:
            rates.append(0.0)
            continue
        rates.append(float(cumulative[inspected - 1]) / total_anomalies)
    return DetectionCurve(fractions=tuple(fractions.tolist()),
                          detection_rates=tuple(rates))


def detection_rate_at_fraction(scores: Sequence[float], y_true: Sequence[int],
                               fraction: float) -> float:
    """Detection rate when inspecting the top ``fraction`` of the dataset."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    curve = detection_rate_curve(scores, y_true)
    return curve.rate_at(fraction)


def separation_profile(scores: Sequence[float], y_true: Sequence[int]
                       ) -> Dict[str, np.ndarray]:
    """Data behind Fig. 10: scores sorted ascending, split by ground truth.

    Returns the sort order, the sorted scores, and for each sorted position whether
    the sample is anomalous -- enough to regenerate the paper's scatter plot of
    "sum absolute std. deviation" with anomalies highlighted.
    """
    scores = np.asarray(scores, dtype=float).ravel()
    y_true = np.asarray(y_true, dtype=int).ravel()
    if scores.shape != y_true.shape:
        raise ValueError("scores and labels must have the same length")
    order = np.argsort(scores)
    return {
        "order": order,
        "sorted_scores": scores[order],
        "sorted_is_anomaly": y_true[order].astype(bool),
    }
