"""Evaluation metrics: classification scores and detection-rate curves."""

from repro.metrics.classification import (
    ClassificationReport,
    accuracy_score,
    confusion_counts,
    evaluate_flags,
    evaluate_top_k,
    f1_score,
    precision_score,
    recall_score,
)
from repro.metrics.detection import (
    DetectionCurve,
    detection_rate_at_fraction,
    detection_rate_curve,
    separation_profile,
)
from repro.metrics.stability import (
    ranking_stability_curve,
    score_agreement,
    spearman_rank_correlation,
    top_k_jaccard,
)

__all__ = [
    "ClassificationReport",
    "confusion_counts",
    "precision_score",
    "recall_score",
    "f1_score",
    "accuracy_score",
    "evaluate_flags",
    "evaluate_top_k",
    "DetectionCurve",
    "detection_rate_curve",
    "detection_rate_at_fraction",
    "separation_profile",
    "spearman_rank_correlation",
    "top_k_jaccard",
    "ranking_stability_curve",
    "score_agreement",
]
