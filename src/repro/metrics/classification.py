"""Precision / recall / F1 / accuracy, the metrics reported in Fig. 8."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "confusion_counts",
    "precision_score",
    "recall_score",
    "f1_score",
    "accuracy_score",
    "ClassificationReport",
    "evaluate_flags",
    "evaluate_top_k",
]


def _validate(y_true: Sequence[int], y_pred: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=int).ravel()
    y_pred = np.asarray(y_pred, dtype=int).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    for values in (y_true, y_pred):
        if not set(np.unique(values)).issubset({0, 1}):
            raise ValueError("labels must be binary")
    return y_true, y_pred


def confusion_counts(y_true: Sequence[int], y_pred: Sequence[int]) -> Dict[str, int]:
    """True/false positive/negative counts (positive class = anomaly = 1)."""
    y_true, y_pred = _validate(y_true, y_pred)
    return {
        "tp": int(np.sum((y_true == 1) & (y_pred == 1))),
        "fp": int(np.sum((y_true == 0) & (y_pred == 1))),
        "fn": int(np.sum((y_true == 1) & (y_pred == 0))),
        "tn": int(np.sum((y_true == 0) & (y_pred == 0))),
    }


def precision_score(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Fraction of flagged samples that are true anomalies (0 when nothing flagged)."""
    counts = confusion_counts(y_true, y_pred)
    flagged = counts["tp"] + counts["fp"]
    return counts["tp"] / flagged if flagged else 0.0


def recall_score(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Fraction of true anomalies that were flagged (0 when there are none)."""
    counts = confusion_counts(y_true, y_pred)
    positives = counts["tp"] + counts["fn"]
    return counts["tp"] / positives if positives else 0.0


def f1_score(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Harmonic mean of precision and recall."""
    precision = precision_score(y_true, y_pred)
    recall = recall_score(y_true, y_pred)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def accuracy_score(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Fraction of samples classified correctly."""
    counts = confusion_counts(y_true, y_pred)
    total = sum(counts.values())
    return (counts["tp"] + counts["tn"]) / total


@dataclass(frozen=True)
class ClassificationReport:
    """Bundle of the four Fig. 8 metrics plus the confusion counts."""

    precision: float
    recall: float
    f1: float
    accuracy: float
    tp: int
    fp: int
    fn: int
    tn: int

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form (handy for tabulation in the benchmark harness)."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "accuracy": self.accuracy,
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
            "tn": self.tn,
        }


def evaluate_flags(y_true: Sequence[int], y_pred: Sequence[int]) -> ClassificationReport:
    """Full report for a set of binary anomaly flags."""
    counts = confusion_counts(y_true, y_pred)
    return ClassificationReport(
        precision=precision_score(y_true, y_pred),
        recall=recall_score(y_true, y_pred),
        f1=f1_score(y_true, y_pred),
        accuracy=accuracy_score(y_true, y_pred),
        **counts,
    )


def evaluate_top_k(scores: Sequence[float], y_true: Sequence[int],
                   num_flagged: int) -> ClassificationReport:
    """Flag the ``num_flagged`` highest-scoring samples and evaluate.

    This matches how the paper turns continuous anomaly scores into Fig. 8's
    classification metrics: the detector flags as many samples as it believes are
    anomalous (the estimated anomaly count) and is scored on that decision.
    """
    scores = np.asarray(scores, dtype=float).ravel()
    y_true = np.asarray(y_true, dtype=int).ravel()
    if scores.shape != y_true.shape:
        raise ValueError("scores and labels must have the same length")
    if not 0 <= num_flagged <= scores.size:
        raise ValueError("num_flagged out of range")
    predictions = np.zeros_like(y_true)
    if num_flagged > 0:
        flagged = np.argsort(scores)[::-1][:num_flagged]
        predictions[flagged] = 1
    return evaluate_flags(y_true, predictions)
