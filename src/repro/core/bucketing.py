"""Bucketing (Section IV-C): random data subsets sized by anomaly probability.

The bucket size is the smallest ``b`` such that a uniformly random subset of ``b``
samples contains at least one anomaly with probability at least ``p`` (Table I's
right-most column).  With ``N`` samples of which ``A`` are anomalous, that
probability is hypergeometric:

``P(>=1 anomaly) = 1 - C(N - A, b) / C(N, b)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "probability_of_anomalous_bucket",
    "bucket_size_for_probability",
    "BucketAssignment",
    "assign_buckets",
]


def probability_of_anomalous_bucket(num_samples: int, num_anomalies: int,
                                    bucket_size: int) -> float:
    """Probability that a random bucket of ``bucket_size`` holds >= 1 anomaly."""
    if num_samples < 1:
        raise ValueError("num_samples must be positive")
    if not 0 <= num_anomalies <= num_samples:
        raise ValueError("num_anomalies must be between 0 and num_samples")
    if not 1 <= bucket_size <= num_samples:
        raise ValueError("bucket_size must be between 1 and num_samples")
    if num_anomalies == 0:
        return 0.0
    normals = num_samples - num_anomalies
    if bucket_size > normals:
        return 1.0
    log_miss = (_log_comb(normals, bucket_size)
                - _log_comb(num_samples, bucket_size))
    return 1.0 - math.exp(log_miss)


def _log_comb(n: int, k: int) -> float:
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def bucket_size_for_probability(num_samples: int, anomaly_fraction: float,
                                target_probability: float) -> int:
    """Smallest bucket size reaching the target anomaly-containment probability.

    Parameters
    ----------
    num_samples:
        Dataset size ``N``.
    anomaly_fraction:
        Estimated fraction of anomalous samples (the detector never sees labels,
        so this is a user-supplied prior).
    target_probability:
        Desired probability of at least one anomaly per bucket (``p`` in Table I).
    """
    if num_samples < 1:
        raise ValueError("num_samples must be positive")
    if not 0.0 < anomaly_fraction < 1.0:
        raise ValueError("anomaly_fraction must be in (0, 1)")
    if not 0.0 < target_probability < 1.0:
        raise ValueError("target_probability must be in (0, 1)")
    estimated_anomalies = max(1, int(round(anomaly_fraction * num_samples)))
    for bucket_size in range(2, num_samples + 1):
        probability = probability_of_anomalous_bucket(
            num_samples, estimated_anomalies, bucket_size
        )
        if probability >= target_probability:
            return bucket_size
    return num_samples


@dataclass(frozen=True)
class BucketAssignment:
    """A partition of sample indices into random buckets."""

    buckets: Tuple[Tuple[int, ...], ...]

    @property
    def num_buckets(self) -> int:
        """Number of buckets."""
        return len(self.buckets)

    @property
    def num_samples(self) -> int:
        """Total number of assigned samples."""
        return sum(len(bucket) for bucket in self.buckets)

    def bucket_of(self, sample_index: int) -> int:
        """Bucket index containing ``sample_index`` (raises if missing)."""
        for position, bucket in enumerate(self.buckets):
            if sample_index in bucket:
                return position
        raise KeyError(f"sample {sample_index} is not assigned to any bucket")

    def as_lists(self) -> List[List[int]]:
        """Buckets as plain lists (handy for numpy indexing)."""
        return [list(bucket) for bucket in self.buckets]


def assign_buckets(num_samples: int, bucket_size: int,
                   rng: Optional[np.random.Generator] = None) -> BucketAssignment:
    """Randomly partition ``num_samples`` indices into buckets of ~``bucket_size``.

    Every sample lands in exactly one bucket.  When the sample count is not a
    multiple of the bucket size, the remainder is spread over the existing buckets
    (so no bucket ends up pathologically small, which would break the z-score
    statistics).
    """
    if num_samples < 1:
        raise ValueError("num_samples must be positive")
    if not 1 <= bucket_size <= num_samples:
        raise ValueError("bucket_size must be between 1 and num_samples")
    rng = rng or np.random.default_rng()
    order = rng.permutation(num_samples)
    num_buckets = max(1, num_samples // bucket_size)
    buckets: List[List[int]] = [[] for _ in range(num_buckets)]
    for position, sample in enumerate(order):
        buckets[position % num_buckets].append(int(sample))
    return BucketAssignment(buckets=tuple(tuple(bucket) for bucket in buckets))
