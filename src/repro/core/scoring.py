"""Statistical scoring of SWAP-test outputs (Section IV-E, Fig. 7).

For each run (ensemble member x compression level) and each bucket, the mean and
standard deviation of the SWAP-test P(1) values inside the bucket are computed;
a sample's contribution is the absolute z-score of its own P(1) against its
bucket's statistics.  Contributions are summed over every run and bucket, giving
the "sum absolute std. deviation" score plotted in Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.bucketing import BucketAssignment

__all__ = [
    "BucketStatistics",
    "bucket_deviations",
    "bucket_statistics",
    "reference_deviations",
    "AnomalyScores",
]

_MIN_STD = 1e-12


@dataclass(frozen=True, eq=False)
class BucketStatistics:
    """Frozen per-bucket moments with the degenerate-bucket mask hoisted.

    ``live`` marks buckets whose standard deviation is resolvable
    (``stds >= 1e-12``); degenerate buckets contribute zero deviation.  The
    mask is computed once here instead of being re-derived from ``stds`` by
    every scoring call -- fit-time deviations, frozen serving references, and
    replay all share the same mask by construction.

    Unpacks and indexes like the legacy ``(means, stds)`` tuple
    (``means, stds = statistics``), so persisted-artifact readers and older
    call sites keep working unchanged.
    """

    means: np.ndarray
    stds: np.ndarray
    live: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        means = np.asarray(self.means, dtype=float).ravel()
        stds = np.asarray(self.stds, dtype=float).ravel()
        if means.shape != stds.shape:
            raise ValueError("means and stds must have the same length")
        object.__setattr__(self, "means", means)
        object.__setattr__(self, "stds", stds)
        object.__setattr__(self, "live", stds >= _MIN_STD)

    @property
    def num_buckets(self) -> int:
        return int(self.means.shape[0])

    # Tuple compatibility: behave as the 2-tuple ``(means, stds)``.
    def __iter__(self):
        return iter((self.means, self.stds))

    def __getitem__(self, index):
        return (self.means, self.stds)[index]

    def __len__(self) -> int:
        return 2


def bucket_statistics(p1_values: np.ndarray, buckets: BucketAssignment
                      ) -> BucketStatistics:
    """Per-bucket :class:`BucketStatistics` (means, stds, live mask).

    These are the *reference statistics* a serving artifact freezes at fit
    time: a previously unseen sample is later scored against them with
    :func:`reference_deviations` instead of recomputing in-batch statistics.
    """
    p1_values = np.asarray(p1_values, dtype=float).ravel()
    if buckets.num_samples != p1_values.shape[0]:
        raise ValueError(
            f"bucket assignment covers {buckets.num_samples} samples but "
            f"{p1_values.shape[0]} P(1) values were provided"
        )
    means = np.empty(buckets.num_buckets)
    stds = np.empty(buckets.num_buckets)
    for position, bucket in enumerate(buckets.buckets):
        values = p1_values[np.asarray(bucket, dtype=int)]
        means[position] = values.mean()
        stds[position] = values.std()
    return BucketStatistics(means=means, stds=stds)


def bucket_deviations(p1_values: np.ndarray, buckets: BucketAssignment,
                      statistics: Optional[BucketStatistics] = None
                      ) -> np.ndarray:
    """Absolute per-sample z-scores of ``p1_values`` within their buckets.

    Buckets whose standard deviation vanishes (e.g. all-identical outputs)
    contribute zero for every member, since no sample deviates from the rest;
    the degenerate set comes from the statistics' precomputed ``live`` mask.
    ``statistics`` accepts the output of :func:`bucket_statistics` (or a
    legacy ``(means, stds)`` tuple) for the same ``(p1_values, buckets)``
    pair so callers that need both (the ensemble executor records reference
    statistics for serving) do not compute the bucket moments twice.
    """
    p1_values = np.asarray(p1_values, dtype=float).ravel()
    if buckets.num_samples != p1_values.shape[0]:
        raise ValueError(
            f"bucket assignment covers {buckets.num_samples} samples but "
            f"{p1_values.shape[0]} P(1) values were provided"
        )
    if statistics is None:
        statistics = bucket_statistics(p1_values, buckets)
    elif not isinstance(statistics, BucketStatistics):
        means, stds = statistics
        statistics = BucketStatistics(means=means, stds=stds)
    means, stds, live = statistics.means, statistics.stds, statistics.live
    deviations = np.zeros_like(p1_values)
    for position, bucket in enumerate(buckets.buckets):
        if not live[position]:
            continue
        indices = np.asarray(bucket, dtype=int)
        deviations[indices] = (np.abs(p1_values[indices] - means[position])
                               / stds[position])
    return deviations


def reference_deviations(p1_values: np.ndarray, means: np.ndarray,
                         stds: np.ndarray,
                         live: Optional[np.ndarray] = None) -> np.ndarray:
    """Deviations of (possibly unseen) samples against frozen bucket statistics.

    At fit time a sample belongs to exactly one random bucket and contributes
    its absolute z-score within it.  A sample scored *online* has no bucket, so
    its deviation is the expectation of that rule under a uniformly random
    bucket assignment: the mean over buckets of ``|p1 - mean_b| / std_b``, with
    degenerate buckets (vanishing std) contributing zero exactly as they do in
    :func:`bucket_deviations`.  ``live`` accepts the precomputed mask from a
    :class:`BucketStatistics` so hot serving paths skip re-deriving it.
    """
    p1_values = np.asarray(p1_values, dtype=float).ravel()
    means = np.asarray(means, dtype=float).ravel()
    stds = np.asarray(stds, dtype=float).ravel()
    if means.shape != stds.shape:
        raise ValueError("means and stds must have the same length")
    if means.size == 0:
        raise ValueError("reference statistics cannot be empty")
    if live is None:
        live = stds >= _MIN_STD
    else:
        live = np.asarray(live, dtype=bool).ravel()
        if live.shape != stds.shape:
            raise ValueError("live mask must match the statistics length")
    if not np.any(live):
        return np.zeros_like(p1_values)
    scores = np.abs(p1_values[:, None] - means[None, live]) / stds[None, live]
    return scores.sum(axis=1) / float(means.size)


@dataclass
class AnomalyScores:
    """Accumulated anomaly scores for a dataset.

    Attributes
    ----------
    scores:
        Per-sample summed absolute deviations (higher = more anomalous).
    num_runs:
        Number of (ensemble member x compression level) runs accumulated, useful
        for averaging across differently sized sweeps.
    metadata:
        Extra diagnostics recorded by the detector.
    """

    scores: np.ndarray
    num_runs: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=float).ravel()
        if self.scores.size == 0:
            raise ValueError("scores cannot be empty")
        if self.num_runs < 0:
            raise ValueError("num_runs cannot be negative")

    @property
    def num_samples(self) -> int:
        """Number of scored samples."""
        return int(self.scores.shape[0])

    def mean_scores(self) -> np.ndarray:
        """Scores averaged over runs (shape-preserving when ``num_runs`` is 0)."""
        if self.num_runs == 0:
            return self.scores.copy()
        return self.scores / self.num_runs

    def ranking(self) -> np.ndarray:
        """Sample indices sorted from most to least anomalous."""
        return np.argsort(self.scores)[::-1]

    def top_k(self, k: int) -> np.ndarray:
        """Indices of the ``k`` highest-scoring samples."""
        if not 0 <= k <= self.num_samples:
            raise ValueError("k out of range")
        return self.ranking()[:k]

    def predictions(self, num_flagged: Optional[int] = None,
                    contamination: Optional[float] = None) -> np.ndarray:
        """Binary anomaly flags for the ``num_flagged`` top-scoring samples.

        Exactly one of ``num_flagged`` / ``contamination`` must be given;
        ``contamination`` is a fraction of the dataset.
        """
        if (num_flagged is None) == (contamination is None):
            raise ValueError("provide exactly one of num_flagged or contamination")
        if contamination is not None:
            if not 0.0 <= contamination <= 1.0:
                raise ValueError("contamination must be in [0, 1]")
            num_flagged = int(round(contamination * self.num_samples))
        flags = np.zeros(self.num_samples, dtype=int)
        flags[self.top_k(int(num_flagged))] = 1
        return flags

    def threshold_at_percentile(self, percentile: float) -> float:
        """Score value at the given percentile (e.g. 90 for the top 10%)."""
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        return float(np.percentile(self.scores, percentile))

    def merged_with(self, other: "AnomalyScores") -> "AnomalyScores":
        """Combine two accumulations (e.g. from parallel workers)."""
        if other.num_samples != self.num_samples:
            raise ValueError("cannot merge scores over different sample counts")
        return AnomalyScores(
            scores=self.scores + other.scores,
            num_runs=self.num_runs + other.num_runs,
            metadata={**self.metadata, **other.metadata},
        )
