"""A single ensemble member: one complete random "quantum projection" of the data.

Each member draws its own feature subset, bucket assignment, and random ansatz
angles, runs every sample through every compression level, and converts the
SWAP-test outputs into per-bucket absolute z-scores.  Members are independent of
one another -- the "embarrassingly parallel" property the paper highlights -- so
the detector simply sums their deviation vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.core.bucketing import BucketAssignment, assign_buckets, bucket_size_for_probability
from repro.core.config import QuorumConfig
from repro.core.execution import SwapTestEngine, make_engine
from repro.core.feature_selection import select_feature_subset
from repro.core.scoring import bucket_deviations

__all__ = ["EnsembleMemberResult", "batch_amplitudes", "run_ensemble_member"]


def batch_amplitudes(values: np.ndarray, num_qubits: int) -> np.ndarray:
    """Amplitude-encode every row of ``values`` (normalized feature subsets).

    Vectorized equivalent of calling
    :func:`repro.encoding.amplitude.amplitudes_from_features` row by row.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError("values must be 2-D (samples, selected features)")
    dim = 2 ** num_qubits
    if values.shape[1] > dim - 1:
        raise ValueError("too many features for the register size")
    probabilities = np.zeros((values.shape[0], dim), dtype=float)
    probabilities[:, : values.shape[1]] = np.clip(values, 0.0, None) ** 2
    overflow = 1.0 - probabilities.sum(axis=1)
    if np.any(overflow < -1e-6):
        raise ValueError("squared features exceed 1; normalize the data first")
    probabilities[:, -1] += np.clip(overflow, 0.0, None)
    probabilities /= probabilities.sum(axis=1, keepdims=True)
    return np.sqrt(probabilities)


@dataclass
class EnsembleMemberResult:
    """Outcome of one ensemble member.

    Attributes
    ----------
    member_index:
        Position of the member in the ensemble.
    deviations:
        Per-sample absolute z-scores summed over this member's compression levels.
    selected_features:
        Feature indices used by this member.
    bucket_size:
        Bucket size used (shared across members of one detector run).
    num_buckets:
        Number of buckets in this member's assignment.
    num_runs:
        Number of (compression level) runs contributing to ``deviations``.
    p1_statistics:
        Per-compression-level mean/std of the raw SWAP-test outputs (diagnostics).
    """

    member_index: int
    deviations: np.ndarray
    selected_features: np.ndarray
    bucket_size: int
    num_buckets: int
    num_runs: int
    p1_statistics: Dict[int, Tuple[float, float]] = field(default_factory=dict)


def run_ensemble_member(normalized_data: np.ndarray, config: QuorumConfig,
                        member_index: int, member_seed: int,
                        engine: Optional[SwapTestEngine] = None,
                        bucket_size: Optional[int] = None) -> EnsembleMemberResult:
    """Run one complete ensemble member over the normalized dataset.

    Parameters
    ----------
    normalized_data:
        Output of :class:`repro.encoding.normalization.QuorumNormalizer`, shape
        (samples, features); every value in ``[0, 1/M]``.
    config:
        Detector configuration.
    member_index:
        Position of the member (recorded in the result).
    member_seed:
        Seed controlling this member's feature subset, buckets, angles, and shot
        noise.
    engine:
        Pre-built execution engine; built from the config when omitted.
    bucket_size:
        Bucket size to use; derived from the config's target probability when
        omitted.
    """
    normalized_data = np.asarray(normalized_data, dtype=float)
    if normalized_data.ndim != 2:
        raise ValueError("normalized_data must be 2-D")
    num_samples, num_features = normalized_data.shape
    rng = np.random.default_rng(member_seed)

    selected = select_feature_subset(num_features, config.features_per_circuit, rng)
    amplitudes = batch_amplitudes(normalized_data[:, selected], config.num_qubits)

    if bucket_size is None:
        bucket_size = bucket_size_for_probability(
            num_samples, config.effective_anomaly_fraction, config.bucket_probability
        )
    bucket_size = min(bucket_size, num_samples)
    buckets: BucketAssignment = assign_buckets(num_samples, bucket_size, rng)

    ansatz = RandomAutoencoderAnsatz(
        num_qubits=config.num_qubits,
        num_layers=config.num_layers,
        entanglement=config.entanglement,
        seed=int(rng.integers(0, 2 ** 31 - 1)),
    )
    if engine is None:
        engine = make_engine(
            config.backend, config.shots, rng=rng, noisy=config.noisy,
            gate_level_encoding=config.gate_level_encoding,
            num_qubits=config.num_qubits,
            simulation_backend=config.simulation_backend,
        )

    deviations = np.zeros(num_samples)
    statistics: Dict[int, Tuple[float, float]] = {}
    levels = config.effective_compression_levels
    for level in levels:
        p1_values = engine.p1_batch(amplitudes, ansatz, level)
        statistics[level] = (float(np.mean(p1_values)), float(np.std(p1_values)))
        deviations += bucket_deviations(p1_values, buckets)

    return EnsembleMemberResult(
        member_index=member_index,
        deviations=deviations,
        selected_features=selected,
        bucket_size=bucket_size,
        num_buckets=buckets.num_buckets,
        num_runs=len(levels),
        p1_statistics=statistics,
    )
