"""Ensemble members as plan/execute pairs.

Each ensemble member is one complete random "quantum projection" of the data:
it draws its own feature subset, bucket assignment, and random ansatz angles,
runs every sample through every compression level, and converts the SWAP-test
outputs into per-bucket absolute z-scores.  Members are independent of one
another -- the "embarrassingly parallel" property the paper highlights -- so the
detector simply sums their deviation vectors.

The member lifecycle is split in two:

* :func:`plan_member` performs the *cheap, data-independent* setup -- feature
  subset, bucket assignment, ansatz construction -- and captures it in a small
  picklable :class:`MemberPlan`.  Planning only needs the dataset's *shape*, so
  executors can build every plan up front in the parent process and ship plans
  (not datasets) to workers.
* :func:`execute_member` performs the *heavy, data-dependent* work: amplitude
  encoding, one fused ``(levels x samples)`` batched SWAP-test sweep through the
  engine's ``p1_levels_batch``, and bucket scoring.  For noisy members this
  sweep is checkpointed: the engine walks the shared circuit prefix (encoding +
  encoder) exactly once and replays only the per-level suffix from the
  post-prefix density batch.  With ``config.compile_circuits`` (the default)
  the member's fixed circuit structure is additionally lowered ahead of time
  through the shared :mod:`repro.quantum.compiler` cache -- the encoder
  becomes one fused unitary, the noisy suffix one cached Heisenberg-picture
  observable per level -- so the sweep executes as a handful of batched
  matmuls.  The executor strategies in
  :mod:`repro.core.parallel` call this against shared (zero-copy or
  shared-memory) dataset views.

The plan carries the member RNG *after* its planning draws, so execution
consumes shot-noise randomness in exactly the order the historical single-pass
implementation did -- fixed-seed results are bit-identical no matter which
executor runs the plan.  :func:`run_ensemble_member` remains as the one-call
convenience wrapper (plan + execute).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.core.bucketing import BucketAssignment, assign_buckets, bucket_size_for_probability
from repro.core.config import QuorumConfig
from repro.core.execution import SwapTestEngine, apply_shot_noise, make_engine
from repro.core.feature_selection import select_feature_subset
from repro.core.scoring import (BucketStatistics, bucket_deviations,
                                bucket_statistics)
from repro.quantum.compiler import structure_signature

__all__ = [
    "EnsembleMemberResult",
    "MemberPlan",
    "batch_amplitudes",
    "plan_member",
    "plan_structure_key",
    "execute_member",
    "execute_member_group",
    "run_ensemble_member",
]


def batch_amplitudes(values: np.ndarray, num_qubits: int) -> np.ndarray:
    """Amplitude-encode every row of ``values`` (normalized feature subsets).

    Vectorized equivalent of calling
    :func:`repro.encoding.amplitude.amplitudes_from_features` row by row.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError("values must be 2-D (samples, selected features)")
    dim = 2 ** num_qubits
    if values.shape[1] > dim - 1:
        raise ValueError("too many features for the register size")
    probabilities = np.zeros((values.shape[0], dim), dtype=float)
    probabilities[:, : values.shape[1]] = np.clip(values, 0.0, None) ** 2
    overflow = 1.0 - probabilities.sum(axis=1)
    if np.any(overflow < -1e-6):
        raise ValueError("squared features exceed 1; normalize the data first")
    probabilities[:, -1] += np.clip(overflow, 0.0, None)
    probabilities /= probabilities.sum(axis=1, keepdims=True)
    return np.sqrt(probabilities)


@dataclass
class EnsembleMemberResult:
    """Outcome of one ensemble member.

    Attributes
    ----------
    member_index:
        Position of the member in the ensemble.
    deviations:
        Per-sample absolute z-scores summed over this member's compression levels.
    selected_features:
        Feature indices used by this member.
    bucket_size:
        Bucket size used (shared across members of one detector run).
    num_buckets:
        Number of buckets in this member's assignment.
    num_runs:
        Number of (compression level) runs contributing to ``deviations``.
    p1_statistics:
        Per-compression-level mean/std of the raw SWAP-test outputs (diagnostics).
    bucket_statistics:
        Per-compression-level :class:`~repro.core.scoring.BucketStatistics`
        (per-bucket means, stds, and the degenerate-bucket mask) of the raw
        SWAP-test outputs -- the frozen reference a serving artifact scores
        unseen samples against (see :mod:`repro.serving.artifact`).
    """

    member_index: int
    deviations: np.ndarray
    selected_features: np.ndarray
    bucket_size: int
    num_buckets: int
    num_runs: int
    p1_statistics: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    bucket_statistics: Dict[int, BucketStatistics] = field(
        default_factory=dict)


@dataclass
class MemberPlan:
    """Everything one ensemble member needs besides the dataset itself.

    Plans are cheap (a few index arrays, the ansatz angles, and an RNG state)
    and picklable, so a process executor ships plans to workers while the
    dataset travels once through shared memory.  ``rng`` holds the member
    generator *after* the planning draws; :func:`execute_member` hands it to the
    engine so shot noise continues the member's deterministic stream.

    Attributes
    ----------
    member_index:
        Position of the member in the ensemble.
    member_seed:
        Seed the plan was derived from (diagnostics / re-planning).
    selected_features:
        Feature indices of this member's random projection.
    bucket_size:
        Bucket size used for the assignment.
    buckets:
        The member's random partition of sample indices.
    ansatz:
        The member's random encoder/decoder pair (angles drawn at planning time).
    rng:
        Member RNG positioned immediately after the planning draws.
    rng_state:
        Immutable snapshot of ``rng``'s bit-generator state taken at planning
        time.  Execution advances ``rng`` in place (shot noise), so this
        snapshot is what a serving artifact persists: restoring a generator
        from it replays the member's shot-noise stream bit for bit.
    """

    member_index: int
    member_seed: int
    selected_features: np.ndarray
    bucket_size: int
    buckets: BucketAssignment
    ansatz: RandomAutoencoderAnsatz
    rng: np.random.Generator
    rng_state: Optional[Dict[str, object]] = None


def plan_member(num_samples: int, num_features: int, config: QuorumConfig,
                member_index: int, member_seed: int,
                bucket_size: Optional[int] = None) -> MemberPlan:
    """Draw one member's random configuration from the dataset's *shape* only.

    The draw order (feature subset, buckets, ansatz seed) matches the seed
    implementation exactly, so a plan executed by any strategy reproduces the
    historical single-pass results bit for bit.
    """
    if num_samples < 1 or num_features < 1:
        raise ValueError("the dataset needs at least one sample and one feature")
    rng = np.random.default_rng(member_seed)

    selected = select_feature_subset(num_features, config.features_per_circuit, rng)

    if bucket_size is None:
        bucket_size = bucket_size_for_probability(
            num_samples, config.effective_anomaly_fraction, config.bucket_probability
        )
    bucket_size = min(bucket_size, num_samples)
    buckets = assign_buckets(num_samples, bucket_size, rng)

    ansatz = RandomAutoencoderAnsatz(
        num_qubits=config.num_qubits,
        num_layers=config.num_layers,
        entanglement=config.entanglement,
        seed=int(rng.integers(0, 2 ** 31 - 1)),
    )
    return MemberPlan(
        member_index=member_index,
        member_seed=member_seed,
        selected_features=selected,
        bucket_size=bucket_size,
        buckets=buckets,
        ansatz=ansatz,
        rng=rng,
        rng_state=copy.deepcopy(rng.bit_generator.state),
    )


def execute_member(normalized_data: np.ndarray, plan: MemberPlan,
                   config: QuorumConfig,
                   engine: Optional[SwapTestEngine] = None
                   ) -> EnsembleMemberResult:
    """Run one planned member over the (shared) normalized dataset.

    All compression levels of the member run as ONE fused
    ``(levels x samples)`` batch through the engine's ``p1_levels_batch``.  The
    hot path is the engine's batched linear algebra (GIL-releasing BLAS), which
    is what makes the thread executor in :mod:`repro.core.parallel` effective.
    """
    normalized_data = np.asarray(normalized_data, dtype=float)
    if normalized_data.ndim != 2:
        raise ValueError("normalized_data must be 2-D")
    amplitudes = batch_amplitudes(normalized_data[:, plan.selected_features],
                                  config.num_qubits)
    if engine is None:
        engine = make_engine(
            config.backend, config.shots, rng=plan.rng, noisy=config.noisy,
            gate_level_encoding=config.gate_level_encoding,
            num_qubits=config.num_qubits,
            simulation_backend=config.simulation_backend,
            compile_circuits=config.compile_circuits,
        )
    levels = config.effective_compression_levels
    p1_values = engine.p1_levels_batch(amplitudes, plan.ansatz, levels)
    return _score_member(plan, levels, p1_values, normalized_data.shape[0])


def _score_member(plan: MemberPlan, levels: Sequence[int],
                  p1_values: np.ndarray,
                  num_samples: int) -> EnsembleMemberResult:
    """Convert one member's ``(levels, samples)`` SWAP-test outputs to a result.

    Shared verbatim by :func:`execute_member` and
    :func:`execute_member_group`, so fused and per-member execution score
    through literally the same code.
    """
    deviations = np.zeros(num_samples)
    statistics: Dict[int, Tuple[float, float]] = {}
    references: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    for position, level in enumerate(levels):
        level_p1 = p1_values[position]
        statistics[level] = (float(np.mean(level_p1)), float(np.std(level_p1)))
        level_reference = bucket_statistics(level_p1, plan.buckets)
        references[level] = level_reference
        deviations += bucket_deviations(level_p1, plan.buckets,
                                        statistics=level_reference)

    return EnsembleMemberResult(
        member_index=plan.member_index,
        deviations=deviations,
        selected_features=plan.selected_features,
        bucket_size=plan.bucket_size,
        num_buckets=plan.buckets.num_buckets,
        num_runs=len(levels),
        p1_statistics=statistics,
        bucket_statistics=references,
    )


def plan_structure_key(plan: MemberPlan) -> Tuple:
    """Hashable compiled-circuit *structure* fingerprint of a member plan.

    Plans with equal keys share qubit counts and ansatz shape (parameters --
    the random rotation angles -- excluded), so their circuits lower to
    compiled programs with identical block structure and the members can
    execute as one stacked batch.  The fused executor groups plans by this
    key; mixed-key ensembles fall back to per-member dispatch group by group.
    """
    ansatz = plan.ansatz
    return (
        ansatz.num_qubits,
        structure_signature(
            ansatz.encoder_circuit(list(range(ansatz.num_qubits)))
        ),
    )


def execute_member_group(normalized_data: np.ndarray,
                         plans: Sequence[MemberPlan], config: QuorumConfig,
                         engine: Optional[SwapTestEngine] = None
                         ) -> List[EnsembleMemberResult]:
    """Run a structure-signature group of members as ONE stacked batch.

    All members' compression sweeps execute together through the engine's
    :meth:`~repro.core.execution.SwapTestEngine.p1_levels_member_batch` -- one
    ``(members x levels x samples)`` contraction per sweep step instead of one
    dispatch per member -- and one engine (noise model, walker, compiler
    handle) is built for the whole group instead of per member.

    Bit-identity with the serial executor is preserved by construction: the
    exact sweep consumes no randomness, and shot noise is then drawn *per
    member* from each plan's own RNG in member-major order -- exactly the
    stream the serial :func:`execute_member` would consume.  Callers must
    group plans with :func:`plan_structure_key` first.
    """
    normalized_data = np.asarray(normalized_data, dtype=float)
    if normalized_data.ndim != 2:
        raise ValueError("normalized_data must be 2-D")
    if not plans:
        raise ValueError("execute_member_group needs at least one plan")
    amplitude_stack = np.stack([
        batch_amplitudes(normalized_data[:, plan.selected_features],
                         config.num_qubits)
        for plan in plans
    ])
    if engine is None:
        engine = make_engine(
            config.backend, config.shots, noisy=config.noisy,
            gate_level_encoding=config.gate_level_encoding,
            num_qubits=config.num_qubits,
            simulation_backend=config.simulation_backend,
            compile_circuits=config.compile_circuits,
        )
    levels = config.effective_compression_levels
    exact_p1 = engine.p1_levels_member_batch(
        amplitude_stack, [plan.ansatz for plan in plans], levels
    )
    return [
        _score_member(
            plan, levels,
            apply_shot_noise(exact_p1[member], config.shots, plan.rng),
            normalized_data.shape[0],
        )
        for member, plan in enumerate(plans)
    ]


def run_ensemble_member(normalized_data: np.ndarray, config: QuorumConfig,
                        member_index: int, member_seed: int,
                        engine: Optional[SwapTestEngine] = None,
                        bucket_size: Optional[int] = None) -> EnsembleMemberResult:
    """Plan and execute one ensemble member in a single call.

    Parameters
    ----------
    normalized_data:
        Output of :class:`repro.encoding.normalization.QuorumNormalizer`, shape
        (samples, features); every value in ``[0, 1/M]``.
    config:
        Detector configuration.
    member_index:
        Position of the member (recorded in the result).
    member_seed:
        Seed controlling this member's feature subset, buckets, angles, and shot
        noise.
    engine:
        Pre-built execution engine; built from the config when omitted.
    bucket_size:
        Bucket size to use; derived from the config's target probability when
        omitted.
    """
    normalized_data = np.asarray(normalized_data, dtype=float)
    if normalized_data.ndim != 2:
        raise ValueError("normalized_data must be 2-D")
    plan = plan_member(normalized_data.shape[0], normalized_data.shape[1],
                       config, member_index, member_seed,
                       bucket_size=bucket_size)
    return execute_member(normalized_data, plan, config, engine=engine)
