"""SWAP-test execution engines used by the detector.

Each engine answers the same question -- "what is the probability of reading 1 on
the SWAP-test ancilla for this encoded sample, this random ansatz, and this
compression level?" -- with a different cost/fidelity trade-off:

* :class:`AnalyticEngine` evaluates the reduced-density-matrix expression exactly
  (vectorized over a whole batch of samples) and optionally adds binomial shot
  noise.  This is the default for noiseless sweeps and is cross-validated against
  the circuit-level engines in the test suite.
* :class:`DensityMatrixEngine` builds and simulates the full ``2n+1``-qubit circuit
  exactly; it is the only engine that supports gate/readout noise models.
* :class:`StatevectorEngine` runs stochastic trajectories of the full circuit,
  mimicking how a shot-based hardware run (or Qiskit Aer's statevector method with
  mid-circuit resets) behaves.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.algorithms.autoencoder import build_autoencoder_circuit
from repro.algorithms.swap_test import p1_from_counts
from repro.quantum.backends import FakeBrisbane
from repro.quantum.noise import NoiseModel
from repro.quantum.simulator import DensityMatrixSimulator, StatevectorSimulator

__all__ = [
    "SwapTestEngine",
    "AnalyticEngine",
    "DensityMatrixEngine",
    "StatevectorEngine",
    "make_engine",
]


class SwapTestEngine(ABC):
    """Interface shared by the three execution strategies."""

    def __init__(self, shots: Optional[int] = 4096,
                 rng: Optional[np.random.Generator] = None) -> None:
        if shots is not None and shots < 1:
            raise ValueError("shots must be positive or None for exact probabilities")
        self.shots = shots
        self.rng = rng or np.random.default_rng()

    @abstractmethod
    def p1_batch(self, amplitudes: np.ndarray, ansatz: RandomAutoencoderAnsatz,
                 compression_level: int) -> np.ndarray:
        """SWAP-test P(1) for every row of ``amplitudes`` (shape: samples x 2^n)."""

    def p1_single(self, amplitudes: Sequence[float],
                  ansatz: RandomAutoencoderAnsatz,
                  compression_level: int) -> float:
        """Convenience wrapper for a single sample."""
        batch = np.asarray(amplitudes, dtype=float).reshape(1, -1)
        return float(self.p1_batch(batch, ansatz, compression_level)[0])

    def _apply_shot_noise(self, exact_p1: np.ndarray) -> np.ndarray:
        """Replace exact probabilities with binomial shot estimates."""
        if self.shots is None:
            return exact_p1
        clipped = np.clip(exact_p1, 0.0, 1.0)
        sampled = self.rng.binomial(self.shots, clipped) / float(self.shots)
        return sampled


class AnalyticEngine(SwapTestEngine):
    """Exact reduced-density-matrix evaluation, vectorized over samples.

    For register A the circuit applies ``E``, resets the first ``k`` qubits, and
    applies ``E^dagger``; the SWAP test against the untouched encoding ``|psi>``
    then reads 1 with probability ``(1 - <psi| rho_A |psi>) / 2``.  Writing
    ``|phi> = E |psi>`` and splitting the basis index into (reset bits ``s``, kept
    bits ``r``), the overlap reduces to ``sum_s |<phi[:, 0], phi[:, s]>|^2`` --
    a handful of dense inner products per sample.
    """

    def p1_batch(self, amplitudes: np.ndarray, ansatz: RandomAutoencoderAnsatz,
                 compression_level: int) -> np.ndarray:
        amplitudes = np.asarray(amplitudes, dtype=float)
        if amplitudes.ndim != 2:
            raise ValueError("amplitudes must be a 2-D batch (samples, 2**n)")
        num_qubits = ansatz.num_qubits
        dim = 2 ** num_qubits
        if amplitudes.shape[1] != dim:
            raise ValueError("amplitude width does not match the ansatz register")
        if not 0 <= compression_level <= num_qubits:
            raise ValueError("compression level out of range")
        encoder = ansatz.encoder_unitary()
        # |phi_i> = E |psi_i>  (batched as rows).
        phi = amplitudes.astype(complex) @ encoder.T
        if compression_level == 0:
            overlap = np.ones(amplitudes.shape[0])
        else:
            reset_dim = 2 ** compression_level
            kept_dim = dim // reset_dim
            # Little-endian: the reset qubits are the low-order bits, i.e. the
            # fastest-varying axis after reshaping.
            phi_tensor = phi.reshape(-1, kept_dim, reset_dim)
            reference = phi_tensor[:, :, 0]
            inner = np.einsum("nk,nks->ns", reference.conj(), phi_tensor)
            overlap = np.sum(np.abs(inner) ** 2, axis=1)
        exact_p1 = np.clip((1.0 - overlap) / 2.0, 0.0, 1.0)
        return self._apply_shot_noise(exact_p1)


class DensityMatrixEngine(SwapTestEngine):
    """Full-circuit exact simulation (optionally noisy)."""

    def __init__(self, shots: Optional[int] = 4096,
                 rng: Optional[np.random.Generator] = None,
                 noise_model: Optional[NoiseModel] = None,
                 gate_level_encoding: bool = False) -> None:
        super().__init__(shots, rng)
        self.noise_model = noise_model
        self.gate_level_encoding = gate_level_encoding

    def p1_batch(self, amplitudes: np.ndarray, ansatz: RandomAutoencoderAnsatz,
                 compression_level: int) -> np.ndarray:
        amplitudes = np.asarray(amplitudes, dtype=float)
        if amplitudes.ndim != 2:
            raise ValueError("amplitudes must be a 2-D batch (samples, 2**n)")
        simulator = DensityMatrixSimulator(noise_model=self.noise_model)
        results = np.empty(amplitudes.shape[0])
        for index, row in enumerate(amplitudes):
            circuit = build_autoencoder_circuit(
                row, ansatz, compression_level,
                gate_level_encoding=self.gate_level_encoding, measure=False,
            )
            final_state = simulator.evolve(circuit)
            ancilla = 2 * ansatz.num_qubits
            exact_p1 = final_state.probability_of_outcome(ancilla, 1)
            results[index] = exact_p1
        return self._apply_shot_noise(results)


class StatevectorEngine(SwapTestEngine):
    """Trajectory-sampled full-circuit simulation (no noise model support)."""

    def __init__(self, shots: Optional[int] = 4096,
                 rng: Optional[np.random.Generator] = None,
                 max_trajectories: Optional[int] = 64) -> None:
        if shots is None:
            raise ValueError("the statevector engine is shot-based; provide shots")
        super().__init__(shots, rng)
        self.max_trajectories = max_trajectories

    def p1_batch(self, amplitudes: np.ndarray, ansatz: RandomAutoencoderAnsatz,
                 compression_level: int) -> np.ndarray:
        amplitudes = np.asarray(amplitudes, dtype=float)
        if amplitudes.ndim != 2:
            raise ValueError("amplitudes must be a 2-D batch (samples, 2**n)")
        seed = int(self.rng.integers(0, 2 ** 31 - 1))
        simulator = StatevectorSimulator(seed=seed,
                                         max_trajectories=self.max_trajectories)
        results = np.empty(amplitudes.shape[0])
        for index, row in enumerate(amplitudes):
            circuit = build_autoencoder_circuit(row, ansatz, compression_level,
                                                measure=True)
            outcome = simulator.run(circuit, shots=self.shots)
            results[index] = p1_from_counts(outcome.counts, clbit=0)
        return results


def make_engine(backend: str, shots: Optional[int],
                rng: Optional[np.random.Generator] = None,
                noisy: bool = False,
                gate_level_encoding: bool = False,
                num_qubits: int = 3) -> SwapTestEngine:
    """Factory used by the detector to build the configured engine."""
    backend = backend.lower()
    if backend == "analytic":
        if noisy:
            raise ValueError("the analytic engine cannot model hardware noise")
        return AnalyticEngine(shots=shots, rng=rng)
    if backend == "density_matrix":
        noise_model = None
        if noisy:
            noise_model = FakeBrisbane(num_qubits=2 * num_qubits + 1).to_noise_model()
        return DensityMatrixEngine(shots=shots, rng=rng, noise_model=noise_model,
                                   gate_level_encoding=gate_level_encoding or noisy)
    if backend == "statevector":
        if noisy:
            raise ValueError("the statevector engine cannot model hardware noise")
        return StatevectorEngine(shots=shots or 1024, rng=rng)
    raise ValueError(f"unknown backend {backend!r}")
