"""SWAP-test execution engines used by the detector.

Each engine answers the same question -- "what is the probability of reading 1 on
the SWAP-test ancilla for this encoded sample, this random ansatz, and this
compression level?" -- with a different cost/fidelity trade-off:

* :class:`AnalyticEngine` evaluates the reduced-density-matrix expression exactly
  (vectorized over a whole batch of samples) and optionally adds binomial shot
  noise.  This is the default for noiseless sweeps and is cross-validated against
  the circuit-level engines in the test suite.
* :class:`DensityMatrixEngine` evolves register A's density matrix exactly.  The
  noiseless path runs the whole sample batch through the batched kernels of a
  :class:`~repro.quantum.backend.SimulationBackend`; noisy or gate-level runs
  simulate the full ``2n+1``-qubit circuit, but as one *batched* circuit walk
  over all samples (every sample shares the gate structure; only the amplitude
  encoding differs).  A noisy compression sweep additionally checkpoints the
  post-encoding density batch -- every level shares the circuit prefix, so the
  prefix is walked once per sweep and only the per-level suffix (reset +
  decoder + SWAP test) is replayed from the checkpoint.
* :class:`StatevectorEngine` runs stochastic trajectories, mimicking how a
  shot-based hardware run (or Qiskit Aer's statevector method with mid-circuit
  resets) behaves.  All samples and all trajectories are evolved together as one
  ``(samples * trajectories, 2**n)`` batch.

Batched execution
-----------------
Every engine accepts ``simulation_backend=`` (a name from
:func:`repro.quantum.backend.available_simulation_backends` or a
:class:`~repro.quantum.backend.SimulationBackend` instance; default
``"numpy"``) and routes its linear algebra through that backend's batched
primitives: amplitudes enter as ``(samples, 2**n)`` float arrays, the leading
batch axis is preserved end to end, and the ansatz unitary ``E`` is built once
per ensemble member (cached on the ansatz) rather than once per sample.

``p1_levels_batch`` fuses a member's whole compression sweep into one call:
samples and levels form a single flattened batch wherever the math allows, and
the shot-noise RNG is consumed in exactly the order the historical per-level
loop used, so fixed-seed results are unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.algorithms.autoencoder import (
    build_autoencoder_circuit,
    build_autoencoder_prefix,
    build_autoencoder_suffix,
)
from repro.encoding.amplitude import state_preparation_circuit
from repro.quantum.backend import SimulationBackend, get_simulation_backend
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.backends import FakeBrisbane
from repro.quantum.compiler import CircuitCompiler, default_compiler
from repro.quantum.noise import NoiseModel
from repro.quantum.simulator import (
    BatchedDensityMatrixSimulator,
    DensityMatrixSimulator,
    IncompatibleMemberBatch,
)

__all__ = [
    "SwapTestEngine",
    "AnalyticEngine",
    "DensityMatrixEngine",
    "StatevectorEngine",
    "apply_shot_noise",
    "make_engine",
]


def apply_shot_noise(exact_p1: np.ndarray, shots: Optional[int],
                     rng: np.random.Generator) -> np.ndarray:
    """Replace exact probabilities with binomial shot estimates.

    This is the single source of truth for how every engine converts exact
    probabilities into shot estimates: one elementwise binomial draw over the
    clipped array, consuming ``rng`` in C order.  The online scorer
    (:mod:`repro.serving.scorer`) calls it directly with a restored member RNG
    so that serving-time shot noise is bit-identical to fit-time shot noise.
    """
    if shots is None:
        return exact_p1
    clipped = np.clip(exact_p1, 0.0, 1.0)
    return rng.binomial(shots, clipped) / float(shots)


class SwapTestEngine(ABC):
    """Interface shared by the three execution strategies.

    Every engine executes *compiled programs* by default: circuits are lowered
    once through a :class:`~repro.quantum.compiler.CircuitCompiler` (shared
    LRU cache keyed by circuit signature, noise fingerprint, and backend
    dtype) into fused dense operators, and the per-sweep work reduces to a few
    batched matmuls.  ``compile_circuits=False`` selects the gate-by-gate
    interpreted paths, retained as the reference implementation for the parity
    test suite.
    """

    def __init__(self, shots: Optional[int] = 4096,
                 rng: Optional[np.random.Generator] = None,
                 simulation_backend: Union[str, SimulationBackend, None] = None,
                 compiler: Optional[CircuitCompiler] = None,
                 compile_circuits: bool = True
                 ) -> None:
        if shots is not None and shots < 1:
            raise ValueError("shots must be positive or None for exact probabilities")
        self.shots = shots
        self.rng = rng or np.random.default_rng()
        self.backend = get_simulation_backend(simulation_backend)
        self.compiler = compiler if compiler is not None else default_compiler()
        self.compile_circuits = bool(compile_circuits)

    @abstractmethod
    def p1_batch(self, amplitudes: np.ndarray, ansatz: RandomAutoencoderAnsatz,
                 compression_level: int) -> np.ndarray:
        """SWAP-test P(1) for every row of ``amplitudes`` (shape: samples x 2^n)."""

    def p1_levels_batch(self, amplitudes: np.ndarray,
                        ansatz: RandomAutoencoderAnsatz,
                        compression_levels: Sequence[int]) -> np.ndarray:
        """SWAP-test P(1) for every (level, sample) pair; shape ``(levels, samples)``.

        This is the fused entry point the ensemble executor uses: one call per
        member covers the member's whole compression sweep.  The default
        implementation runs the levels sequentially through :meth:`p1_batch`
        (consuming the shot-noise RNG in exactly the order the historical
        per-level loop did); engines whose levels share expensive intermediate
        state override it with a genuinely fused computation.
        """
        levels = self._validated_levels(compression_levels, ansatz)
        return np.stack([
            self.p1_batch(amplitudes, ansatz, level)
            for level in levels
        ])

    def p1_levels_member_batch(self, amplitude_stack: np.ndarray,
                               ansatzes: Sequence[RandomAutoencoderAnsatz],
                               compression_levels: Sequence[int]) -> np.ndarray:
        """Exact P(1) for a whole signature group; ``(members, levels, samples)``.

        The cross-member fused entry point: one call covers the compression
        sweeps of *every* member in a structure-signature group
        (``amplitude_stack[m]`` holds member ``m``'s encoded samples,
        ``ansatzes[m]`` its random ansatz).  Probabilities are **exact** -- no
        shot noise is applied and ``self.rng`` is never touched -- because the
        caller (:func:`repro.core.ensemble.execute_member_group`) draws shot
        noise per member from each plan's own restored RNG in member-major
        order, which keeps every member's random stream bitwise identical to
        the serial executor.

        The default loops members through :meth:`_exact_levels_batch`;
        :class:`AnalyticEngine` and :class:`DensityMatrixEngine` override it
        with genuinely stacked computations (one member-batched contraction
        per sweep step).
        """
        stack, ansatzes = self._validated_member_group(amplitude_stack,
                                                       ansatzes)
        levels = self._validated_levels(compression_levels, ansatzes[0])
        return np.stack([
            self._exact_levels_batch(stack[m], ansatzes[m], levels)
            for m in range(stack.shape[0])
        ])

    def _exact_levels_batch(self, amplitudes: np.ndarray,
                            ansatz: RandomAutoencoderAnsatz,
                            levels: Sequence[int]) -> np.ndarray:
        """Exact (shot-noise-free) ``(levels, samples)`` sweep probabilities.

        Engines that support cross-member fusion expose their exact sweep
        here (inputs pre-validated); shot-based engines (statevector) consume
        RNG *during* evolution and therefore cannot separate exact
        probabilities from noise, so they do not implement it -- the fused
        executor never selects them.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no exact member-batched sweep; "
            "run its members individually through p1_levels_batch"
        )

    def _validated_member_group(self, amplitude_stack: np.ndarray,
                                ansatzes: Sequence[RandomAutoencoderAnsatz]
                                ) -> tuple:
        """Validate a member-batched sweep's stacked inputs."""
        stack = np.asarray(amplitude_stack, dtype=float)
        if stack.ndim != 3:
            raise ValueError(
                "amplitude_stack must be 3-D (members, samples, 2**n)"
            )
        ansatzes = list(ansatzes)
        if not ansatzes or stack.shape[0] != len(ansatzes):
            raise ValueError("one ansatz per member stack entry is required")
        num_qubits = ansatzes[0].num_qubits
        if any(ansatz.num_qubits != num_qubits for ansatz in ansatzes[1:]):
            raise ValueError(
                "a member group must share one register size; group plans by "
                "structure signature before batching"
            )
        for member in range(stack.shape[0]):
            self._validated_amplitudes(stack[member], ansatzes[member])
        return stack, ansatzes

    def _member_encoder_stack(self, ansatzes: Sequence[RandomAutoencoderAnsatz]
                              ) -> np.ndarray:
        """The group's ``(members, 2^n, 2^n)`` encoder parameter stack.

        With compilation on, the stack is one cached member-stacked compile
        (per-member fused unitaries are shared with the serial path's cache
        entries, so results are bitwise identical to serial encoders); with
        compilation off, the per-ansatz dense unitaries are stacked directly.
        """
        if self.compile_circuits:
            circuits = [
                ansatz.encoder_circuit(list(range(ansatz.num_qubits)))
                for ansatz in ansatzes
            ]
            return self.compiler.member_stacked_unitary(circuits, self.backend)
        return np.stack([ansatz.encoder_unitary() for ansatz in ansatzes])

    def p1_single(self, amplitudes: Sequence[float],
                  ansatz: RandomAutoencoderAnsatz,
                  compression_level: int) -> float:
        """Convenience wrapper for a single sample."""
        batch = np.asarray(amplitudes, dtype=float).reshape(1, -1)
        return float(self.p1_batch(batch, ansatz, compression_level)[0])

    def _validated_levels(self, compression_levels: Sequence[int],
                          ansatz: RandomAutoencoderAnsatz) -> list:
        """Validate a compression sweep for ``p1_levels_batch`` implementations."""
        levels = [int(level) for level in compression_levels]
        if not levels:
            raise ValueError("at least one compression level is required")
        for level in levels:
            if not 0 <= level <= ansatz.num_qubits:
                raise ValueError("compression level out of range")
        return levels

    def _validated_amplitudes(self, amplitudes: np.ndarray,
                              ansatz: RandomAutoencoderAnsatz) -> np.ndarray:
        """Level-independent amplitude validation, shared by every entry point.

        Level sweeps validate amplitudes exactly once (and validate *every*
        level of the sweep via :meth:`_validated_levels`), rather than checking
        the batch against the first level only.
        """
        amplitudes = np.asarray(amplitudes, dtype=float)
        if amplitudes.ndim != 2:
            raise ValueError("amplitudes must be a 2-D batch (samples, 2**n)")
        if amplitudes.shape[1] != 2 ** ansatz.num_qubits:
            raise ValueError("amplitude width does not match the ansatz register")
        norms = np.linalg.norm(amplitudes, axis=1)
        if np.any(np.abs(norms - 1.0) > 1e-6):
            # The circuit-level path would reject this in `initialize`; fail the
            # batched paths just as loudly instead of returning garbage overlaps.
            raise ValueError("amplitude rows must be normalized statevectors")
        return amplitudes

    def _validated_batch(self, amplitudes: np.ndarray,
                         ansatz: RandomAutoencoderAnsatz,
                         compression_level: int) -> np.ndarray:
        """Common input validation for ``p1_batch`` implementations."""
        if not 0 <= compression_level <= ansatz.num_qubits:
            raise ValueError("compression level out of range")
        return self._validated_amplitudes(amplitudes, ansatz)

    def _apply_shot_noise(self, exact_p1: np.ndarray) -> np.ndarray:
        """Replace exact probabilities with binomial shot estimates."""
        return apply_shot_noise(exact_p1, self.shots, self.rng)

    def _encoder_unitary(self, ansatz: RandomAutoencoderAnsatz) -> np.ndarray:
        """The member's dense encoder ``E`` -- the compiled pure-state program.

        With compilation on, the encoder circuit is fused through the shared
        compiler cache (one ``2^n x 2^n`` unitary per member, reused across
        engines, levels, and repeated sweeps); the lowering matches
        :meth:`~repro.algorithms.ansatz.RandomAutoencoderAnsatz.encoder_unitary`
        operation for operation, so results are bitwise unchanged.  With
        compilation off, the ansatz's own per-instance cache is used.
        """
        if self.compile_circuits:
            return self.compiler.fused_unitary(
                ansatz.encoder_circuit(list(range(ansatz.num_qubits))),
                self.backend,
            )
        return ansatz.encoder_unitary()


class AnalyticEngine(SwapTestEngine):
    """Exact reduced-density-matrix evaluation, vectorized over samples.

    For register A the circuit applies ``E``, resets the first ``k`` qubits, and
    applies ``E^dagger``; the SWAP test against the untouched encoding ``|psi>``
    then reads 1 with probability ``(1 - <psi| rho_A |psi>) / 2``.  Writing
    ``|phi> = E |psi>`` and splitting the basis index into (reset bits ``s``, kept
    bits ``r``), the overlap reduces to ``sum_s |<phi[:, 0], phi[:, s]>|^2`` --
    a handful of dense inner products per sample.
    """

    def p1_batch(self, amplitudes: np.ndarray, ansatz: RandomAutoencoderAnsatz,
                 compression_level: int) -> np.ndarray:
        return self.p1_levels_batch(amplitudes, ansatz, (compression_level,))[0]

    def p1_levels_batch(self, amplitudes: np.ndarray,
                        ansatz: RandomAutoencoderAnsatz,
                        compression_levels: Sequence[int]) -> np.ndarray:
        levels = self._validated_levels(compression_levels, ansatz)
        amplitudes = self._validated_amplitudes(amplitudes, ansatz)
        # One elementwise binomial call over the (levels, samples) array draws
        # bit-identically to the historical sequential per-level calls.
        return self._apply_shot_noise(
            self._exact_levels_batch(amplitudes, ansatz, levels)
        )

    def _exact_levels_batch(self, amplitudes: np.ndarray,
                            ansatz: RandomAutoencoderAnsatz,
                            levels: Sequence[int]) -> np.ndarray:
        # |phi_i> = E |psi_i>, the whole batch in one matmul (E is cached on the
        # ansatz, so it is built once per ensemble member) -- and shared by every
        # compression level of the sweep.
        phi = self.backend.apply_unitary_batch(
            self.backend.as_states(amplitudes), self._encoder_unitary(ansatz)
        )
        overlap = self.backend.compression_overlap_levels(phi, levels)
        return np.clip((1.0 - overlap) / 2.0, 0.0, 1.0)

    def p1_levels_member_batch(self, amplitude_stack: np.ndarray,
                               ansatzes: Sequence[RandomAutoencoderAnsatz],
                               compression_levels: Sequence[int]) -> np.ndarray:
        """Whole signature group in one stacked encode + overlap pass.

        The member axis rides along for free: the encoders become one
        ``(members, dim, dim)`` parameter stack applied by a single batched
        matmul, and the overlap reduction runs over the flattened
        ``(members * samples)`` batch.  Both kernels are elementwise /
        per-slice in the batch axis, so every member's slice is bitwise
        identical to its serial :meth:`p1_levels_batch` result.
        """
        stack, ansatzes = self._validated_member_group(amplitude_stack,
                                                       ansatzes)
        levels = self._validated_levels(compression_levels, ansatzes[0])
        members, samples, dim = stack.shape
        psi = self.backend.as_states(
            stack.reshape(members * samples, dim)
        ).reshape(members, samples, dim)
        phi = self.backend.apply_compiled_unitary_member_batch(
            psi, self._member_encoder_stack(ansatzes)
        )
        overlap = self.backend.compression_overlap_levels(
            phi.reshape(members * samples, dim), levels
        )
        exact_p1 = np.clip((1.0 - overlap) / 2.0, 0.0, 1.0)
        # (levels, members * samples) -> (members, levels, samples), C-ordered
        # so the caller's per-member shot-noise draws see contiguous slices.
        return np.ascontiguousarray(
            exact_p1.reshape(len(levels), members, samples).transpose(1, 0, 2)
        )


class DensityMatrixEngine(SwapTestEngine):
    """Exact density-matrix simulation (optionally noisy).

    Noiseless runs evolve register A's ``2^n x 2^n`` density matrix for the
    whole sample batch at once through the simulation backend's batched
    kernels; this is mathematically identical to simulating the full
    ``2n+1``-qubit circuit (the reference register stays pure and the SWAP test
    reads ``P(1) = (1 - <psi| rho_A |psi>) / 2``).  Runs with a noise model or
    gate-level encoding use :meth:`p1_batch_circuit_level`, which walks the full
    circuit for *all samples at once* -- the gate structure is shared across the
    batch, so noise channels apply to whole density-matrix batches and only the
    amplitude encoding is per-sample.  Noisy compression sweeps go further:
    :meth:`p1_levels_batch_circuit_level` walks the level-independent circuit
    prefix exactly once for the whole ``(levels x samples)`` sweep, checkpoints
    the post-prefix density batch, and replays only the per-level suffix.
    """

    def __init__(self, shots: Optional[int] = 4096,
                 rng: Optional[np.random.Generator] = None,
                 noise_model: Optional[NoiseModel] = None,
                 gate_level_encoding: bool = False,
                 simulation_backend: Union[str, SimulationBackend, None] = None,
                 compiler: Optional[CircuitCompiler] = None,
                 compile_circuits: bool = True
                 ) -> None:
        super().__init__(shots, rng, simulation_backend=simulation_backend,
                         compiler=compiler, compile_circuits=compile_circuits)
        self.noise_model = noise_model
        self.gate_level_encoding = gate_level_encoding

    def p1_batch(self, amplitudes: np.ndarray, ansatz: RandomAutoencoderAnsatz,
                 compression_level: int) -> np.ndarray:
        amplitudes = self._validated_batch(amplitudes, ansatz, compression_level)
        if self.noise_model is not None or self.gate_level_encoding:
            return self.p1_batch_circuit_level(amplitudes, ansatz,
                                               compression_level)
        return self.p1_levels_batch(amplitudes, ansatz, (compression_level,))[0]

    def p1_levels_batch(self, amplitudes: np.ndarray,
                        ansatz: RandomAutoencoderAnsatz,
                        compression_levels: Sequence[int]) -> np.ndarray:
        levels = self._validated_levels(compression_levels, ansatz)
        amplitudes = self._validated_amplitudes(amplitudes, ansatz)
        if self.noise_model is not None or self.gate_level_encoding:
            return self.p1_levels_batch_circuit_level(amplitudes, ansatz, levels)
        return self._apply_shot_noise(
            self._exact_levels_batch(amplitudes, ansatz, levels)
        )

    def _exact_levels_batch(self, amplitudes: np.ndarray,
                            ansatz: RandomAutoencoderAnsatz,
                            levels: Sequence[int]) -> np.ndarray:
        if self.noise_model is not None or self.gate_level_encoding:
            return self._circuit_level_sweep(amplitudes, ansatz, levels)
        backend = self.backend
        psi = backend.as_states(amplitudes)
        encoder = self._encoder_unitary(ansatz)
        decoder = encoder.conj().T
        # Encoding and the pure-state density build are level-independent and
        # run once for the whole sweep; only the (cheap) reset/decode/overlap
        # tail is per level, each level's batch staying cache-sized.
        phi = backend.apply_unitary_batch(psi, encoder)
        rhos = backend.density_from_states(phi)
        exact_p1 = np.empty((len(levels), amplitudes.shape[0]))
        for position, level in enumerate(levels):
            level_rhos = backend.reset_low_qubits_density_batch(rhos, level)
            level_rhos = backend.evolve_density_batch(level_rhos, decoder)
            overlap = backend.expectation_batch(level_rhos, psi)
            exact_p1[position] = np.clip((1.0 - overlap) / 2.0, 0.0, 1.0)
        return exact_p1

    def p1_levels_member_batch(self, amplitude_stack: np.ndarray,
                               ansatzes: Sequence[RandomAutoencoderAnsatz],
                               compression_levels: Sequence[int]) -> np.ndarray:
        """Whole signature group through one member-batched circuit walk.

        The noisy (or gate-level) compiled path is the genuinely fused one:
        every member's per-sample prefixes walk together through
        :meth:`~repro.quantum.simulator.BatchedDensityMatrixSimulator
        .evolve_member_batch` (member-shared gate runs execute as
        member-stacked compiled programs, per-sample encoding columns flatten
        across members), and each level of the sweep is ONE member-batched
        expectation of the group's stacked Heisenberg observables against the
        ``(members, samples, d, d)`` checkpoint stack.  Interpreted mode
        (``compile_circuits=False``) and the noiseless initialize-encoding
        path keep the reference per-member loop.
        """
        if (self.noise_model is None and not self.gate_level_encoding) \
                or not self.compile_circuits:
            return super().p1_levels_member_batch(amplitude_stack, ansatzes,
                                                  compression_levels)
        stack, ansatzes = self._validated_member_group(amplitude_stack,
                                                       ansatzes)
        levels = self._validated_levels(compression_levels, ansatzes[0])
        return self._circuit_level_member_sweep(stack, ansatzes, levels)

    def _circuit_level_member_sweep(self, stack: np.ndarray,
                                    ansatzes: Sequence[RandomAutoencoderAnsatz],
                                    levels: Sequence[int]) -> np.ndarray:
        """Member-batched twin of :meth:`_circuit_level_sweep`.

        Falls back to per-member checkpoint walks (identical arithmetic,
        shared walker) when per-sample structural divergence -- e.g. a
        zero-amplitude rotation elided from one sample's encoding -- makes
        the group's prefixes non-stackable.
        """
        members, samples = stack.shape[:2]
        walker = BatchedDensityMatrixSimulator(
            noise_model=self.noise_model, backend=self.backend,
            compiler=self.compiler, compile_programs=self.compile_circuits,
        )
        member_prefixes = self._member_prefix_batches(stack, ansatzes)
        try:
            checkpoints = walker.evolve_member_batch(member_prefixes)
        except IncompatibleMemberBatch:
            checkpoints = np.stack([
                walker.evolve_batch(prefixes) for prefixes in member_prefixes
            ])
        ancilla = 2 * ansatzes[0].num_qubits
        exact_p1 = np.empty((members, len(levels), samples))
        for position, level in enumerate(levels):
            suffixes = [
                build_autoencoder_suffix(ansatz, level, measure=False)
                for ansatz in ansatzes
            ]
            observables = self.compiler.member_stacked_dual_observable(
                suffixes, self.noise_model, ancilla, self.backend
            )
            exact_p1[:, position, :] = (
                self.backend.observable_expectation_density_member_batch(
                    checkpoints, observables
                )
            )
        return exact_p1

    def _member_prefix_batches(self, stack: np.ndarray,
                               ansatzes: Sequence[RandomAutoencoderAnsatz]
                               ) -> List[List[QuantumCircuit]]:
        """Per-member prefix circuits with each distinct part built once.

        :func:`~repro.algorithms.autoencoder.build_autoencoder_prefix`
        synthesizes the sample's two-register state preparation and the
        member's encoder for every (member, sample) pair.  Across a fused
        signature group that re-synthesizes each member's encoder once per
        sample and each repeated amplitude row (members drawing the same
        feature subset encode identical rows) once per member.  Here the
        encoding block is built once per *distinct* row, the encoder once per
        member, and each prefix is assembled by instruction-list
        concatenation -- instruction for instruction identical to the
        per-pair builder, so structure signatures, compiled-program cache
        keys, and walk results are all unchanged.
        """
        num_qubits = ansatzes[0].num_qubits
        total_qubits = 2 * num_qubits + 1
        register_a = list(range(num_qubits))
        register_b = list(range(num_qubits, 2 * num_qubits))
        encodings: Dict[bytes, List[Instruction]] = {}

        def encoding_instructions(row: np.ndarray) -> List[Instruction]:
            key = row.tobytes()
            cached = encodings.get(key)
            if cached is not None:
                return cached
            head = QuantumCircuit(total_qubits, 1)
            if self.gate_level_encoding:
                preparation = state_preparation_circuit(row, num_qubits)
                head.compose(preparation, qubits=register_a,
                             clbits=[0] * preparation.num_clbits)
                head.compose(preparation, qubits=register_b,
                             clbits=[0] * preparation.num_clbits)
            else:
                head.initialize(row, register_a)
                head.initialize(row, register_b)
            head.barrier()
            encodings[key] = head.instructions
            return head.instructions

        member_prefixes: List[List[QuantumCircuit]] = []
        for member, ansatz in enumerate(ansatzes):
            encoder = ansatz.encoder_circuit(register_a,
                                             num_circuit_qubits=total_qubits)
            tail = QuantumCircuit(total_qubits, 1)
            tail.compose(encoder, clbits=[0] * encoder.num_clbits)
            batch: List[QuantumCircuit] = []
            for row in stack[member]:
                prefix = QuantumCircuit(total_qubits, 1,
                                        name="quorum_autoencoder_prefix")
                prefix.instructions = (encoding_instructions(row)
                                       + tail.instructions)
                batch.append(prefix)
            member_prefixes.append(batch)
        return member_prefixes

    def p1_levels_batch_circuit_level(self, amplitudes: np.ndarray,
                                      ansatz: RandomAutoencoderAnsatz,
                                      compression_levels: Sequence[int]
                                      ) -> np.ndarray:
        """Checkpointed full-circuit sweep (the noisy multi-level hot path).

        Every compression level of the sweep shares the same circuit prefix
        (amplitude encoding of both registers + the encoder ansatz); only the
        suffix (reset block + decoder + SWAP test) depends on the level.  The
        walker therefore evolves the batched prefix **exactly once** (with its
        shared gate runs executing as compiled fused operators) and keeps the
        post-prefix density batch as a checkpoint.  With compilation on (the
        default), each level's sample-independent suffix is then lowered once
        into a cached Heisenberg-picture observable and evaluated as a single
        batched matmul against the checkpoint; with ``compile_circuits=False``
        the suffix is replayed forward from a snapshot, gate by gate, exactly
        as in the pre-compilation implementation.  Either way results agree
        with looping :meth:`p1_batch_circuit_level` per level, and the
        shot-noise RNG is consumed in the exact level-major order the
        historical per-level loop used.
        """
        levels = self._validated_levels(compression_levels, ansatz)
        amplitudes = self._validated_amplitudes(amplitudes, ansatz)
        # One elementwise binomial call over the (levels, samples) array draws
        # bit-identically to the historical sequential per-level calls.
        return self._apply_shot_noise(
            self._circuit_level_sweep(amplitudes, ansatz, levels)
        )

    def _circuit_level_sweep(self, amplitudes: np.ndarray,
                             ansatz: RandomAutoencoderAnsatz,
                             levels: Sequence[int]) -> np.ndarray:
        """Exact ``(levels, samples)`` probabilities of the checkpointed sweep.

        Shared by the fused multi-level entry point and the single-level
        ``p1_batch_circuit_level``, so a per-level loop over the latter is
        arithmetically identical to one fused sweep.  With compilation on, the
        per-level suffix never runs forward at all: the compiler's cached
        Heisenberg-picture observable ``W = C^dagger(|1><1|_ancilla)`` turns
        each level into ONE batched matmul against the checkpoint.
        """
        prefixes = [
            build_autoencoder_prefix(
                row, ansatz, gate_level_encoding=self.gate_level_encoding,
            )
            for row in amplitudes
        ]
        walker = BatchedDensityMatrixSimulator(
            noise_model=self.noise_model, backend=self.backend,
            compiler=self.compiler, compile_programs=self.compile_circuits,
        )
        checkpoint = walker.evolve_batch(prefixes)
        ancilla = 2 * ansatz.num_qubits
        exact_p1 = np.empty((len(levels), amplitudes.shape[0]))
        for position, level in enumerate(levels):
            suffix = build_autoencoder_suffix(ansatz, level, measure=False)
            if self.compile_circuits:
                observable = self.compiler.dual_observable(
                    suffix, self.noise_model, ancilla, self.backend
                )
                exact_p1[position] = (
                    self.backend.observable_expectation_density_batch(
                        checkpoint, observable
                    )
                )
                continue
            rhos = walker.replay_suffix_batch(checkpoint, suffix)
            exact_p1[position] = self.backend.probability_one_density_batch(
                rhos, ancilla
            )
        return exact_p1

    def p1_batch_circuit_level(self, amplitudes: np.ndarray,
                               ansatz: RandomAutoencoderAnsatz,
                               compression_level: int) -> np.ndarray:
        """Full-circuit simulation of the whole batch at ONE compression level.

        Every sample's circuit shares the same gate structure -- only the
        amplitude encoding differs -- so all samples walk one batched circuit
        through :class:`~repro.quantum.simulator.BatchedDensityMatrixSimulator`
        instead of looping a per-sample simulator.  Level sweeps do not loop
        this method: :meth:`p1_levels_batch_circuit_level` checkpoints the
        shared prefix and replays only the per-level suffix (this per-level
        walk remains the pre-checkpoint regression reference).
        """
        amplitudes = self._validated_batch(amplitudes, ansatz, compression_level)
        if self.compile_circuits:
            # Same checkpoint + compiled-observable arithmetic as the fused
            # sweep, so a per-level loop over this method stays bitwise
            # identical to one `p1_levels_batch` call.
            exact_p1 = self._circuit_level_sweep(amplitudes, ansatz,
                                                 [compression_level])[0]
            return self._apply_shot_noise(exact_p1)
        circuits = [
            build_autoencoder_circuit(
                row, ansatz, compression_level,
                gate_level_encoding=self.gate_level_encoding, measure=False,
            )
            for row in amplitudes
        ]
        walker = BatchedDensityMatrixSimulator(noise_model=self.noise_model,
                                               backend=self.backend,
                                               compiler=self.compiler,
                                               compile_programs=False)
        rhos = walker.evolve_batch(circuits)
        ancilla = 2 * ansatz.num_qubits
        exact_p1 = self.backend.probability_one_density_batch(rhos, ancilla)
        return self._apply_shot_noise(exact_p1)

    def p1_per_sample_circuit_level(self, amplitudes: np.ndarray,
                                    ansatz: RandomAutoencoderAnsatz,
                                    compression_level: int) -> np.ndarray:
        """Reference per-sample circuit walk (regression baseline for the batched
        walk; not used on any hot path)."""
        amplitudes = self._validated_batch(amplitudes, ansatz, compression_level)
        simulator = DensityMatrixSimulator(noise_model=self.noise_model,
                                           backend=self.backend)
        results = np.empty(amplitudes.shape[0])
        for index, row in enumerate(amplitudes):
            circuit = build_autoencoder_circuit(
                row, ansatz, compression_level,
                gate_level_encoding=self.gate_level_encoding, measure=False,
            )
            final_state = simulator.evolve(circuit)
            ancilla = 2 * ansatz.num_qubits
            exact_p1 = final_state.probability_of_outcome(ancilla, 1)
            results[index] = exact_p1
        return self._apply_shot_noise(results)


class StatevectorEngine(SwapTestEngine):
    """Trajectory-sampled simulation (no noise model support).

    Every trajectory keeps register A pure: the partial reset becomes a
    projective measurement (outcome drawn per trajectory) followed by a
    conditional flip to |0>.  The engine therefore evolves a
    ``(samples * trajectories, 2**n)`` batch of register-A states through the
    backend kernels, computes each trajectory's exact ancilla probability
    ``(1 - |<psi|phi_traj>|^2) / 2``, and distributes the shot budget over the
    trajectories exactly like the per-circuit trajectory simulator does.
    """

    #: Upper bound on (samples x trajectories) rows evolved at once; chunks of
    #: the sample axis keep peak memory bounded for large datasets while each
    #: chunk still runs through one batched kernel call.
    MAX_FLAT_BATCH = 1 << 15

    def __init__(self, shots: Optional[int] = 4096,
                 rng: Optional[np.random.Generator] = None,
                 max_trajectories: Optional[int] = 64,
                 simulation_backend: Union[str, SimulationBackend, None] = None,
                 compiler: Optional[CircuitCompiler] = None,
                 compile_circuits: bool = True
                 ) -> None:
        if shots is None:
            raise ValueError("the statevector engine is shot-based; provide shots")
        super().__init__(shots, rng, simulation_backend=simulation_backend,
                         compiler=compiler, compile_circuits=compile_circuits)
        self.max_trajectories = max_trajectories

    def p1_batch(self, amplitudes: np.ndarray, ansatz: RandomAutoencoderAnsatz,
                 compression_level: int) -> np.ndarray:
        amplitudes = self._validated_batch(amplitudes, ansatz, compression_level)
        num_samples = amplitudes.shape[0]

        trajectories = self.shots
        if compression_level == 0:
            # No reset -> the circuit is deterministic; one trajectory suffices.
            trajectories = 1
        elif self.max_trajectories is not None:
            trajectories = min(trajectories, self.max_trajectories)
        trajectories = max(trajectories, 1)
        shots_per_trajectory = np.asarray(self._split_shots(self.shots,
                                                            trajectories))
        trajectories = shots_per_trajectory.shape[0]

        results = np.empty(num_samples)
        chunk = max(1, self.MAX_FLAT_BATCH // trajectories)
        for start in range(0, num_samples, chunk):
            stop = min(start + chunk, num_samples)
            results[start:stop] = self._p1_chunk(
                amplitudes[start:stop], ansatz, compression_level,
                trajectories, shots_per_trajectory,
            )
        return results

    def _p1_chunk(self, amplitudes: np.ndarray,
                  ansatz: RandomAutoencoderAnsatz, compression_level: int,
                  trajectories: int,
                  shots_per_trajectory: np.ndarray) -> np.ndarray:
        """Trajectory-sample one chunk of samples as a single flat batch."""
        backend = self.backend
        encoder = self._encoder_unitary(ansatz)
        psi = backend.as_states(amplitudes)
        phi = backend.apply_unitary_batch(psi, encoder)
        # One flat batch over (sample, trajectory) pairs; sample-major so that
        # reshaping back to (samples, trajectories) is a plain view.
        states = np.repeat(phi, trajectories, axis=0)
        for qubit in range(compression_level):
            probability_one = backend.probability_one_batch(states, qubit)
            outcomes = (self.rng.random(states.shape[0])
                        < probability_one).astype(int)
            states = backend.collapse_qubit_batch(states, qubit, outcomes,
                                                  reset_to_zero=True)
        decoded = backend.apply_unitary_batch(states, encoder.conj().T)
        fidelity = backend.overlap_batch(np.repeat(psi, trajectories, axis=0),
                                         decoded)
        p1 = np.clip((1.0 - fidelity) / 2.0, 0.0, 1.0)
        p1 = p1.reshape(amplitudes.shape[0], trajectories)
        ones = self.rng.binomial(shots_per_trajectory[None, :], p1).sum(axis=1)
        return ones / float(self.shots)

    @staticmethod
    def _split_shots(shots: int, trajectories: int) -> list:
        base = shots // trajectories
        remainder = shots % trajectories
        split = [base + (1 if index < remainder else 0)
                 for index in range(trajectories)]
        return [s for s in split if s > 0] or [shots]


def make_engine(backend: str, shots: Optional[int],
                rng: Optional[np.random.Generator] = None,
                noisy: bool = False,
                gate_level_encoding: bool = False,
                num_qubits: int = 3,
                simulation_backend: Union[str, SimulationBackend, None] = None,
                compile_circuits: bool = True,
                compiler: Optional[CircuitCompiler] = None
                ) -> SwapTestEngine:
    """Factory used by the detector to build the configured engine.

    ``backend`` selects the *engine strategy* (``analytic`` / ``density_matrix``
    / ``statevector``); ``simulation_backend`` selects the *numerical kernel
    implementation* those engines run on (see :mod:`repro.quantum.backend`);
    ``compile_circuits`` selects between compiled-program execution (default)
    and the gate-by-gate interpreted reference paths; ``compiler`` overrides
    the process-wide shared compiled-program cache (the online scorer passes a
    private instance in tests so cache counters can be asserted in isolation).
    """
    backend = backend.lower()
    if backend == "analytic":
        if noisy:
            raise ValueError("the analytic engine cannot model hardware noise")
        return AnalyticEngine(shots=shots, rng=rng,
                              simulation_backend=simulation_backend,
                              compiler=compiler,
                              compile_circuits=compile_circuits)
    if backend == "density_matrix":
        noise_model = None
        if noisy:
            noise_model = FakeBrisbane(num_qubits=2 * num_qubits + 1).to_noise_model()
        return DensityMatrixEngine(shots=shots, rng=rng, noise_model=noise_model,
                                   gate_level_encoding=gate_level_encoding or noisy,
                                   simulation_backend=simulation_backend,
                                   compiler=compiler,
                                   compile_circuits=compile_circuits)
    if backend == "statevector":
        if noisy:
            raise ValueError("the statevector engine cannot model hardware noise")
        return StatevectorEngine(shots=shots or 1024, rng=rng,
                                 simulation_backend=simulation_backend,
                                 compiler=compiler,
                                 compile_circuits=compile_circuits)
    raise ValueError(f"unknown backend {backend!r}")
