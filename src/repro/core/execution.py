"""SWAP-test execution engines used by the detector.

Each engine answers the same question -- "what is the probability of reading 1 on
the SWAP-test ancilla for this encoded sample, this random ansatz, and this
compression level?" -- with a different cost/fidelity trade-off:

* :class:`AnalyticEngine` evaluates the reduced-density-matrix expression exactly
  (vectorized over a whole batch of samples) and optionally adds binomial shot
  noise.  This is the default for noiseless sweeps and is cross-validated against
  the circuit-level engines in the test suite.
* :class:`DensityMatrixEngine` evolves register A's density matrix exactly.  The
  noiseless path runs the whole sample batch through the batched kernels of a
  :class:`~repro.quantum.backend.SimulationBackend`; noisy or gate-level runs
  simulate the full ``2n+1``-qubit circuit, but as one *batched* circuit walk
  over all samples (every sample shares the gate structure; only the amplitude
  encoding differs).  A noisy compression sweep additionally checkpoints the
  post-encoding density batch -- every level shares the circuit prefix, so the
  prefix is walked once per sweep and only the per-level suffix (reset +
  decoder + SWAP test) is replayed from the checkpoint.
* :class:`StatevectorEngine` runs stochastic trajectories, mimicking how a
  shot-based hardware run (or Qiskit Aer's statevector method with mid-circuit
  resets) behaves.  All samples and all trajectories are evolved together as one
  ``(samples * trajectories, 2**n)`` batch.

Batched execution
-----------------
Every engine accepts ``simulation_backend=`` (a name from
:func:`repro.quantum.backend.available_simulation_backends` or a
:class:`~repro.quantum.backend.SimulationBackend` instance; default
``"numpy"``) and routes its linear algebra through that backend's batched
primitives: amplitudes enter as ``(samples, 2**n)`` float arrays, the leading
batch axis is preserved end to end, and the ansatz unitary ``E`` is built once
per ensemble member (cached on the ansatz) rather than once per sample.

``p1_levels_batch`` fuses a member's whole compression sweep into one call:
samples and levels form a single flattened batch wherever the math allows, and
the shot-noise RNG is consumed in exactly the order the historical per-level
loop used, so fixed-seed results are unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Union

import numpy as np

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.algorithms.autoencoder import (
    build_autoencoder_circuit,
    build_autoencoder_prefix,
    build_autoencoder_suffix,
)
from repro.quantum.backend import SimulationBackend, get_simulation_backend
from repro.quantum.backends import FakeBrisbane
from repro.quantum.compiler import CircuitCompiler, default_compiler
from repro.quantum.noise import NoiseModel
from repro.quantum.simulator import (
    BatchedDensityMatrixSimulator,
    DensityMatrixSimulator,
)

__all__ = [
    "SwapTestEngine",
    "AnalyticEngine",
    "DensityMatrixEngine",
    "StatevectorEngine",
    "apply_shot_noise",
    "make_engine",
]


def apply_shot_noise(exact_p1: np.ndarray, shots: Optional[int],
                     rng: np.random.Generator) -> np.ndarray:
    """Replace exact probabilities with binomial shot estimates.

    This is the single source of truth for how every engine converts exact
    probabilities into shot estimates: one elementwise binomial draw over the
    clipped array, consuming ``rng`` in C order.  The online scorer
    (:mod:`repro.serving.scorer`) calls it directly with a restored member RNG
    so that serving-time shot noise is bit-identical to fit-time shot noise.
    """
    if shots is None:
        return exact_p1
    clipped = np.clip(exact_p1, 0.0, 1.0)
    return rng.binomial(shots, clipped) / float(shots)


class SwapTestEngine(ABC):
    """Interface shared by the three execution strategies.

    Every engine executes *compiled programs* by default: circuits are lowered
    once through a :class:`~repro.quantum.compiler.CircuitCompiler` (shared
    LRU cache keyed by circuit signature, noise fingerprint, and backend
    dtype) into fused dense operators, and the per-sweep work reduces to a few
    batched matmuls.  ``compile_circuits=False`` selects the gate-by-gate
    interpreted paths, retained as the reference implementation for the parity
    test suite.
    """

    def __init__(self, shots: Optional[int] = 4096,
                 rng: Optional[np.random.Generator] = None,
                 simulation_backend: Union[str, SimulationBackend, None] = None,
                 compiler: Optional[CircuitCompiler] = None,
                 compile_circuits: bool = True
                 ) -> None:
        if shots is not None and shots < 1:
            raise ValueError("shots must be positive or None for exact probabilities")
        self.shots = shots
        self.rng = rng or np.random.default_rng()
        self.backend = get_simulation_backend(simulation_backend)
        self.compiler = compiler if compiler is not None else default_compiler()
        self.compile_circuits = bool(compile_circuits)

    @abstractmethod
    def p1_batch(self, amplitudes: np.ndarray, ansatz: RandomAutoencoderAnsatz,
                 compression_level: int) -> np.ndarray:
        """SWAP-test P(1) for every row of ``amplitudes`` (shape: samples x 2^n)."""

    def p1_levels_batch(self, amplitudes: np.ndarray,
                        ansatz: RandomAutoencoderAnsatz,
                        compression_levels: Sequence[int]) -> np.ndarray:
        """SWAP-test P(1) for every (level, sample) pair; shape ``(levels, samples)``.

        This is the fused entry point the ensemble executor uses: one call per
        member covers the member's whole compression sweep.  The default
        implementation runs the levels sequentially through :meth:`p1_batch`
        (consuming the shot-noise RNG in exactly the order the historical
        per-level loop did); engines whose levels share expensive intermediate
        state override it with a genuinely fused computation.
        """
        levels = self._validated_levels(compression_levels, ansatz)
        return np.stack([
            self.p1_batch(amplitudes, ansatz, level)
            for level in levels
        ])

    def p1_single(self, amplitudes: Sequence[float],
                  ansatz: RandomAutoencoderAnsatz,
                  compression_level: int) -> float:
        """Convenience wrapper for a single sample."""
        batch = np.asarray(amplitudes, dtype=float).reshape(1, -1)
        return float(self.p1_batch(batch, ansatz, compression_level)[0])

    def _validated_levels(self, compression_levels: Sequence[int],
                          ansatz: RandomAutoencoderAnsatz) -> list:
        """Validate a compression sweep for ``p1_levels_batch`` implementations."""
        levels = [int(level) for level in compression_levels]
        if not levels:
            raise ValueError("at least one compression level is required")
        for level in levels:
            if not 0 <= level <= ansatz.num_qubits:
                raise ValueError("compression level out of range")
        return levels

    def _validated_amplitudes(self, amplitudes: np.ndarray,
                              ansatz: RandomAutoencoderAnsatz) -> np.ndarray:
        """Level-independent amplitude validation, shared by every entry point.

        Level sweeps validate amplitudes exactly once (and validate *every*
        level of the sweep via :meth:`_validated_levels`), rather than checking
        the batch against the first level only.
        """
        amplitudes = np.asarray(amplitudes, dtype=float)
        if amplitudes.ndim != 2:
            raise ValueError("amplitudes must be a 2-D batch (samples, 2**n)")
        if amplitudes.shape[1] != 2 ** ansatz.num_qubits:
            raise ValueError("amplitude width does not match the ansatz register")
        norms = np.linalg.norm(amplitudes, axis=1)
        if np.any(np.abs(norms - 1.0) > 1e-6):
            # The circuit-level path would reject this in `initialize`; fail the
            # batched paths just as loudly instead of returning garbage overlaps.
            raise ValueError("amplitude rows must be normalized statevectors")
        return amplitudes

    def _validated_batch(self, amplitudes: np.ndarray,
                         ansatz: RandomAutoencoderAnsatz,
                         compression_level: int) -> np.ndarray:
        """Common input validation for ``p1_batch`` implementations."""
        if not 0 <= compression_level <= ansatz.num_qubits:
            raise ValueError("compression level out of range")
        return self._validated_amplitudes(amplitudes, ansatz)

    def _apply_shot_noise(self, exact_p1: np.ndarray) -> np.ndarray:
        """Replace exact probabilities with binomial shot estimates."""
        return apply_shot_noise(exact_p1, self.shots, self.rng)

    def _encoder_unitary(self, ansatz: RandomAutoencoderAnsatz) -> np.ndarray:
        """The member's dense encoder ``E`` -- the compiled pure-state program.

        With compilation on, the encoder circuit is fused through the shared
        compiler cache (one ``2^n x 2^n`` unitary per member, reused across
        engines, levels, and repeated sweeps); the lowering matches
        :meth:`~repro.algorithms.ansatz.RandomAutoencoderAnsatz.encoder_unitary`
        operation for operation, so results are bitwise unchanged.  With
        compilation off, the ansatz's own per-instance cache is used.
        """
        if self.compile_circuits:
            return self.compiler.fused_unitary(
                ansatz.encoder_circuit(list(range(ansatz.num_qubits))),
                self.backend,
            )
        return ansatz.encoder_unitary()


class AnalyticEngine(SwapTestEngine):
    """Exact reduced-density-matrix evaluation, vectorized over samples.

    For register A the circuit applies ``E``, resets the first ``k`` qubits, and
    applies ``E^dagger``; the SWAP test against the untouched encoding ``|psi>``
    then reads 1 with probability ``(1 - <psi| rho_A |psi>) / 2``.  Writing
    ``|phi> = E |psi>`` and splitting the basis index into (reset bits ``s``, kept
    bits ``r``), the overlap reduces to ``sum_s |<phi[:, 0], phi[:, s]>|^2`` --
    a handful of dense inner products per sample.
    """

    def p1_batch(self, amplitudes: np.ndarray, ansatz: RandomAutoencoderAnsatz,
                 compression_level: int) -> np.ndarray:
        return self.p1_levels_batch(amplitudes, ansatz, (compression_level,))[0]

    def p1_levels_batch(self, amplitudes: np.ndarray,
                        ansatz: RandomAutoencoderAnsatz,
                        compression_levels: Sequence[int]) -> np.ndarray:
        levels = self._validated_levels(compression_levels, ansatz)
        amplitudes = self._validated_amplitudes(amplitudes, ansatz)
        # |phi_i> = E |psi_i>, the whole batch in one matmul (E is cached on the
        # ansatz, so it is built once per ensemble member) -- and shared by every
        # compression level of the sweep.
        phi = self.backend.apply_unitary_batch(
            self.backend.as_states(amplitudes), self._encoder_unitary(ansatz)
        )
        overlap = self.backend.compression_overlap_levels(phi, levels)
        exact_p1 = np.clip((1.0 - overlap) / 2.0, 0.0, 1.0)
        # One elementwise binomial call over the (levels, samples) array draws
        # bit-identically to the historical sequential per-level calls.
        return self._apply_shot_noise(exact_p1)


class DensityMatrixEngine(SwapTestEngine):
    """Exact density-matrix simulation (optionally noisy).

    Noiseless runs evolve register A's ``2^n x 2^n`` density matrix for the
    whole sample batch at once through the simulation backend's batched
    kernels; this is mathematically identical to simulating the full
    ``2n+1``-qubit circuit (the reference register stays pure and the SWAP test
    reads ``P(1) = (1 - <psi| rho_A |psi>) / 2``).  Runs with a noise model or
    gate-level encoding use :meth:`p1_batch_circuit_level`, which walks the full
    circuit for *all samples at once* -- the gate structure is shared across the
    batch, so noise channels apply to whole density-matrix batches and only the
    amplitude encoding is per-sample.  Noisy compression sweeps go further:
    :meth:`p1_levels_batch_circuit_level` walks the level-independent circuit
    prefix exactly once for the whole ``(levels x samples)`` sweep, checkpoints
    the post-prefix density batch, and replays only the per-level suffix.
    """

    def __init__(self, shots: Optional[int] = 4096,
                 rng: Optional[np.random.Generator] = None,
                 noise_model: Optional[NoiseModel] = None,
                 gate_level_encoding: bool = False,
                 simulation_backend: Union[str, SimulationBackend, None] = None,
                 compiler: Optional[CircuitCompiler] = None,
                 compile_circuits: bool = True
                 ) -> None:
        super().__init__(shots, rng, simulation_backend=simulation_backend,
                         compiler=compiler, compile_circuits=compile_circuits)
        self.noise_model = noise_model
        self.gate_level_encoding = gate_level_encoding

    def p1_batch(self, amplitudes: np.ndarray, ansatz: RandomAutoencoderAnsatz,
                 compression_level: int) -> np.ndarray:
        amplitudes = self._validated_batch(amplitudes, ansatz, compression_level)
        if self.noise_model is not None or self.gate_level_encoding:
            return self.p1_batch_circuit_level(amplitudes, ansatz,
                                               compression_level)
        return self.p1_levels_batch(amplitudes, ansatz, (compression_level,))[0]

    def p1_levels_batch(self, amplitudes: np.ndarray,
                        ansatz: RandomAutoencoderAnsatz,
                        compression_levels: Sequence[int]) -> np.ndarray:
        levels = self._validated_levels(compression_levels, ansatz)
        amplitudes = self._validated_amplitudes(amplitudes, ansatz)
        if self.noise_model is not None or self.gate_level_encoding:
            return self.p1_levels_batch_circuit_level(amplitudes, ansatz, levels)
        backend = self.backend
        psi = backend.as_states(amplitudes)
        encoder = self._encoder_unitary(ansatz)
        decoder = encoder.conj().T
        # Encoding and the pure-state density build are level-independent and
        # run once for the whole sweep; only the (cheap) reset/decode/overlap
        # tail is per level, each level's batch staying cache-sized.
        phi = backend.apply_unitary_batch(psi, encoder)
        rhos = backend.density_from_states(phi)
        exact_p1 = np.empty((len(levels), amplitudes.shape[0]))
        for position, level in enumerate(levels):
            level_rhos = backend.reset_low_qubits_density_batch(rhos, level)
            level_rhos = backend.evolve_density_batch(level_rhos, decoder)
            overlap = backend.expectation_batch(level_rhos, psi)
            exact_p1[position] = np.clip((1.0 - overlap) / 2.0, 0.0, 1.0)
        return self._apply_shot_noise(exact_p1)

    def p1_levels_batch_circuit_level(self, amplitudes: np.ndarray,
                                      ansatz: RandomAutoencoderAnsatz,
                                      compression_levels: Sequence[int]
                                      ) -> np.ndarray:
        """Checkpointed full-circuit sweep (the noisy multi-level hot path).

        Every compression level of the sweep shares the same circuit prefix
        (amplitude encoding of both registers + the encoder ansatz); only the
        suffix (reset block + decoder + SWAP test) depends on the level.  The
        walker therefore evolves the batched prefix **exactly once** (with its
        shared gate runs executing as compiled fused operators) and keeps the
        post-prefix density batch as a checkpoint.  With compilation on (the
        default), each level's sample-independent suffix is then lowered once
        into a cached Heisenberg-picture observable and evaluated as a single
        batched matmul against the checkpoint; with ``compile_circuits=False``
        the suffix is replayed forward from a snapshot, gate by gate, exactly
        as in the pre-compilation implementation.  Either way results agree
        with looping :meth:`p1_batch_circuit_level` per level, and the
        shot-noise RNG is consumed in the exact level-major order the
        historical per-level loop used.
        """
        levels = self._validated_levels(compression_levels, ansatz)
        amplitudes = self._validated_amplitudes(amplitudes, ansatz)
        # One elementwise binomial call over the (levels, samples) array draws
        # bit-identically to the historical sequential per-level calls.
        return self._apply_shot_noise(
            self._circuit_level_sweep(amplitudes, ansatz, levels)
        )

    def _circuit_level_sweep(self, amplitudes: np.ndarray,
                             ansatz: RandomAutoencoderAnsatz,
                             levels: Sequence[int]) -> np.ndarray:
        """Exact ``(levels, samples)`` probabilities of the checkpointed sweep.

        Shared by the fused multi-level entry point and the single-level
        ``p1_batch_circuit_level``, so a per-level loop over the latter is
        arithmetically identical to one fused sweep.  With compilation on, the
        per-level suffix never runs forward at all: the compiler's cached
        Heisenberg-picture observable ``W = C^dagger(|1><1|_ancilla)`` turns
        each level into ONE batched matmul against the checkpoint.
        """
        prefixes = [
            build_autoencoder_prefix(
                row, ansatz, gate_level_encoding=self.gate_level_encoding,
            )
            for row in amplitudes
        ]
        walker = BatchedDensityMatrixSimulator(
            noise_model=self.noise_model, backend=self.backend,
            compiler=self.compiler, compile_programs=self.compile_circuits,
        )
        checkpoint = walker.evolve_batch(prefixes)
        ancilla = 2 * ansatz.num_qubits
        exact_p1 = np.empty((len(levels), amplitudes.shape[0]))
        for position, level in enumerate(levels):
            suffix = build_autoencoder_suffix(ansatz, level, measure=False)
            if self.compile_circuits:
                observable = self.compiler.dual_observable(
                    suffix, self.noise_model, ancilla, self.backend
                )
                exact_p1[position] = (
                    self.backend.observable_expectation_density_batch(
                        checkpoint, observable
                    )
                )
                continue
            rhos = walker.replay_suffix_batch(checkpoint, suffix)
            exact_p1[position] = self.backend.probability_one_density_batch(
                rhos, ancilla
            )
        return exact_p1

    def p1_batch_circuit_level(self, amplitudes: np.ndarray,
                               ansatz: RandomAutoencoderAnsatz,
                               compression_level: int) -> np.ndarray:
        """Full-circuit simulation of the whole batch at ONE compression level.

        Every sample's circuit shares the same gate structure -- only the
        amplitude encoding differs -- so all samples walk one batched circuit
        through :class:`~repro.quantum.simulator.BatchedDensityMatrixSimulator`
        instead of looping a per-sample simulator.  Level sweeps do not loop
        this method: :meth:`p1_levels_batch_circuit_level` checkpoints the
        shared prefix and replays only the per-level suffix (this per-level
        walk remains the pre-checkpoint regression reference).
        """
        amplitudes = self._validated_batch(amplitudes, ansatz, compression_level)
        if self.compile_circuits:
            # Same checkpoint + compiled-observable arithmetic as the fused
            # sweep, so a per-level loop over this method stays bitwise
            # identical to one `p1_levels_batch` call.
            exact_p1 = self._circuit_level_sweep(amplitudes, ansatz,
                                                 [compression_level])[0]
            return self._apply_shot_noise(exact_p1)
        circuits = [
            build_autoencoder_circuit(
                row, ansatz, compression_level,
                gate_level_encoding=self.gate_level_encoding, measure=False,
            )
            for row in amplitudes
        ]
        walker = BatchedDensityMatrixSimulator(noise_model=self.noise_model,
                                               backend=self.backend,
                                               compiler=self.compiler,
                                               compile_programs=False)
        rhos = walker.evolve_batch(circuits)
        ancilla = 2 * ansatz.num_qubits
        exact_p1 = self.backend.probability_one_density_batch(rhos, ancilla)
        return self._apply_shot_noise(exact_p1)

    def p1_per_sample_circuit_level(self, amplitudes: np.ndarray,
                                    ansatz: RandomAutoencoderAnsatz,
                                    compression_level: int) -> np.ndarray:
        """Reference per-sample circuit walk (regression baseline for the batched
        walk; not used on any hot path)."""
        amplitudes = self._validated_batch(amplitudes, ansatz, compression_level)
        simulator = DensityMatrixSimulator(noise_model=self.noise_model,
                                           backend=self.backend)
        results = np.empty(amplitudes.shape[0])
        for index, row in enumerate(amplitudes):
            circuit = build_autoencoder_circuit(
                row, ansatz, compression_level,
                gate_level_encoding=self.gate_level_encoding, measure=False,
            )
            final_state = simulator.evolve(circuit)
            ancilla = 2 * ansatz.num_qubits
            exact_p1 = final_state.probability_of_outcome(ancilla, 1)
            results[index] = exact_p1
        return self._apply_shot_noise(results)


class StatevectorEngine(SwapTestEngine):
    """Trajectory-sampled simulation (no noise model support).

    Every trajectory keeps register A pure: the partial reset becomes a
    projective measurement (outcome drawn per trajectory) followed by a
    conditional flip to |0>.  The engine therefore evolves a
    ``(samples * trajectories, 2**n)`` batch of register-A states through the
    backend kernels, computes each trajectory's exact ancilla probability
    ``(1 - |<psi|phi_traj>|^2) / 2``, and distributes the shot budget over the
    trajectories exactly like the per-circuit trajectory simulator does.
    """

    #: Upper bound on (samples x trajectories) rows evolved at once; chunks of
    #: the sample axis keep peak memory bounded for large datasets while each
    #: chunk still runs through one batched kernel call.
    MAX_FLAT_BATCH = 1 << 15

    def __init__(self, shots: Optional[int] = 4096,
                 rng: Optional[np.random.Generator] = None,
                 max_trajectories: Optional[int] = 64,
                 simulation_backend: Union[str, SimulationBackend, None] = None,
                 compiler: Optional[CircuitCompiler] = None,
                 compile_circuits: bool = True
                 ) -> None:
        if shots is None:
            raise ValueError("the statevector engine is shot-based; provide shots")
        super().__init__(shots, rng, simulation_backend=simulation_backend,
                         compiler=compiler, compile_circuits=compile_circuits)
        self.max_trajectories = max_trajectories

    def p1_batch(self, amplitudes: np.ndarray, ansatz: RandomAutoencoderAnsatz,
                 compression_level: int) -> np.ndarray:
        amplitudes = self._validated_batch(amplitudes, ansatz, compression_level)
        num_samples = amplitudes.shape[0]

        trajectories = self.shots
        if compression_level == 0:
            # No reset -> the circuit is deterministic; one trajectory suffices.
            trajectories = 1
        elif self.max_trajectories is not None:
            trajectories = min(trajectories, self.max_trajectories)
        trajectories = max(trajectories, 1)
        shots_per_trajectory = np.asarray(self._split_shots(self.shots,
                                                            trajectories))
        trajectories = shots_per_trajectory.shape[0]

        results = np.empty(num_samples)
        chunk = max(1, self.MAX_FLAT_BATCH // trajectories)
        for start in range(0, num_samples, chunk):
            stop = min(start + chunk, num_samples)
            results[start:stop] = self._p1_chunk(
                amplitudes[start:stop], ansatz, compression_level,
                trajectories, shots_per_trajectory,
            )
        return results

    def _p1_chunk(self, amplitudes: np.ndarray,
                  ansatz: RandomAutoencoderAnsatz, compression_level: int,
                  trajectories: int,
                  shots_per_trajectory: np.ndarray) -> np.ndarray:
        """Trajectory-sample one chunk of samples as a single flat batch."""
        backend = self.backend
        encoder = self._encoder_unitary(ansatz)
        psi = backend.as_states(amplitudes)
        phi = backend.apply_unitary_batch(psi, encoder)
        # One flat batch over (sample, trajectory) pairs; sample-major so that
        # reshaping back to (samples, trajectories) is a plain view.
        states = np.repeat(phi, trajectories, axis=0)
        for qubit in range(compression_level):
            probability_one = backend.probability_one_batch(states, qubit)
            outcomes = (self.rng.random(states.shape[0])
                        < probability_one).astype(int)
            states = backend.collapse_qubit_batch(states, qubit, outcomes,
                                                  reset_to_zero=True)
        decoded = backend.apply_unitary_batch(states, encoder.conj().T)
        fidelity = backend.overlap_batch(np.repeat(psi, trajectories, axis=0),
                                         decoded)
        p1 = np.clip((1.0 - fidelity) / 2.0, 0.0, 1.0)
        p1 = p1.reshape(amplitudes.shape[0], trajectories)
        ones = self.rng.binomial(shots_per_trajectory[None, :], p1).sum(axis=1)
        return ones / float(self.shots)

    @staticmethod
    def _split_shots(shots: int, trajectories: int) -> list:
        base = shots // trajectories
        remainder = shots % trajectories
        split = [base + (1 if index < remainder else 0)
                 for index in range(trajectories)]
        return [s for s in split if s > 0] or [shots]


def make_engine(backend: str, shots: Optional[int],
                rng: Optional[np.random.Generator] = None,
                noisy: bool = False,
                gate_level_encoding: bool = False,
                num_qubits: int = 3,
                simulation_backend: Union[str, SimulationBackend, None] = None,
                compile_circuits: bool = True,
                compiler: Optional[CircuitCompiler] = None
                ) -> SwapTestEngine:
    """Factory used by the detector to build the configured engine.

    ``backend`` selects the *engine strategy* (``analytic`` / ``density_matrix``
    / ``statevector``); ``simulation_backend`` selects the *numerical kernel
    implementation* those engines run on (see :mod:`repro.quantum.backend`);
    ``compile_circuits`` selects between compiled-program execution (default)
    and the gate-by-gate interpreted reference paths; ``compiler`` overrides
    the process-wide shared compiled-program cache (the online scorer passes a
    private instance in tests so cache counters can be asserted in isolation).
    """
    backend = backend.lower()
    if backend == "analytic":
        if noisy:
            raise ValueError("the analytic engine cannot model hardware noise")
        return AnalyticEngine(shots=shots, rng=rng,
                              simulation_backend=simulation_backend,
                              compiler=compiler,
                              compile_circuits=compile_circuits)
    if backend == "density_matrix":
        noise_model = None
        if noisy:
            noise_model = FakeBrisbane(num_qubits=2 * num_qubits + 1).to_noise_model()
        return DensityMatrixEngine(shots=shots, rng=rng, noise_model=noise_model,
                                   gate_level_encoding=gate_level_encoding or noisy,
                                   simulation_backend=simulation_backend,
                                   compiler=compiler,
                                   compile_circuits=compile_circuits)
    if backend == "statevector":
        if noisy:
            raise ValueError("the statevector engine cannot model hardware noise")
        return StatevectorEngine(shots=shots or 1024, rng=rng,
                                 simulation_backend=simulation_backend,
                                 compiler=compiler,
                                 compile_circuits=compile_circuits)
    raise ValueError(f"unknown backend {backend!r}")
