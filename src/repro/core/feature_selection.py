"""Uniform random feature selection (Section IV-C, Fig. 4).

Quorum deliberately avoids PCA-style dimensionality reduction: for each ensemble
member it simply draws a uniform random subset of ``m = 2^n - 1`` features (all
features when the dataset has fewer than ``m``), so that across the ensemble many
different feature combinations get explored without biasing toward high-variance
directions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["select_feature_subset"]


def select_feature_subset(num_features: int, max_selected: int,
                          rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Draw a uniform random subset of feature indices (without replacement).

    Parameters
    ----------
    num_features:
        Number of columns in the dataset (``M``).
    max_selected:
        Capacity of the quantum register (``m = 2^n - 1``).  When the dataset has
        fewer features than this, every feature is used (the overflow state absorbs
        the unused amplitude).
    rng:
        Random generator (a fresh one per ensemble member).

    Returns
    -------
    numpy.ndarray
        Sorted feature indices, of length ``min(num_features, max_selected)``.
    """
    if num_features < 1:
        raise ValueError("num_features must be positive")
    if max_selected < 1:
        raise ValueError("max_selected must be positive")
    rng = rng or np.random.default_rng()
    count = min(num_features, max_selected)
    selected = rng.choice(num_features, size=count, replace=False)
    return np.sort(selected)
