"""The QuorumDetector facade: the paper's end-to-end pipeline behind one class.

Quorum is a *transductive* detector: it scores the dataset it is given (there is no
train/test split because there is no training).  ``fit`` runs the full ensemble,
after which ``anomaly_scores`` / ``detect`` expose the results.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.bucketing import bucket_size_for_probability
from repro.core.config import QuorumConfig
from repro.core.ensemble import EnsembleMemberResult, MemberPlan
from repro.core.parallel import derive_member_seeds, run_ensemble_members
from repro.core.scoring import AnomalyScores
from repro.data.dataset import Dataset
from repro.encoding.normalization import QuorumNormalizer

__all__ = ["QuorumDetector"]


class QuorumDetector:
    """Zero-training unsupervised quantum anomaly detector.

    Parameters
    ----------
    config:
        Full configuration; built from ``overrides`` when omitted.
    **overrides:
        Convenience keyword overrides applied on top of the default
        :class:`QuorumConfig` (e.g. ``QuorumDetector(ensemble_groups=100)``).

    Examples
    --------
    >>> from repro import QuorumDetector, load_dataset
    >>> dataset = load_dataset("breast_cancer")
    >>> detector = QuorumDetector(ensemble_groups=20, seed=7)
    >>> scores = detector.fit(dataset).anomaly_scores()
    >>> flags = detector.detect(num_anomalies=dataset.num_anomalies)
    """

    def __init__(self, config: Optional[QuorumConfig] = None, **overrides: object):
        if config is None:
            config = QuorumConfig(**overrides)  # type: ignore[arg-type]
        elif overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        self.normalizer: Optional[QuorumNormalizer] = None
        self._scores: Optional[AnomalyScores] = None
        self._member_results: List[EnsembleMemberResult] = []
        self._member_plans: List[MemberPlan] = []
        self._num_samples: Optional[int] = None

    # ----------------------------------------------------------------- fitting
    def fit(self, data: Union[Dataset, np.ndarray]) -> "QuorumDetector":
        """Run the full ensemble over ``data`` (a Dataset or a raw feature matrix).

        Labels carried by a :class:`Dataset` are ignored -- they are only used by
        the evaluation harness after the fact.
        """
        features = data.features_only() if isinstance(data, Dataset) else np.asarray(
            data, dtype=float)
        if features.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        self.normalizer = QuorumNormalizer(
            target_max=self.config.feature_ceiling(features.shape[1])
        )
        normalized = self.normalizer.fit_transform(features)
        num_samples = normalized.shape[0]

        bucket_size = bucket_size_for_probability(
            num_samples, self.config.effective_anomaly_fraction,
            self.config.bucket_probability,
        )
        seeds = derive_member_seeds(self.config.seed, self.config.ensemble_groups)
        results, plans = run_ensemble_members(normalized, self.config, seeds,
                                              bucket_size=bucket_size,
                                              return_plans=True)

        total = np.zeros(num_samples)
        runs = 0
        for result in results:
            total += result.deviations
            runs += result.num_runs
        self._member_results = results
        self._member_plans = plans
        self._num_samples = num_samples
        self._scores = AnomalyScores(
            scores=total,
            num_runs=runs,
            metadata={
                "bucket_size": bucket_size,
                "ensemble_groups": self.config.ensemble_groups,
                "compression_levels": list(self.config.effective_compression_levels),
                "backend": self.config.backend,
                "noisy": self.config.noisy,
                "executor": self.config.executor,
                "n_jobs": self.config.n_jobs,
            },
        )
        return self

    def fit_detect(self, data: Union[Dataset, np.ndarray],
                   num_anomalies: Optional[int] = None,
                   contamination: Optional[float] = None) -> np.ndarray:
        """``fit`` followed by ``detect`` in one call."""
        return self.fit(data).detect(num_anomalies=num_anomalies,
                                     contamination=contamination)

    # ----------------------------------------------------------------- queries
    @property
    def is_fitted(self) -> bool:
        """True once ``fit`` has produced scores."""
        return self._scores is not None

    def _require_fitted(self) -> AnomalyScores:
        if self._scores is None:
            raise RuntimeError("the detector has not been fit yet")
        return self._scores

    def anomaly_scores(self) -> np.ndarray:
        """Per-sample summed absolute deviations (higher = more anomalous)."""
        return self._require_fitted().scores.copy()

    def scores(self) -> AnomalyScores:
        """The full :class:`AnomalyScores` container (ranking helpers, metadata)."""
        return self._require_fitted()

    def ranking(self) -> np.ndarray:
        """Sample indices sorted from most to least anomalous."""
        return self._require_fitted().ranking()

    def detect(self, num_anomalies: Optional[int] = None,
               contamination: Optional[float] = None) -> np.ndarray:
        """Binary anomaly flags for the top-scoring samples.

        Exactly one of ``num_anomalies`` (absolute count) or ``contamination``
        (fraction of the dataset) must be provided.  When neither is given, the
        config's anomaly-fraction estimate is used as the contamination.
        """
        scores = self._require_fitted()
        if num_anomalies is None and contamination is None:
            contamination = self.config.effective_anomaly_fraction
        return scores.predictions(num_flagged=num_anomalies,
                                  contamination=contamination)

    def member_results(self) -> List[EnsembleMemberResult]:
        """Per-member diagnostics (feature subsets, bucket counts, P(1) stats)."""
        self._require_fitted()
        return list(self._member_results)

    def member_plans(self) -> List[MemberPlan]:
        """The executed member plans, in member order.

        Each plan carries the member's frozen configuration (feature subset,
        buckets, ansatz angles) plus the post-planning RNG snapshot
        (``plan.rng_state``); together with the per-member bucket reference
        statistics in :meth:`member_results` this is everything
        :mod:`repro.serving.artifact` persists.
        """
        self._require_fitted()
        return list(self._member_plans)

    def save_model(self, path: Union[str, Path]) -> Path:
        """Persist the fitted ensemble as a versioned serving artifact.

        Convenience wrapper around :func:`repro.serving.artifact.save_model`;
        the saved bundle restores an online scorer in a fresh process without
        refitting (see :mod:`repro.serving`).
        """
        from repro.serving.artifact import save_model

        return save_model(self, path)

    def diagnostics(self) -> Dict[str, object]:
        """Run-level diagnostics: bucket size, runs, score distribution summary."""
        scores = self._require_fitted()
        values = scores.scores
        return {
            **scores.metadata,
            "num_samples": self._num_samples,
            "num_runs": scores.num_runs,
            "score_mean": float(values.mean()),
            "score_std": float(values.std()),
            "score_max": float(values.max()),
        }

    def __repr__(self) -> str:
        status = "fitted" if self.is_fitted else "unfitted"
        return (
            f"QuorumDetector(backend={self.config.backend!r}, "
            f"ensemble_groups={self.config.ensemble_groups}, status={status})"
        )
