"""Configuration of a Quorum run (Sections IV and V of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.quantum.backend import available_simulation_backends

__all__ = ["QuorumConfig"]

_BACKENDS = ("analytic", "density_matrix", "statevector")
_ENTANGLEMENTS = ("linear", "ring", "full")
_FEATURE_SCALINGS = ("circuit_sqrt", "dataset_sqrt", "dataset_linear")
# Mirrors repro.core.parallel.available_executors(); kept literal here because
# the parallel module imports this one.
_EXECUTORS = ("auto", "fused", "serial", "threads", "processes")


@dataclass(frozen=True)
class QuorumConfig:
    """All knobs of the Quorum detector.

    Attributes
    ----------
    num_qubits:
        Encoding register size ``n``; circuits use ``2n + 1`` qubits.  The paper's
        primary experiments use 3 (7-qubit circuits).
    num_layers:
        Rotation/entanglement layers in the random ansatz (Fig. 5 shows 2).
    entanglement:
        CX pattern of the ansatz (``linear`` matches the figure).
    ensemble_groups:
        Number of independent ensemble members (paper: 1,000; scaled down by
        default here because every member is an independent full pass).
    shots:
        Measurement shots per circuit (paper: 4,096).  ``None`` uses exact
        probabilities (no shot noise).
    compression_levels:
        Numbers of qubits reset between encoder and decoder.  ``None`` sweeps
        1 .. n-1 as the paper does.
    bucket_probability:
        Target probability that a bucket contains at least one anomaly; drives the
        bucket size via the hypergeometric calculation in
        :mod:`repro.core.bucketing`.
    anomaly_fraction_estimate:
        Estimated fraction of anomalies in the dataset.  ``None`` falls back to
        ``default_anomaly_fraction``.
    default_anomaly_fraction:
        Conservative prior used when no estimate is supplied.
    feature_scaling:
        How the per-feature maximum is chosen before squaring into probabilities:
        ``"circuit_sqrt"`` (default) scales to ``1/sqrt(m)`` with ``m`` the
        per-circuit feature capacity, so the selected features can carry up to the
        full probability mass; ``"dataset_sqrt"`` scales to ``1/sqrt(M)``;
        ``"dataset_linear"`` is the paper's literal ``1/M`` formula (which leaves
        almost all mass on the overflow state for wide datasets).
    backend:
        ``"analytic"`` (reduced-density-matrix fast path), ``"density_matrix"``
        (full 2n+1-qubit circuit, supports noise), or ``"statevector"``
        (trajectory sampling).
    simulation_backend:
        Which batched numerical kernel implementation the engines run on; one of
        :func:`repro.quantum.backend.available_simulation_backends` (default
        ``"numpy"``).
    compile_circuits:
        Lower circuits ahead of time into cached fused dense operators (the
        :mod:`repro.quantum.compiler` subsystem) instead of interpreting them
        gate by gate (default ``True``; the interpreted paths remain available
        as the reference implementation).
    noisy:
        Apply the Brisbane-like noise model (only meaningful for the
        ``density_matrix`` backend).
    gate_level_encoding:
        Synthesize explicit state-preparation gates instead of exact
        ``initialize`` instructions (used for noisy runs).
    seed:
        Master seed; every ensemble member derives its own child seed from it.
    n_jobs:
        Workers for the embarrassingly parallel ensemble loop (1 = serial).
    executor:
        Executor strategy running the ensemble members when ``n_jobs > 1``:
        ``"serial"``, ``"threads"`` (zero-copy shared dataset, BLAS releases
        the GIL), ``"processes"`` (dataset in shared memory), ``"fused"``
        (cross-member stacked batches, see ``fused_members``), or ``"auto"``
        (processes when ``n_jobs > 1``).  Results are bit-identical across
        strategies for a fixed seed.
    fused_members:
        Cross-member fused execution: members sharing a compiled-circuit
        structure signature run as ONE ``(members x levels x samples)``
        stacked batch per sweep step instead of one dispatch per member.
        ``True`` forces fusion regardless of ``executor``; ``False`` disables
        it even for ``executor="fused"``; ``None`` (default) fuses exactly
        when ``executor == "fused"``.  Scores stay bit-identical to the
        serial path (shot noise is drawn per member from each member's own
        RNG stream); unfusable configurations (statevector backend, mixed
        structure signatures) fall back to per-member dispatch.
    """

    num_qubits: int = 3
    num_layers: int = 2
    entanglement: str = "linear"
    ensemble_groups: int = 50
    shots: Optional[int] = 4096
    compression_levels: Optional[Tuple[int, ...]] = None
    bucket_probability: float = 0.75
    anomaly_fraction_estimate: Optional[float] = None
    default_anomaly_fraction: float = 0.05
    feature_scaling: str = "circuit_sqrt"
    backend: str = "analytic"
    simulation_backend: str = "numpy"
    compile_circuits: bool = True
    noisy: bool = False
    gate_level_encoding: bool = False
    seed: Optional[int] = 1234
    n_jobs: int = 1
    executor: str = "auto"
    fused_members: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.num_qubits < 2:
            raise ValueError("Quorum needs at least 2 encoding qubits")
        if self.num_layers < 1:
            raise ValueError("the ansatz needs at least one layer")
        if self.entanglement not in _ENTANGLEMENTS:
            raise ValueError(f"entanglement must be one of {_ENTANGLEMENTS}")
        if self.ensemble_groups < 1:
            raise ValueError("at least one ensemble group is required")
        if self.shots is not None and self.shots < 1:
            raise ValueError("shots must be positive (or None for exact)")
        if not 0.0 < self.bucket_probability < 1.0:
            raise ValueError("bucket_probability must be in (0, 1)")
        if self.anomaly_fraction_estimate is not None:
            if not 0.0 < self.anomaly_fraction_estimate < 1.0:
                raise ValueError("anomaly_fraction_estimate must be in (0, 1)")
        if not 0.0 < self.default_anomaly_fraction < 1.0:
            raise ValueError("default_anomaly_fraction must be in (0, 1)")
        if self.feature_scaling not in _FEATURE_SCALINGS:
            raise ValueError(f"feature_scaling must be one of {_FEATURE_SCALINGS}")
        if self.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}")
        if self.simulation_backend not in available_simulation_backends():
            raise ValueError(
                "simulation_backend must be one of "
                f"{available_simulation_backends()}"
            )
        if self.noisy and self.backend != "density_matrix":
            raise ValueError("noisy simulation requires the density_matrix backend")
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be at least 1")
        if self.executor not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}")
        if self.fused_members is not None and not isinstance(
                self.fused_members, bool):
            raise ValueError("fused_members must be True, False, or None")
        if self.compression_levels is not None:
            levels = tuple(int(level) for level in self.compression_levels)
            if not levels:
                raise ValueError("compression_levels cannot be empty")
            for level in levels:
                if not 1 <= level <= self.num_qubits:
                    raise ValueError(
                        f"compression level {level} outside [1, {self.num_qubits}]"
                    )
            object.__setattr__(self, "compression_levels", levels)

    # -------------------------------------------------------------- properties
    @property
    def features_per_circuit(self) -> int:
        """m = 2^n - 1 features fit per circuit (one slot is the overflow state)."""
        return 2 ** self.num_qubits - 1

    @property
    def total_circuit_qubits(self) -> int:
        """2n + 1 qubits: two registers plus the SWAP-test ancilla."""
        return 2 * self.num_qubits + 1

    @property
    def effective_compression_levels(self) -> Tuple[int, ...]:
        """The compression sweep: explicit levels, or 1 .. n-1 by default."""
        if self.compression_levels is not None:
            return self.compression_levels
        return tuple(range(1, self.num_qubits))

    def feature_ceiling(self, num_dataset_features: int) -> float:
        """Per-feature maximum after normalization, for a dataset with ``M`` columns."""
        if num_dataset_features < 1:
            raise ValueError("the dataset needs at least one feature")
        if self.feature_scaling == "circuit_sqrt":
            capacity = min(self.features_per_circuit, num_dataset_features)
            return 1.0 / float(capacity) ** 0.5
        if self.feature_scaling == "dataset_sqrt":
            return 1.0 / float(num_dataset_features) ** 0.5
        return 1.0 / float(num_dataset_features)

    @property
    def wants_fused_members(self) -> bool:
        """Whether ensemble members should execute as cross-member batches.

        ``fused_members`` overrides when set; otherwise fusion follows the
        executor choice (``executor == "fused"``).
        """
        if self.fused_members is not None:
            return self.fused_members
        return self.executor == "fused"

    @property
    def effective_anomaly_fraction(self) -> float:
        """The anomaly-fraction estimate used for bucket sizing."""
        if self.anomaly_fraction_estimate is not None:
            return self.anomaly_fraction_estimate
        return self.default_anomaly_fraction

    # ----------------------------------------------------------------- helpers
    def with_overrides(self, **overrides: object) -> "QuorumConfig":
        """A copy of the config with the given fields replaced."""
        return replace(self, **overrides)

    def to_dict(self) -> Dict[str, object]:
        """Every config field as a JSON-friendly mapping.

        Unlike :meth:`describe` (a human-readable summary), this covers *all*
        fields and round-trips exactly through :meth:`from_dict`, which is what
        the serving artifact layer persists.
        """
        payload: Dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = list(value)
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "QuorumConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected loudly: a silently dropped knob in a loaded
        model artifact would change scoring behaviour without any error.
        """
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown QuorumConfig fields: {', '.join(unknown)}")
        values = dict(payload)
        levels = values.get("compression_levels")
        if levels is not None:
            values["compression_levels"] = tuple(int(level) for level in levels)
        return cls(**values)  # type: ignore[arg-type]

    def describe(self) -> Dict[str, object]:
        """Readable summary used by examples and the benchmark harness."""
        return {
            "num_qubits": self.num_qubits,
            "circuit_qubits": self.total_circuit_qubits,
            "features_per_circuit": self.features_per_circuit,
            "ensemble_groups": self.ensemble_groups,
            "shots": self.shots,
            "compression_levels": list(self.effective_compression_levels),
            "bucket_probability": self.bucket_probability,
            "backend": self.backend,
            "simulation_backend": self.simulation_backend,
            "compile_circuits": self.compile_circuits,
            "noisy": self.noisy,
            "seed": self.seed,
            "n_jobs": self.n_jobs,
            "executor": self.executor,
            "fused_members": self.fused_members,
        }
