"""Quorum core: the zero-training unsupervised quantum anomaly detector."""

from repro.core.config import QuorumConfig
from repro.core.bucketing import (
    BucketAssignment,
    assign_buckets,
    bucket_size_for_probability,
    probability_of_anomalous_bucket,
)
from repro.core.feature_selection import select_feature_subset
from repro.core.execution import (
    AnalyticEngine,
    DensityMatrixEngine,
    StatevectorEngine,
    SwapTestEngine,
    apply_shot_noise,
    make_engine,
)
from repro.core.scoring import (
    AnomalyScores,
    BucketStatistics,
    bucket_deviations,
    bucket_statistics,
    reference_deviations,
)
from repro.core.ensemble import (
    EnsembleMemberResult,
    MemberPlan,
    execute_member,
    plan_member,
    run_ensemble_member,
)
from repro.core.parallel import (
    ExecutorStrategy,
    available_executors,
    get_executor,
    plan_members,
    run_ensemble_members,
)
from repro.core.detector import QuorumDetector

__all__ = [
    "QuorumConfig",
    "BucketAssignment",
    "assign_buckets",
    "bucket_size_for_probability",
    "probability_of_anomalous_bucket",
    "select_feature_subset",
    "SwapTestEngine",
    "AnalyticEngine",
    "DensityMatrixEngine",
    "StatevectorEngine",
    "apply_shot_noise",
    "make_engine",
    "AnomalyScores",
    "BucketStatistics",
    "bucket_deviations",
    "bucket_statistics",
    "reference_deviations",
    "EnsembleMemberResult",
    "MemberPlan",
    "plan_member",
    "plan_members",
    "execute_member",
    "run_ensemble_member",
    "ExecutorStrategy",
    "available_executors",
    "get_executor",
    "run_ensemble_members",
    "QuorumDetector",
]
