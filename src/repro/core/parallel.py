"""Executor strategies for the embarrassingly parallel ensemble.

The detector's members share nothing (Section IV-F calls the design
"embarrassingly parallel"), and PR 1's batched kernels moved their hot path
into GIL-releasing BLAS.  This module exploits both properties through a
plan/execute architecture: :func:`run_ensemble_members` builds one cheap,
picklable :class:`~repro.core.ensemble.MemberPlan` per member up front, then
hands the plans to a pluggable :class:`ExecutorStrategy`:

* ``serial`` -- plain loop in the calling process (also the fallback).
* ``threads`` -- a ``ThreadPoolExecutor`` sharing the dataset zero-copy;
  effective because members spend their time inside batched BLAS kernels that
  release the GIL.
* ``processes`` -- a process pool whose workers map the dataset once from
  ``multiprocessing.shared_memory`` instead of receiving one pickled copy
  each; only the tiny plans and result arrays cross process boundaries.
* ``fused`` -- cross-member stacked execution in the calling process: plans
  are grouped by compiled-circuit structure signature
  (:func:`~repro.core.ensemble.plan_structure_key`) and each group runs as
  ONE ``(members x levels x samples)`` batch per sweep step through
  :func:`~repro.core.ensemble.execute_member_group`, sharing a single engine
  (one noise-model build, one walker) across the whole ensemble.  Configs
  the stacked sweep cannot express (statevector backend) fall back to the
  per-member loop inside the strategy.

``QuorumConfig.executor`` selects a strategy (``"auto"`` picks ``processes``
when ``n_jobs > 1``; ``QuorumConfig.fused_members`` can force fusion on or
off independently of the executor).  Pool creation failures --
``OSError``/``ValueError`` (restricted environments: no ``/dev/shm``,
sandboxed fork), ``PicklingError``/``RuntimeError`` (unpicklable state,
missing start-method bootstrapping) -- fall back to the serial strategy, and
the executor actually used is logged and recorded on the strategy result.

All strategies produce bit-identical scores for a fixed seed: every member
owns an independent RNG stream, and the fused path draws its shot noise per
member from exactly those streams.
"""

from __future__ import annotations

import logging
import multiprocessing
import pickle
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import QuorumConfig
from repro.core.ensemble import (
    EnsembleMemberResult,
    MemberPlan,
    execute_member,
    execute_member_group,
    plan_member,
    plan_structure_key,
)
from repro.core.execution import make_engine

__all__ = [
    "ExecutorStrategy",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "FusedExecutor",
    "available_executors",
    "get_executor",
    "plan_members",
    "run_ensemble_members",
    "derive_member_seeds",
]

logger = logging.getLogger(__name__)

#: Per-worker dataset view and its shared-memory handle, installed by
#: :func:`_init_shared_worker` (the handle must stay referenced for the view's
#: buffer to remain mapped).
_WORKER_DATASET: Optional[np.ndarray] = None
_WORKER_SHM: Optional[shared_memory.SharedMemory] = None


def derive_member_seeds(master_seed: Optional[int], count: int) -> List[int]:
    """Deterministically derive one child seed per ensemble member."""
    if count < 1:
        raise ValueError("count must be positive")
    seed_sequence = np.random.SeedSequence(master_seed)
    return [int(child.generate_state(1)[0]) for child in seed_sequence.spawn(count)]


class ExecutorStrategy(ABC):
    """How a list of member plans is executed against the shared dataset."""

    #: Registry key of the strategy.
    name: str = "abstract"

    @abstractmethod
    def run(self, normalized_data: np.ndarray, plans: Sequence[MemberPlan],
            config: QuorumConfig) -> List[EnsembleMemberResult]:
        """Execute every plan and return results in plan order."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class SerialExecutor(ExecutorStrategy):
    """Execute plans one after another in the calling process."""

    name = "serial"

    def run(self, normalized_data: np.ndarray, plans: Sequence[MemberPlan],
            config: QuorumConfig) -> List[EnsembleMemberResult]:
        return [execute_member(normalized_data, plan, config) for plan in plans]


class ThreadExecutor(ExecutorStrategy):
    """Execute plans on a thread pool over the zero-copy shared dataset.

    Threads see the parent's dataset array directly (no copy, no pickling);
    the batched kernels spend their time in BLAS with the GIL released, so
    member execution overlaps despite running in one process.
    """

    name = "threads"

    def run(self, normalized_data: np.ndarray, plans: Sequence[MemberPlan],
            config: QuorumConfig) -> List[EnsembleMemberResult]:
        workers = min(config.n_jobs, len(plans))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(
                lambda plan: execute_member(normalized_data, plan, config),
                plans,
            ))


def _init_shared_worker(shm_name: str, shape: Tuple[int, ...],
                        dtype_str: str) -> None:
    """Pool initializer: map the shared-memory dataset once per worker."""
    global _WORKER_DATASET, _WORKER_SHM
    _WORKER_SHM = shared_memory.SharedMemory(name=shm_name)
    _WORKER_DATASET = np.ndarray(shape, dtype=np.dtype(dtype_str),
                                 buffer=_WORKER_SHM.buf)


def _run_planned_member(args: Tuple[MemberPlan, QuorumConfig]
                        ) -> EnsembleMemberResult:
    plan, config = args
    if _WORKER_DATASET is None:
        raise RuntimeError("worker process was not initialized with the dataset")
    return execute_member(_WORKER_DATASET, plan, config)


class ProcessExecutor(ExecutorStrategy):
    """Execute plans on a process pool fed from shared memory.

    The dataset is written once into ``multiprocessing.shared_memory``; every
    worker maps that one block instead of unpickling its own copy, so task
    payloads shrink to (plan, config) tuples regardless of dataset size.
    """

    name = "processes"

    def run(self, normalized_data: np.ndarray, plans: Sequence[MemberPlan],
            config: QuorumConfig) -> List[EnsembleMemberResult]:
        normalized_data = np.ascontiguousarray(normalized_data)
        shm = shared_memory.SharedMemory(create=True,
                                         size=normalized_data.nbytes)
        try:
            view = np.ndarray(normalized_data.shape, dtype=normalized_data.dtype,
                              buffer=shm.buf)
            view[:] = normalized_data
            context = multiprocessing.get_context()
            with context.Pool(
                processes=min(config.n_jobs, len(plans)),
                initializer=_init_shared_worker,
                initargs=(shm.name, normalized_data.shape,
                          normalized_data.dtype.str),
            ) as pool:
                return pool.map(_run_planned_member,
                                [(plan, config) for plan in plans])
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


class FusedExecutor(ExecutorStrategy):
    """Execute plans as cross-member stacked batches, one per signature group.

    Members whose circuits share a *structure signature* (qubit counts and
    ansatz shape; parameters excluded) differ only in continuous payloads, so
    each group's whole compression sweep collapses into member-stacked
    contractions (:func:`~repro.core.ensemble.execute_member_group`): one
    engine build, one member-batched circuit walk, and one stacked
    expectation per level instead of one full dispatch per member.  Shot
    noise is drawn per member from each plan's own RNG, so scores are
    bit-identical to the serial strategy.

    Engine strategies without an exact stacked sweep (the shot-based
    statevector engine) run the plain per-member loop instead -- same
    results, no fusion.
    """

    name = "fused"

    #: Engine strategies whose exact sweeps support cross-member stacking
    #: (the statevector engine consumes RNG *during* evolution, so its exact
    #: probabilities cannot be separated from its noise).
    FUSABLE_BACKENDS = ("analytic", "density_matrix")

    def run(self, normalized_data: np.ndarray, plans: Sequence[MemberPlan],
            config: QuorumConfig) -> List[EnsembleMemberResult]:
        if config.backend not in self.FUSABLE_BACKENDS:
            logger.info(
                "backend %r has no exact member-batched sweep; the fused "
                "executor is running its members individually",
                config.backend,
            )
            return [execute_member(normalized_data, plan, config)
                    for plan in plans]
        groups: Dict[Tuple, List[int]] = {}
        for position, plan in enumerate(plans):
            groups.setdefault(plan_structure_key(plan), []).append(position)
        # One engine serves every group: the noise model and walker are built
        # once per ensemble instead of once per member.  The engine's own RNG
        # is never consumed (exact sweeps only), so sharing it is safe.
        engine = make_engine(
            config.backend, config.shots, noisy=config.noisy,
            gate_level_encoding=config.gate_level_encoding,
            num_qubits=config.num_qubits,
            simulation_backend=config.simulation_backend,
            compile_circuits=config.compile_circuits,
        )
        results: List[Optional[EnsembleMemberResult]] = [None] * len(plans)
        for indices in groups.values():
            group = execute_member_group(
                normalized_data, [plans[i] for i in indices], config,
                engine=engine,
            )
            for index, result in zip(indices, group):
                results[index] = result
        return results  # type: ignore[return-value]


_EXECUTORS: Dict[str, Callable[[], ExecutorStrategy]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
    FusedExecutor.name: FusedExecutor,
}


def available_executors() -> Tuple[str, ...]:
    """Names of all registered executor strategies (plus ``"auto"``)."""
    return ("auto",) + tuple(sorted(_EXECUTORS))


def get_executor(name: str) -> ExecutorStrategy:
    """Resolve an executor strategy by name (``"auto"`` is resolved upstream)."""
    key = str(name).lower()
    if key not in _EXECUTORS:
        raise ValueError(
            f"unknown executor {name!r}; available: "
            f"{', '.join(available_executors())}"
        )
    return _EXECUTORS[key]()


def plan_members(num_samples: int, num_features: int, config: QuorumConfig,
                 seeds: Sequence[int],
                 bucket_size: Optional[int] = None) -> List[MemberPlan]:
    """Build one :class:`~repro.core.ensemble.MemberPlan` per seed, in order.

    Planning is deterministic in the dataset *shape* and the seeds, so the same
    call always reproduces the same plans (feature subsets, buckets, ansatz
    angles, and post-planning RNG snapshots).
    """
    return [
        plan_member(num_samples, num_features, config, index, seed,
                    bucket_size=bucket_size)
        for index, seed in enumerate(seeds)
    ]


def run_ensemble_members(normalized_data: np.ndarray, config: QuorumConfig,
                         seeds: Sequence[int],
                         bucket_size: Optional[int] = None,
                         return_plans: bool = False):
    """Plan every ensemble member, then execute the plans on the configured
    executor strategy (falling back to serial when a pool cannot be created).

    With ``return_plans=True`` the return value is ``(results, plans)``, where
    ``plans`` are the executed plans in member order -- the detector hands them
    to :mod:`repro.serving.artifact` so a fitted model can be persisted with
    each member's exact configuration and post-planning RNG snapshot.
    """
    normalized_data = np.asarray(normalized_data, dtype=float)
    if normalized_data.ndim != 2:
        raise ValueError("normalized_data must be 2-D")
    num_samples, num_features = normalized_data.shape

    def build_plans() -> List[MemberPlan]:
        return plan_members(num_samples, num_features, config, seeds,
                            bucket_size=bucket_size)

    plans = build_plans()
    if config.wants_fused_members and len(plans) > 1:
        # Fusion is in-process and needs no worker pool, so it is selected
        # regardless of n_jobs (QuorumConfig.fused_members=True also forces
        # it under any executor setting).
        name = FusedExecutor.name
    elif (config.n_jobs <= 1 or len(plans) <= 1
          or config.executor == FusedExecutor.name):
        # executor="fused" with fused_members=False runs the per-member
        # serial reference.
        name = SerialExecutor.name
    elif config.executor == "auto":
        name = ProcessExecutor.name
    else:
        name = config.executor
    strategy = get_executor(name)

    used = strategy.name
    try:
        results = strategy.run(normalized_data, plans, config)
    except (OSError, ValueError, pickle.PicklingError, RuntimeError) as error:
        if strategy.name == SerialExecutor.name:
            raise
        # Restricted environments (no /dev/shm, sandboxed fork, spawn without
        # a picklable __main__) fall back to serial rather than failing the run.
        logger.warning(
            "%r executor unavailable (%s: %s); falling back to serial",
            strategy.name, type(error).__name__, error,
        )
        used = SerialExecutor.name
        # Re-plan before the serial pass: a strategy that executed some members
        # before failing advanced those plans' RNGs, and reusing them would
        # silently break the fixed-seed bit-identity guarantee.
        plans = build_plans()
        results = SerialExecutor().run(normalized_data, plans, config)
    logger.info("ensemble of %d members executed with the %r executor",
                len(plans), used)
    if return_plans:
        return results, plans
    return results
