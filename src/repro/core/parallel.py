"""Parallel execution of ensemble members.

Ensemble members share nothing (Section IV-F calls the design "embarrassingly
parallel"), so they are dispatched to a process pool with plain pickling.  The
serial path is used for ``n_jobs=1`` and as a fallback when a pool cannot be
created (e.g. restricted environments).
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import QuorumConfig
from repro.core.ensemble import EnsembleMemberResult, run_ensemble_member

__all__ = ["run_ensemble_members", "derive_member_seeds"]


def derive_member_seeds(master_seed: Optional[int], count: int) -> List[int]:
    """Deterministically derive one child seed per ensemble member."""
    if count < 1:
        raise ValueError("count must be positive")
    seed_sequence = np.random.SeedSequence(master_seed)
    return [int(child.generate_state(1)[0]) for child in seed_sequence.spawn(count)]


def _run_member(args: Tuple[np.ndarray, QuorumConfig, int, int, Optional[int]]
                ) -> EnsembleMemberResult:
    normalized_data, config, member_index, member_seed, bucket_size = args
    return run_ensemble_member(normalized_data, config, member_index, member_seed,
                               bucket_size=bucket_size)


def run_ensemble_members(normalized_data: np.ndarray, config: QuorumConfig,
                         seeds: Sequence[int],
                         bucket_size: Optional[int] = None
                         ) -> List[EnsembleMemberResult]:
    """Run every ensemble member, serially or across a process pool."""
    tasks = [
        (normalized_data, config, index, seed, bucket_size)
        for index, seed in enumerate(seeds)
    ]
    if config.n_jobs <= 1 or len(tasks) <= 1:
        return [_run_member(task) for task in tasks]
    try:
        context = multiprocessing.get_context()
        with context.Pool(processes=min(config.n_jobs, len(tasks))) as pool:
            return pool.map(_run_member, tasks)
    except (OSError, ValueError):
        # Restricted environments (no /dev/shm, sandboxed fork) fall back to serial.
        return [_run_member(task) for task in tasks]
