"""Parallel execution of ensemble members.

Ensemble members share nothing (Section IV-F calls the design "embarrassingly
parallel"), so they are dispatched to a process pool.  The normalized dataset is
shipped to each worker exactly once through the pool initializer instead of
being pickled into every member's argument tuple -- with hundreds of members the
old per-task pickling copied the whole dataset once per member.  The serial path
is used for ``n_jobs=1`` and as a fallback when a pool cannot be created (e.g.
restricted environments).
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import QuorumConfig
from repro.core.ensemble import EnsembleMemberResult, run_ensemble_member

__all__ = ["run_ensemble_members", "derive_member_seeds"]

#: Per-process normalized dataset, installed by :func:`_init_worker` (in pool
#: workers) so member tasks only carry (config, index, seed, bucket_size).
_WORKER_DATASET: Optional[np.ndarray] = None


def derive_member_seeds(master_seed: Optional[int], count: int) -> List[int]:
    """Deterministically derive one child seed per ensemble member."""
    if count < 1:
        raise ValueError("count must be positive")
    seed_sequence = np.random.SeedSequence(master_seed)
    return [int(child.generate_state(1)[0]) for child in seed_sequence.spawn(count)]


def _init_worker(normalized_data: np.ndarray) -> None:
    """Pool initializer: stash the dataset once per worker process."""
    global _WORKER_DATASET
    _WORKER_DATASET = normalized_data


def _run_member(args: Tuple[QuorumConfig, int, int, Optional[int]]
                ) -> EnsembleMemberResult:
    config, member_index, member_seed, bucket_size = args
    if _WORKER_DATASET is None:
        raise RuntimeError("worker process was not initialized with the dataset")
    return run_ensemble_member(_WORKER_DATASET, config, member_index, member_seed,
                               bucket_size=bucket_size)


def run_ensemble_members(normalized_data: np.ndarray, config: QuorumConfig,
                         seeds: Sequence[int],
                         bucket_size: Optional[int] = None
                         ) -> List[EnsembleMemberResult]:
    """Run every ensemble member, serially or across a process pool."""
    normalized_data = np.asarray(normalized_data, dtype=float)
    tasks = [(config, index, seed, bucket_size)
             for index, seed in enumerate(seeds)]

    def _run_serial() -> List[EnsembleMemberResult]:
        return [
            run_ensemble_member(normalized_data, config, index, seed,
                                bucket_size=bucket_size)
            for config, index, seed, bucket_size in tasks
        ]

    if config.n_jobs <= 1 or len(tasks) <= 1:
        return _run_serial()
    try:
        context = multiprocessing.get_context()
        with context.Pool(processes=min(config.n_jobs, len(tasks)),
                          initializer=_init_worker,
                          initargs=(normalized_data,)) as pool:
            return pool.map(_run_member, tasks)
    except (OSError, ValueError):
        # Restricted environments (no /dev/shm, sandboxed fork) fall back to serial.
        return _run_serial()
