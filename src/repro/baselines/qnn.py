"""Supervised variational quantum classifier ("QNN") baseline.

The paper compares Quorum against the quantum-neural-network detector of
Kukliansky et al. [14], "adapted for generic use".  This module implements that
adaptation:

* the ``n`` highest-variance features are angle-encoded (RY rotations) onto ``n``
  qubits,
* a hardware-efficient ansatz (RY/RZ layers + CX chain) with trainable angles
  follows,
* the expectation of Pauli-Z on qubit 0 is mapped to an anomaly probability, and
* the angles are trained with parameter-shift gradients on *labeled* data.

Training uses a plain unweighted loss, exactly the regime that makes a supervised
classifier conservative on heavily imbalanced anomaly data -- which is the
behaviour the paper reports for the QNN (perfect precision, poor recall, and zero
detections on the hardest dataset).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import Statevector

__all__ = ["QNNConfig", "QNNClassifier"]


@dataclass(frozen=True)
class QNNConfig:
    """Hyper-parameters of the QNN baseline.

    Attributes
    ----------
    num_qubits:
        Number of encoding qubits (and of angle-encoded features).
    num_layers:
        Ansatz depth.
    epochs:
        Full-batch training epochs.
    learning_rate:
        Gradient-descent step size.
    threshold:
        Decision threshold on the anomaly probability.
    seed:
        Parameter-initialization / batching seed.
    class_weighting:
        When True the minority class is up-weighted (not what the adapted
        competitor does by default; exposed for ablations).
    """

    num_qubits: int = 3
    num_layers: int = 2
    epochs: int = 60
    learning_rate: float = 0.15
    threshold: float = 0.5
    seed: Optional[int] = 7
    class_weighting: bool = False

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise ValueError("the QNN needs at least one qubit")
        if self.num_layers < 1:
            raise ValueError("the QNN needs at least one ansatz layer")
        if self.epochs < 1:
            raise ValueError("epochs must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")

    @property
    def num_parameters(self) -> int:
        """Two rotations per qubit per layer."""
        return 2 * self.num_qubits * self.num_layers


class QNNClassifier:
    """Trainable variational quantum classifier for anomaly labels."""

    def __init__(self, config: Optional[QNNConfig] = None, **overrides: object):
        if config is None:
            config = QNNConfig(**overrides)  # type: ignore[arg-type]
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.parameters_: Optional[np.ndarray] = None
        self.selected_features_: Optional[np.ndarray] = None
        self.feature_min_: Optional[np.ndarray] = None
        self.feature_max_: Optional[np.ndarray] = None
        self.training_history_: List[float] = []

    # ------------------------------------------------------------ preparation
    def _select_features(self, data: np.ndarray) -> np.ndarray:
        variances = data.var(axis=0)
        order = np.argsort(variances)[::-1]
        return np.sort(order[: self.config.num_qubits])

    def _encode_angles(self, data: np.ndarray) -> np.ndarray:
        """Map selected features to RY angles in [0, pi]."""
        selected = data[:, self.selected_features_]
        span = self.feature_max_ - self.feature_min_
        span = np.where(span > 0, span, 1.0)
        scaled = (selected - self.feature_min_) / span
        return np.clip(scaled, 0.0, 1.0) * math.pi

    def _encoded_states(self, angles: np.ndarray) -> np.ndarray:
        """Statevectors of the angle-encoding layer, one row per sample."""
        num_qubits = self.config.num_qubits
        states = np.zeros((angles.shape[0], 2 ** num_qubits), dtype=complex)
        for row, sample_angles in enumerate(angles):
            state = Statevector.zero_state(num_qubits)
            for qubit, angle in enumerate(sample_angles):
                from repro.quantum.gates import ry_matrix

                state = state.evolve_gate(ry_matrix(float(angle)), [qubit])
            states[row] = state.data
        return states

    def _ansatz_circuit(self, parameters: np.ndarray) -> QuantumCircuit:
        num_qubits = self.config.num_qubits
        circuit = QuantumCircuit(num_qubits, num_qubits, name="qnn_ansatz")
        index = 0
        for _ in range(self.config.num_layers):
            for qubit in range(num_qubits):
                circuit.ry(float(parameters[index]), qubit)
                index += 1
            for qubit in range(num_qubits):
                circuit.rz(float(parameters[index]), qubit)
                index += 1
            for qubit in range(num_qubits - 1):
                circuit.cx(qubit, qubit + 1)
        return circuit

    def _anomaly_probabilities(self, encoded_states: np.ndarray,
                               parameters: np.ndarray) -> np.ndarray:
        """P(anomaly) = (1 - <Z_0>) / 2 for every encoded sample."""
        unitary = self._ansatz_circuit(parameters).to_unitary()
        final_states = encoded_states @ unitary.T
        probabilities = np.abs(final_states) ** 2
        dim = probabilities.shape[1]
        # Little endian: qubit 0 is the least significant bit of the basis index.
        odd_indices = [index for index in range(dim) if index & 1]
        p_one = probabilities[:, odd_indices].sum(axis=1)
        return p_one

    # ----------------------------------------------------------------- training
    def fit(self, data: np.ndarray, labels: np.ndarray) -> "QNNClassifier":
        """Train on labeled data with parameter-shift gradient descent."""
        data = np.asarray(data, dtype=float)
        labels = np.asarray(labels, dtype=float).ravel()
        if data.ndim != 2:
            raise ValueError("data must be 2-D")
        if data.shape[0] != labels.shape[0]:
            raise ValueError("data and labels must align")
        if not set(np.unique(labels)).issubset({0.0, 1.0}):
            raise ValueError("labels must be binary")

        self.selected_features_ = self._select_features(data)
        selected = data[:, self.selected_features_]
        self.feature_min_ = selected.min(axis=0)
        self.feature_max_ = selected.max(axis=0)
        angles = self._encode_angles(data)
        encoded = self._encoded_states(angles)

        weights = np.ones_like(labels)
        if self.config.class_weighting and labels.sum() > 0:
            positive_weight = (labels.shape[0] - labels.sum()) / labels.sum()
            weights = np.where(labels == 1.0, positive_weight, 1.0)
        weights = weights / weights.sum()

        parameters = self._rng.uniform(0.0, 2.0 * math.pi,
                                       size=self.config.num_parameters)
        self.training_history_ = []
        for _ in range(self.config.epochs):
            gradient = self._parameter_shift_gradient(encoded, labels, weights,
                                                      parameters)
            parameters = parameters - self.config.learning_rate * gradient
            loss = self._loss(encoded, labels, weights, parameters)
            self.training_history_.append(loss)
        self.parameters_ = parameters
        return self

    def _loss(self, encoded: np.ndarray, labels: np.ndarray, weights: np.ndarray,
              parameters: np.ndarray) -> float:
        predictions = self._anomaly_probabilities(encoded, parameters)
        return float(np.sum(weights * (predictions - labels) ** 2))

    def _parameter_shift_gradient(self, encoded: np.ndarray, labels: np.ndarray,
                                  weights: np.ndarray,
                                  parameters: np.ndarray) -> np.ndarray:
        """Exact gradient via the parameter-shift rule.

        Every ansatz angle enters through a Pauli rotation, so the derivative of
        the anomaly probability is ``(p(theta + pi/2) - p(theta - pi/2)) / 2``;
        the chain rule with the squared loss gives the full gradient.
        """
        base_predictions = self._anomaly_probabilities(encoded, parameters)
        residuals = 2.0 * weights * (base_predictions - labels)
        gradient = np.zeros_like(parameters)
        for index in range(parameters.shape[0]):
            shifted_up = parameters.copy()
            shifted_up[index] += math.pi / 2.0
            shifted_down = parameters.copy()
            shifted_down[index] -= math.pi / 2.0
            derivative = 0.5 * (
                self._anomaly_probabilities(encoded, shifted_up)
                - self._anomaly_probabilities(encoded, shifted_down)
            )
            gradient[index] = float(np.sum(residuals * derivative))
        return gradient

    # ---------------------------------------------------------------- inference
    def _require_fitted(self) -> None:
        if self.parameters_ is None:
            raise RuntimeError("the QNN has not been trained")

    def decision_function(self, data: np.ndarray) -> np.ndarray:
        """Anomaly probabilities in [0, 1]."""
        self._require_fitted()
        data = np.asarray(data, dtype=float)
        angles = self._encode_angles(data)
        encoded = self._encoded_states(angles)
        return self._anomaly_probabilities(encoded, self.parameters_)

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Binary anomaly flags using the configured threshold."""
        probabilities = self.decision_function(data)
        return (probabilities >= self.config.threshold).astype(int)

    def score_report(self) -> Dict[str, object]:
        """Training diagnostics (loss curve, selected features)."""
        self._require_fitted()
        return {
            "final_loss": self.training_history_[-1] if self.training_history_ else None,
            "epochs": len(self.training_history_),
            "selected_features": self.selected_features_.tolist(),
            "num_parameters": self.config.num_parameters,
        }
