"""Classical autoencoder baseline (the concept Quorum "quantizes").

A small fully connected autoencoder trained by plain mini-batch gradient descent
(numpy only).  Samples with large reconstruction error are scored as anomalous --
the classical analogue of the quantum autoencoder's SWAP-test dissimilarity.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["AutoencoderDetector"]


def _sigmoid(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(values, -30.0, 30.0)))


class AutoencoderDetector:
    """One-hidden-layer (per side) dense autoencoder with reconstruction scoring.

    Parameters
    ----------
    bottleneck:
        Width of the compressed representation.
    hidden:
        Width of the encoder/decoder hidden layers.
    epochs:
        Training epochs over the whole dataset.
    learning_rate:
        Gradient-descent step size.
    batch_size:
        Mini-batch size.
    seed:
        Weight-initialization / shuffling seed.
    """

    def __init__(self, bottleneck: int = 2, hidden: int = 16, epochs: int = 200,
                 learning_rate: float = 0.05, batch_size: int = 32,
                 seed: Optional[int] = 0) -> None:
        if bottleneck < 1 or hidden < 1:
            raise ValueError("layer widths must be positive")
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.bottleneck = bottleneck
        self.hidden = hidden
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.seed = seed
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self._feature_min: Optional[np.ndarray] = None
        self._feature_max: Optional[np.ndarray] = None
        self.loss_history_: List[float] = []

    # ------------------------------------------------------------------ layers
    def _initialize(self, num_features: int, rng: np.random.Generator) -> None:
        sizes = [num_features, self.hidden, self.bottleneck, self.hidden, num_features]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self._weights.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _forward(self, batch: np.ndarray) -> Tuple[List[np.ndarray], np.ndarray]:
        activations = [batch]
        current = batch
        for layer, (weight, bias) in enumerate(zip(self._weights, self._biases)):
            pre_activation = current @ weight + bias
            if layer < len(self._weights) - 1:
                current = _sigmoid(pre_activation)
            else:
                current = pre_activation  # linear output layer
            activations.append(current)
        return activations, current

    def _normalize(self, data: np.ndarray) -> np.ndarray:
        span = self._feature_max - self._feature_min
        span = np.where(span > 0, span, 1.0)
        return np.clip((data - self._feature_min) / span, 0.0, 1.0)

    # ---------------------------------------------------------------- training
    def fit(self, data: np.ndarray) -> "AutoencoderDetector":
        """Train the autoencoder on (unlabeled) data."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[0] < 2:
            raise ValueError("data must be 2-D with at least two samples")
        rng = np.random.default_rng(self.seed)
        self._feature_min = data.min(axis=0)
        self._feature_max = data.max(axis=0)
        normalized = self._normalize(data)
        self._initialize(data.shape[1], rng)
        self.loss_history_ = []
        num_samples = normalized.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(num_samples)
            epoch_loss = 0.0
            for start in range(0, num_samples, self.batch_size):
                batch = normalized[order[start:start + self.batch_size]]
                epoch_loss += self._train_batch(batch)
            self.loss_history_.append(epoch_loss / num_samples)
        return self

    def _train_batch(self, batch: np.ndarray) -> float:
        activations, output = self._forward(batch)
        error = output - batch
        loss = float(np.sum(error ** 2))
        batch_size = batch.shape[0]
        # Backpropagation through the linear output layer and sigmoid hidden layers.
        delta = 2.0 * error / batch_size
        for layer in reversed(range(len(self._weights))):
            inputs = activations[layer]
            grad_weight = inputs.T @ delta
            grad_bias = delta.sum(axis=0)
            if layer > 0:
                upstream = delta @ self._weights[layer].T
                hidden_activation = activations[layer]
                delta = upstream * hidden_activation * (1.0 - hidden_activation)
            self._weights[layer] -= self.learning_rate * grad_weight
            self._biases[layer] -= self.learning_rate * grad_bias
        return loss

    # ----------------------------------------------------------------- scoring
    def anomaly_scores(self, data: np.ndarray) -> np.ndarray:
        """Per-sample reconstruction error."""
        if not self._weights:
            raise RuntimeError("the autoencoder has not been trained")
        data = np.asarray(data, dtype=float)
        normalized = self._normalize(data)
        _, output = self._forward(normalized)
        return np.sum((output - normalized) ** 2, axis=1)

    def fit_scores(self, data: np.ndarray) -> np.ndarray:
        """Fit and score in one call."""
        return self.fit(data).anomaly_scores(data)

    def predict(self, data: np.ndarray, num_anomalies: int) -> np.ndarray:
        """Flag the ``num_anomalies`` worst-reconstructed samples."""
        scores = self.anomaly_scores(data)
        flags = np.zeros(data.shape[0], dtype=int)
        flags[np.argsort(scores)[::-1][:num_anomalies]] = 1
        return flags
