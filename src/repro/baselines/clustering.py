"""K-means clustering baseline: anomalies are points far from every centroid."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["KMeansDetector"]


class KMeansDetector:
    """Lloyd's k-means with distance-to-centroid anomaly scoring.

    Parameters
    ----------
    num_clusters:
        Number of centroids fit to the (unlabeled) data.
    max_iterations:
        Lloyd iterations cap.
    tolerance:
        Early-stop threshold on centroid movement.
    seed:
        RNG seed for the k-means++-style initialization.
    """

    def __init__(self, num_clusters: int = 8, max_iterations: int = 100,
                 tolerance: float = 1e-6, seed: Optional[int] = 0) -> None:
        if num_clusters < 1:
            raise ValueError("num_clusters must be positive")
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        self.num_clusters = num_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed
        self.centroids_: Optional[np.ndarray] = None
        self.iterations_run_: int = 0

    def _initialize(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread the initial centroids out."""
        centroids = [data[rng.integers(0, data.shape[0])]]
        while len(centroids) < self.num_clusters:
            distances = np.min(
                [np.sum((data - centroid) ** 2, axis=1) for centroid in centroids],
                axis=0,
            )
            total = distances.sum()
            if total <= 0:
                centroids.append(data[rng.integers(0, data.shape[0])])
                continue
            probabilities = distances / total
            centroids.append(data[rng.choice(data.shape[0], p=probabilities)])
        return np.asarray(centroids)

    def fit(self, data: np.ndarray) -> "KMeansDetector":
        """Run Lloyd's algorithm on ``data``."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[0] < self.num_clusters:
            raise ValueError("need at least as many samples as clusters")
        rng = np.random.default_rng(self.seed)
        centroids = self._initialize(data, rng)
        for iteration in range(self.max_iterations):
            distances = np.stack(
                [np.sum((data - centroid) ** 2, axis=1) for centroid in centroids]
            )
            assignments = np.argmin(distances, axis=0)
            updated = centroids.copy()
            for cluster in range(self.num_clusters):
                members = data[assignments == cluster]
                if members.shape[0] > 0:
                    updated[cluster] = members.mean(axis=0)
            movement = float(np.max(np.linalg.norm(updated - centroids, axis=1)))
            centroids = updated
            self.iterations_run_ = iteration + 1
            if movement < self.tolerance:
                break
        self.centroids_ = centroids
        return self

    def anomaly_scores(self, data: np.ndarray) -> np.ndarray:
        """Euclidean distance to the nearest centroid."""
        if self.centroids_ is None:
            raise RuntimeError("the detector has not been fit")
        data = np.asarray(data, dtype=float)
        distances = np.stack(
            [np.linalg.norm(data - centroid, axis=1) for centroid in self.centroids_]
        )
        return distances.min(axis=0)

    def fit_scores(self, data: np.ndarray) -> np.ndarray:
        """Fit and score in one call."""
        return self.fit(data).anomaly_scores(data)

    def predict(self, data: np.ndarray, num_anomalies: int) -> np.ndarray:
        """Flag the ``num_anomalies`` samples farthest from their centroids."""
        scores = self.anomaly_scores(data)
        flags = np.zeros(data.shape[0], dtype=int)
        flags[np.argsort(scores)[::-1][:num_anomalies]] = 1
        return flags
