"""Histogram-Based Outlier Score (HBOS) baseline.

HBOS (Goldstein & Dengel, 2012) is the fastest detector in the Goldstein & Uchida
survey: each feature gets an equal-width histogram, densities are inverted into
per-feature outlier scores, and the per-feature scores are summed in log space.
It assumes feature independence, which makes it a useful contrast to Quorum's
random *joint* projections.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = ["HBOSDetector"]


class HBOSDetector:
    """Histogram-based outlier scoring.

    Parameters
    ----------
    num_bins:
        Number of equal-width bins per feature; ``None`` uses ``sqrt(n)``.
    """

    def __init__(self, num_bins: Optional[int] = None) -> None:
        if num_bins is not None and num_bins < 2:
            raise ValueError("num_bins must be at least 2")
        self.num_bins = num_bins
        self._edges: List[np.ndarray] = []
        self._densities: List[np.ndarray] = []

    def fit(self, data: np.ndarray) -> "HBOSDetector":
        """Build one histogram per feature."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[0] < 2:
            raise ValueError("data must be 2-D with at least two samples")
        num_samples, num_features = data.shape
        bins = self.num_bins or max(2, int(round(np.sqrt(num_samples))))
        self._edges = []
        self._densities = []
        for feature in range(num_features):
            column = data[:, feature]
            low, high = column.min(), column.max()
            if high <= low:
                high = low + 1.0
            edges = np.linspace(low, high, bins + 1)
            counts, _ = np.histogram(column, bins=edges)
            densities = counts / counts.max() if counts.max() > 0 else counts.astype(float)
            # Avoid zero densities (unseen bins get a small floor).
            densities = np.clip(densities, 1.0 / (10.0 * num_samples), None)
            self._edges.append(edges)
            self._densities.append(densities)
        return self

    def anomaly_scores(self, data: np.ndarray) -> np.ndarray:
        """Summed log-inverse bin densities (higher = more anomalous)."""
        if not self._edges:
            raise RuntimeError("the detector has not been fit")
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[1] != len(self._edges):
            raise ValueError("data must match the fitted feature count")
        scores = np.zeros(data.shape[0])
        for feature, (edges, densities) in enumerate(zip(self._edges,
                                                         self._densities)):
            positions = np.searchsorted(edges, data[:, feature], side="right") - 1
            positions = np.clip(positions, 0, densities.shape[0] - 1)
            scores += np.log(1.0 / densities[positions])
        return scores

    def fit_scores(self, data: np.ndarray) -> np.ndarray:
        """Fit and score in one call."""
        return self.fit(data).anomaly_scores(data)

    def predict(self, data: np.ndarray, num_anomalies: int) -> np.ndarray:
        """Flag the ``num_anomalies`` highest-scoring samples."""
        scores = self.anomaly_scores(data)
        flags = np.zeros(data.shape[0], dtype=int)
        flags[np.argsort(scores)[::-1][:num_anomalies]] = 1
        return flags
