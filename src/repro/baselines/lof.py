"""Local Outlier Factor (LOF) baseline.

LOF is one of the strongest detectors in Goldstein & Uchida's survey -- the source
of three of the paper's four datasets -- so it is the natural classical yardstick
for "local" anomalies.  A sample's LOF compares its local reachability density to
that of its k nearest neighbours: values well above 1 indicate an outlier.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["LocalOutlierFactorDetector"]


class LocalOutlierFactorDetector:
    """Classic LOF (Breunig et al., 2000) with brute-force neighbour search.

    Parameters
    ----------
    num_neighbors:
        Size of the neighbourhood (``k``).  Capped at ``n - 1`` during fit.
    """

    def __init__(self, num_neighbors: int = 20) -> None:
        if num_neighbors < 1:
            raise ValueError("num_neighbors must be positive")
        self.num_neighbors = num_neighbors
        self._scores: Optional[np.ndarray] = None

    # ----------------------------------------------------------------- fitting
    def fit(self, data: np.ndarray) -> "LocalOutlierFactorDetector":
        """Compute LOF scores for every sample of ``data`` (transductive)."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[0] < 3:
            raise ValueError("data must be 2-D with at least three samples")
        num_samples = data.shape[0]
        k = min(self.num_neighbors, num_samples - 1)

        # Pairwise Euclidean distances (brute force; datasets here are small).
        squared_norms = np.sum(data ** 2, axis=1)
        squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * (data @ data.T)
        np.fill_diagonal(squared, np.inf)
        distances = np.sqrt(np.clip(squared, 0.0, None))

        # k nearest neighbours and k-distance of every sample.
        neighbor_indices = np.argsort(distances, axis=1)[:, :k]
        neighbor_distances = np.take_along_axis(distances, neighbor_indices, axis=1)
        k_distance = neighbor_distances[:, -1]

        # Reachability distance: reach(a, b) = max(k_distance(b), d(a, b)).
        reachability = np.maximum(neighbor_distances, k_distance[neighbor_indices])
        # Local reachability density of each sample.
        lrd = k / np.maximum(reachability.sum(axis=1), 1e-12)

        # LOF: average ratio of the neighbours' lrd to the sample's own lrd.
        lof = (lrd[neighbor_indices].mean(axis=1)) / np.maximum(lrd, 1e-12)
        self._scores = lof
        return self

    # ----------------------------------------------------------------- scoring
    def anomaly_scores(self, data: Optional[np.ndarray] = None) -> np.ndarray:
        """LOF values of the fitted data (``data`` is accepted for API symmetry)."""
        if self._scores is None:
            raise RuntimeError("the detector has not been fit")
        if data is not None and np.asarray(data).shape[0] != self._scores.shape[0]:
            raise ValueError("LOF is transductive; score the data it was fit on")
        return self._scores.copy()

    def fit_scores(self, data: np.ndarray) -> np.ndarray:
        """Fit and score in one call."""
        return self.fit(data).anomaly_scores()

    def predict(self, data: np.ndarray, num_anomalies: int) -> np.ndarray:
        """Flag the ``num_anomalies`` samples with the largest LOF."""
        scores = self.anomaly_scores(data)
        flags = np.zeros(scores.shape[0], dtype=int)
        flags[np.argsort(scores)[::-1][:num_anomalies]] = 1
        return flags
