"""PCA-reconstruction baseline.

The paper contrasts Quorum's uniform random feature selection with PCA-style
dimensionality reduction; this detector provides the corresponding classical
anomaly scorer: project onto the top principal components and score samples by
reconstruction error.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["PCAReconstructionDetector"]


class PCAReconstructionDetector:
    """Anomaly detection via principal-component reconstruction error.

    Parameters
    ----------
    num_components:
        Number of principal components retained (capped at the feature count).
    """

    def __init__(self, num_components: int = 3) -> None:
        if num_components < 1:
            raise ValueError("num_components must be positive")
        self.num_components = num_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray) -> "PCAReconstructionDetector":
        """Fit the principal subspace to ``data``."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[0] < 2:
            raise ValueError("data must be 2-D with at least two samples")
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        _, singular_values, rows = np.linalg.svd(centered, full_matrices=False)
        rank = min(self.num_components, rows.shape[0])
        self.components_ = rows[:rank]
        variances = singular_values ** 2
        total = variances.sum()
        self.explained_variance_ratio_ = (
            variances[:rank] / total if total > 0 else np.zeros(rank)
        )
        return self

    def anomaly_scores(self, data: np.ndarray) -> np.ndarray:
        """Squared reconstruction error per sample."""
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("the detector has not been fit")
        data = np.asarray(data, dtype=float)
        centered = data - self.mean_
        projected = centered @ self.components_.T
        reconstructed = projected @ self.components_
        return np.sum((centered - reconstructed) ** 2, axis=1)

    def fit_scores(self, data: np.ndarray) -> np.ndarray:
        """Fit and score in one call."""
        return self.fit(data).anomaly_scores(data)

    def predict(self, data: np.ndarray, num_anomalies: int) -> np.ndarray:
        """Flag the ``num_anomalies`` worst-reconstructed samples."""
        scores = self.anomaly_scores(data)
        flags = np.zeros(data.shape[0], dtype=int)
        flags[np.argsort(scores)[::-1][:num_anomalies]] = 1
        return flags
