"""Baselines: the paper's QNN competitor plus classical anomaly detectors.

* :class:`QNNClassifier` -- supervised variational quantum classifier adapted from
  Kukliansky et al. (the "QNN" bars in Fig. 8).
* :class:`IsolationForestDetector`, :class:`KMeansDetector`,
  :class:`PCAReconstructionDetector`, :class:`AutoencoderDetector` -- the classical
  techniques the paper's background section positions Quorum against.
"""

from repro.baselines.qnn import QNNClassifier, QNNConfig
from repro.baselines.isolation_forest import IsolationForestDetector
from repro.baselines.clustering import KMeansDetector
from repro.baselines.pca import PCAReconstructionDetector
from repro.baselines.autoencoder import AutoencoderDetector
from repro.baselines.lof import LocalOutlierFactorDetector
from repro.baselines.hbos import HBOSDetector

__all__ = [
    "QNNClassifier",
    "QNNConfig",
    "IsolationForestDetector",
    "KMeansDetector",
    "PCAReconstructionDetector",
    "AutoencoderDetector",
    "LocalOutlierFactorDetector",
    "HBOSDetector",
]
