"""Isolation Forest, implemented from scratch (Liu et al., 2008).

The paper's background section cites Isolation Forests as the canonical classical
tree-based unsupervised detector; this implementation provides that comparison
point without external dependencies.  Anomalies are isolated with fewer random
splits, so shorter average path lengths give higher anomaly scores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["IsolationForestDetector"]


@dataclass
class _Node:
    """One node of an isolation tree."""

    size: int
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


def _average_path_length(num_samples: int) -> float:
    """Expected path length of an unsuccessful BST search, c(n) in the paper."""
    if num_samples <= 1:
        return 0.0
    if num_samples == 2:
        return 1.0
    harmonic = math.log(num_samples - 1) + 0.5772156649015329
    return 2.0 * harmonic - 2.0 * (num_samples - 1) / num_samples


class IsolationForestDetector:
    """Unsupervised anomaly detection via isolation trees.

    Parameters
    ----------
    num_trees:
        Number of isolation trees.
    subsample_size:
        Rows drawn (without replacement) per tree; capped at the dataset size.
    seed:
        RNG seed.
    """

    def __init__(self, num_trees: int = 100, subsample_size: int = 256,
                 seed: Optional[int] = 0) -> None:
        if num_trees < 1:
            raise ValueError("num_trees must be positive")
        if subsample_size < 2:
            raise ValueError("subsample_size must be at least 2")
        self.num_trees = num_trees
        self.subsample_size = subsample_size
        self.seed = seed
        self._trees: List[_Node] = []
        self._tree_sample_size: int = 0

    # ----------------------------------------------------------------- fitting
    def fit(self, data: np.ndarray) -> "IsolationForestDetector":
        """Build the forest on ``data`` (labels are never used)."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[0] < 2:
            raise ValueError("data must be 2-D with at least two samples")
        rng = np.random.default_rng(self.seed)
        sample_size = min(self.subsample_size, data.shape[0])
        height_limit = math.ceil(math.log2(sample_size))
        self._trees = []
        self._tree_sample_size = sample_size
        for _ in range(self.num_trees):
            indices = rng.choice(data.shape[0], size=sample_size, replace=False)
            self._trees.append(self._build_tree(data[indices], 0, height_limit, rng))
        return self

    def _build_tree(self, data: np.ndarray, depth: int, height_limit: int,
                    rng: np.random.Generator) -> _Node:
        if depth >= height_limit or data.shape[0] <= 1:
            return _Node(size=data.shape[0])
        feature = int(rng.integers(0, data.shape[1]))
        low = data[:, feature].min()
        high = data[:, feature].max()
        if high <= low:
            return _Node(size=data.shape[0])
        threshold = float(rng.uniform(low, high))
        mask = data[:, feature] < threshold
        return _Node(
            size=data.shape[0],
            feature=feature,
            threshold=threshold,
            left=self._build_tree(data[mask], depth + 1, height_limit, rng),
            right=self._build_tree(data[~mask], depth + 1, height_limit, rng),
        )

    # ----------------------------------------------------------------- scoring
    def _path_length(self, sample: np.ndarray, node: _Node, depth: int) -> float:
        if node.is_leaf:
            return depth + _average_path_length(node.size)
        if sample[node.feature] < node.threshold:
            return self._path_length(sample, node.left, depth + 1)
        return self._path_length(sample, node.right, depth + 1)

    def anomaly_scores(self, data: np.ndarray) -> np.ndarray:
        """Standard isolation-forest scores in (0, 1); higher = more anomalous."""
        if not self._trees:
            raise RuntimeError("the forest has not been fit")
        data = np.asarray(data, dtype=float)
        normalizer = _average_path_length(self._tree_sample_size)
        scores = np.empty(data.shape[0])
        for row, sample in enumerate(data):
            mean_path = float(np.mean([
                self._path_length(sample, tree, 0) for tree in self._trees
            ]))
            scores[row] = 2.0 ** (-mean_path / normalizer)
        return scores

    def fit_scores(self, data: np.ndarray) -> np.ndarray:
        """Fit and score in one call (the usual transductive usage)."""
        return self.fit(data).anomaly_scores(data)

    def predict(self, data: np.ndarray, num_anomalies: int) -> np.ndarray:
        """Flag the ``num_anomalies`` highest-scoring samples."""
        scores = self.anomaly_scores(data)
        flags = np.zeros(data.shape[0], dtype=int)
        flags[np.argsort(scores)[::-1][:num_anomalies]] = 1
        return flags
