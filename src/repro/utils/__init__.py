"""Shared utilities: result serialization, timing, and seed management."""

from repro.utils.serialization import (
    dataclass_to_dict,
    load_json,
    save_json,
    to_jsonable,
)
from repro.utils.timing import Stopwatch, timed
from repro.utils.seeding import spawn_seeds, stable_hash_seed

__all__ = [
    "to_jsonable",
    "dataclass_to_dict",
    "save_json",
    "load_json",
    "Stopwatch",
    "timed",
    "spawn_seeds",
    "stable_hash_seed",
]
