"""JSON serialization for experiment results and run artifacts.

Experiment runners return frozen dataclasses holding numpy arrays, tuples, and
nested dataclasses; :func:`to_jsonable` converts any of those into plain JSON
types so results can be archived next to ``EXPERIMENTS.md`` and reloaded later.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

__all__ = [
    "to_jsonable",
    "dataclass_to_dict",
    "save_json",
    "load_json",
    "coerce_float_array",
    "coerce_int_array",
]


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serializable Python types.

    Supports dataclasses, numpy scalars/arrays, mappings, sets, and sequences.
    Unknown objects fall back to their ``repr`` (results should stay inspectable
    rather than raising deep inside a sweep).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: to_jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, Path):
        return str(value)
    return repr(value)


def dataclass_to_dict(instance: Any) -> Dict[str, Any]:
    """JSON-ready dictionary for a dataclass instance.

    Raises
    ------
    TypeError
        If ``instance`` is not a dataclass instance.
    """
    if not dataclasses.is_dataclass(instance) or isinstance(instance, type):
        raise TypeError("expected a dataclass instance")
    return to_jsonable(instance)


def save_json(value: Any, path: Union[str, Path], indent: int = 2) -> Path:
    """Serialize ``value`` (via :func:`to_jsonable`) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(to_jsonable(value), handle, indent=indent, sort_keys=False)
        handle.write("\n")
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Load a JSON document written by :func:`save_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def coerce_float_array(value: Any, name: str = "array",
                       shape: Any = None) -> np.ndarray:
    """Strictly decode a JSON payload into a float64 numpy array.

    Raises :class:`TypeError` when ``value`` holds non-numeric entries (JSON
    strings, nulls, nested objects) and :class:`ValueError` when ``shape`` is
    given and does not match -- the artifact loader wraps both into its
    dtype-mismatch error so corrupted model files fail loudly at load time
    instead of producing garbage scores.
    """
    try:
        raw = np.asarray(value)
    except (TypeError, ValueError) as error:
        raise TypeError(f"{name} is not a numeric array: {error}") from None
    # Reject non-numeric dtypes *before* converting: np.asarray(...,
    # dtype=float64) would happily parse numeric strings ("1.5"), defeating
    # the dtype hardening this helper exists for.
    if raw.dtype.kind not in "fiu":
        raise TypeError(f"{name} decoded to dtype {raw.dtype}, expected numeric")
    array = raw.astype(np.float64)
    if not np.all(np.isfinite(array)):
        raise TypeError(f"{name} contains non-finite values")
    if shape is not None and array.shape != tuple(shape):
        raise ValueError(
            f"{name} has shape {array.shape}, expected {tuple(shape)}"
        )
    return array


def coerce_int_array(value: Any, name: str = "array",
                     shape: Any = None) -> np.ndarray:
    """Strictly decode a JSON payload into an int64 numpy array.

    Like :func:`coerce_float_array`, but additionally rejects fractional
    values that would silently truncate (e.g. a feature index ``2.5``).
    """
    as_float = coerce_float_array(value, name=name, shape=shape)
    array = as_float.astype(np.int64)
    if not np.array_equal(array, as_float):
        raise TypeError(f"{name} contains non-integer values")
    return array
