"""JSON serialization for experiment results and run artifacts.

Experiment runners return frozen dataclasses holding numpy arrays, tuples, and
nested dataclasses; :func:`to_jsonable` converts any of those into plain JSON
types so results can be archived next to ``EXPERIMENTS.md`` and reloaded later.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

__all__ = ["to_jsonable", "dataclass_to_dict", "save_json", "load_json"]


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serializable Python types.

    Supports dataclasses, numpy scalars/arrays, mappings, sets, and sequences.
    Unknown objects fall back to their ``repr`` (results should stay inspectable
    rather than raising deep inside a sweep).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: to_jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, Path):
        return str(value)
    return repr(value)


def dataclass_to_dict(instance: Any) -> Dict[str, Any]:
    """JSON-ready dictionary for a dataclass instance.

    Raises
    ------
    TypeError
        If ``instance`` is not a dataclass instance.
    """
    if not dataclasses.is_dataclass(instance) or isinstance(instance, type):
        raise TypeError("expected a dataclass instance")
    return to_jsonable(instance)


def save_json(value: Any, path: Union[str, Path], indent: int = 2) -> Path:
    """Serialize ``value`` (via :func:`to_jsonable`) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(to_jsonable(value), handle, indent=indent, sort_keys=False)
        handle.write("\n")
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Load a JSON document written by :func:`save_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)
