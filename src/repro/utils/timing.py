"""Lightweight wall-clock timing helpers for examples and experiment runners."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["Stopwatch", "timed"]


@dataclass
class Stopwatch:
    """Accumulates named wall-clock durations.

    Examples
    --------
    >>> watch = Stopwatch()
    >>> with watch.measure("encode"):
    ...     do_work()          # doctest: +SKIP
    >>> watch.total_seconds()  # doctest: +SKIP
    """

    durations: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Context manager adding the elapsed time under ``label``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[label] = self.durations.get(label, 0.0) + elapsed

    def seconds(self, label: str) -> float:
        """Accumulated seconds for ``label`` (0 when never measured)."""
        return self.durations.get(label, 0.0)

    def total_seconds(self) -> float:
        """Sum of every measured duration."""
        return sum(self.durations.values())

    def summary(self) -> Dict[str, float]:
        """Copy of the label -> seconds mapping, rounded for display."""
        return {label: round(value, 6) for label, value in self.durations.items()}


@contextmanager
def timed(label: str = "block", printer=None) -> Iterator[Stopwatch]:
    """Standalone timing context; prints the duration when ``printer`` is given."""
    watch = Stopwatch()
    with watch.measure(label):
        yield watch
    if printer is not None:
        printer(f"{label}: {watch.seconds(label):.3f}s")
