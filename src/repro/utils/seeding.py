"""Deterministic seed management shared by detectors, baselines, and experiments."""

from __future__ import annotations

import hashlib
from typing import List, Optional

import numpy as np

__all__ = ["spawn_seeds", "stable_hash_seed"]


def spawn_seeds(master_seed: Optional[int], count: int) -> List[int]:
    """Derive ``count`` independent child seeds from ``master_seed``.

    Uses numpy's ``SeedSequence`` spawning, so children are statistically
    independent and the mapping is stable across platforms and numpy versions.
    """
    if count < 1:
        raise ValueError("count must be positive")
    sequence = np.random.SeedSequence(master_seed)
    return [int(child.generate_state(1)[0]) for child in sequence.spawn(count)]


def stable_hash_seed(*parts: object, bits: int = 32) -> int:
    """A process-independent integer seed derived from arbitrary labels.

    Useful for giving every (dataset, experiment, variant) combination its own
    reproducible randomness without hand-maintaining seed tables.
    """
    if not 1 <= bits <= 63:
        raise ValueError("bits must be between 1 and 63")
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.blake2s(text.encode("utf-8"), digest_size=8).hexdigest()
    return int(digest, 16) % (1 << bits)
