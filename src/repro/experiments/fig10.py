"""Fig. 10: how Quorum separates anomalies on the breast-cancer dataset.

The paper plots every sample's summed absolute deviation (sorted ascending) with
anomalous samples highlighted, at 16K shots.  The reproduction computes the same
profile and summarizes it with the statistics that make the figure legible as
text: the mean score of anomalous vs normal samples, and how many of the top-k
scores belong to true anomalies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.registry import load_dataset
from repro.experiments.common import ExperimentSettings, markdown_table, run_quorum
from repro.metrics.detection import separation_profile

__all__ = ["Fig10Result", "run_fig10", "format_fig10"]


@dataclass(frozen=True)
class Fig10Result:
    """Separation statistics behind the Fig. 10 scatter plot."""

    dataset: str
    sorted_scores: Tuple[float, ...]
    sorted_is_anomaly: Tuple[bool, ...]
    anomaly_mean_score: float
    normal_mean_score: float
    top_k_anomalies: int
    num_anomalies: int

    @property
    def separation_ratio(self) -> float:
        """Mean anomaly score divided by mean normal score (> 1 means separation)."""
        if self.normal_mean_score == 0:
            return float("inf")
        return self.anomaly_mean_score / self.normal_mean_score


def run_fig10(settings: Optional[ExperimentSettings] = None,
              dataset_name: str = "breast_cancer",
              shots: int = 16384) -> Fig10Result:
    """Score the breast-cancer dataset at 16K shots and build the profile."""
    settings = settings or ExperimentSettings()
    dataset = load_dataset(dataset_name, seed=settings.seed)
    config = settings.quorum_config(dataset_name, shots=shots)
    scores, _ = run_quorum(dataset, config)
    profile = separation_profile(scores, dataset.labels)
    labels = dataset.labels.astype(bool)
    anomaly_mean = float(scores[labels].mean())
    normal_mean = float(scores[~labels].mean())
    top_k = np.argsort(scores)[::-1][: dataset.num_anomalies]
    top_k_anomalies = int(dataset.labels[top_k].sum())
    return Fig10Result(
        dataset=dataset_name,
        sorted_scores=tuple(float(s) for s in profile["sorted_scores"]),
        sorted_is_anomaly=tuple(bool(b) for b in profile["sorted_is_anomaly"]),
        anomaly_mean_score=anomaly_mean,
        normal_mean_score=normal_mean,
        top_k_anomalies=top_k_anomalies,
        num_anomalies=dataset.num_anomalies,
    )


def format_fig10(result: Fig10Result) -> str:
    """Text summary of the separation plot."""
    headers = ["Quantity", "Value"]
    rows = [
        ("Dataset", result.dataset),
        ("Mean score (anomalies)", f"{result.anomaly_mean_score:.1f}"),
        ("Mean score (normal)", f"{result.normal_mean_score:.1f}"),
        ("Separation ratio", f"{result.separation_ratio:.2f}x"),
        (f"True anomalies in top {result.num_anomalies} scores",
         f"{result.top_k_anomalies} / {result.num_anomalies}"),
        ("Highest score", f"{result.sorted_scores[-1]:.1f}"),
        ("Lowest score", f"{result.sorted_scores[0]:.1f}"),
    ]
    return markdown_table(headers, rows)
