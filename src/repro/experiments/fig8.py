"""Fig. 8: Quorum vs the supervised QNN on recall, precision, F1, and accuracy.

The flagship comparison.  For every dataset the QNN is trained on a labeled split
and evaluated on the full set, while Quorum (never seeing labels) scores the full
set and flags as many samples as there are anomalies.  The paper's headline claims
to check: Quorum's F1 beats the QNN's on every dataset (23% higher on average in
the paper), the QNN is precision-heavy / recall-poor, and the QNN collapses to
zero detections on the letter dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.data.registry import DATASET_SPECS, load_dataset
from repro.experiments.common import (
    DEFAULT_DATASETS,
    ExperimentSettings,
    evaluate_quorum_scores,
    markdown_table,
    run_qnn_baseline,
    run_quorum,
)
from repro.metrics.classification import ClassificationReport

__all__ = ["Fig8Entry", "Fig8Result", "run_fig8", "format_fig8"]


@dataclass(frozen=True)
class Fig8Entry:
    """Metrics of both detectors on one dataset."""

    dataset: str
    quorum: ClassificationReport
    qnn: ClassificationReport

    @property
    def f1_advantage(self) -> float:
        """Quorum F1 minus QNN F1."""
        return self.quorum.f1 - self.qnn.f1


@dataclass(frozen=True)
class Fig8Result:
    """All Fig. 8 bars."""

    entries: Tuple[Fig8Entry, ...]

    def entry_for(self, dataset: str) -> Fig8Entry:
        """Entry for one dataset name."""
        for entry in self.entries:
            if entry.dataset == dataset:
                return entry
        raise KeyError(dataset)

    @property
    def average_f1_advantage(self) -> float:
        """Mean Quorum-minus-QNN F1 gap across datasets."""
        return sum(entry.f1_advantage for entry in self.entries) / len(self.entries)

    def quorum_wins_everywhere(self) -> bool:
        """True when Quorum's F1 is at least the QNN's on every dataset."""
        return all(entry.quorum.f1 >= entry.qnn.f1 for entry in self.entries)


def run_fig8(settings: Optional[ExperimentSettings] = None,
             dataset_names: Optional[Sequence[str]] = None) -> Fig8Result:
    """Run the flagship comparison on the requested datasets."""
    settings = settings or ExperimentSettings()
    names = tuple(dataset_names) if dataset_names else DEFAULT_DATASETS
    entries = []
    for name in names:
        dataset = load_dataset(name, seed=settings.seed)
        scores, _ = run_quorum(dataset, settings.quorum_config(name))
        quorum_report = evaluate_quorum_scores(dataset, scores)
        _, qnn_report = run_qnn_baseline(dataset, settings)
        entries.append(Fig8Entry(dataset=name, quorum=quorum_report,
                                 qnn=qnn_report))
    return Fig8Result(entries=tuple(entries))


def format_fig8(result: Fig8Result) -> str:
    """Markdown table with the four metrics for both detectors per dataset."""
    headers = ["Dataset", "Method", "Recall", "Precision", "F1", "Accuracy"]
    rows = []
    for entry in result.entries:
        display = DATASET_SPECS[entry.dataset].display_name
        for method, report in (("Quorum", entry.quorum), ("QNN", entry.qnn)):
            rows.append((display, method, f"{report.recall:.3f}",
                         f"{report.precision:.3f}", f"{report.f1:.3f}",
                         f"{report.accuracy:.3f}"))
    table = markdown_table(headers, rows)
    summary = ("\nAverage F1 advantage (Quorum - QNN): "
               f"{result.average_f1_advantage:.3f}; "
               f"Quorum wins everywhere: {result.quorum_wins_everywhere()}")
    return table + summary
