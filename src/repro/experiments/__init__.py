"""Experiment runners regenerating every table and figure of the paper's evaluation.

* Table I  -- :mod:`repro.experiments.table1` (dataset inventory + bucket sizing).
* Fig. 8   -- :mod:`repro.experiments.fig8` (Quorum vs QNN, four metrics, four datasets).
* Fig. 9   -- :mod:`repro.experiments.fig9` (detection-rate curves, noiseless vs noisy).
* Fig. 10  -- :mod:`repro.experiments.fig10` (score-separation profile, breast cancer).
* Table II -- :mod:`repro.experiments.table2` (bucket-size ablation).

Each runner returns a plain-dataclass result with a ``format_*`` helper that prints
the same rows/series the paper reports; the ``benchmarks/`` directory wraps these
runners in pytest-benchmark harnesses.
"""

from repro.experiments.common import ExperimentSettings, run_qnn_baseline, run_quorum
from repro.experiments.table1 import Table1Result, run_table1, format_table1
from repro.experiments.fig8 import Fig8Result, run_fig8, format_fig8
from repro.experiments.fig9 import Fig9Result, run_fig9, format_fig9
from repro.experiments.fig10 import Fig10Result, run_fig10, format_fig10
from repro.experiments.table2 import Table2Result, run_table2, format_table2
from repro.experiments.report import EvaluationReport, render_report, run_full_evaluation
from repro.experiments.ablations import (
    BaselineComparisonResult,
    EnsembleScalingResult,
    RegisterSizeResult,
    StabilityResult,
    run_baseline_comparison,
    run_ensemble_scaling,
    run_register_size_ablation,
    run_stability_analysis,
)

__all__ = [
    "EvaluationReport",
    "render_report",
    "run_full_evaluation",
    "EnsembleScalingResult",
    "run_ensemble_scaling",
    "RegisterSizeResult",
    "run_register_size_ablation",
    "BaselineComparisonResult",
    "run_baseline_comparison",
    "StabilityResult",
    "run_stability_analysis",
    "ExperimentSettings",
    "run_quorum",
    "run_qnn_baseline",
    "Table1Result",
    "run_table1",
    "format_table1",
    "Fig8Result",
    "run_fig8",
    "format_fig8",
    "Fig9Result",
    "run_fig9",
    "format_fig9",
    "Fig10Result",
    "run_fig10",
    "format_fig10",
    "Table2Result",
    "run_table2",
    "format_table2",
]
