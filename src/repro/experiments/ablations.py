"""Ablation studies backing the design choices called out in DESIGN.md §7.

These are library-level runners (the ``benchmarks/test_ablation_*.py`` harnesses
wrap them) covering:

* ensemble-size and shot-count scaling (the paper's "benefits diminishing" remark),
* compression-level sweep vs single levels (Fig. 6's multi-level design),
* encoding register size (Section IV-F's scalability discussion: 3-qubit vs
  4-qubit encodings),
* Quorum vs the classical unsupervised baselines (extended comparison beyond the
  paper's QNN-only Fig. 8),
* ranking stability across ensemble growth and across independent seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence


from repro.baselines import (
    AutoencoderDetector,
    HBOSDetector,
    IsolationForestDetector,
    KMeansDetector,
    LocalOutlierFactorDetector,
    PCAReconstructionDetector,
)
from repro.core.detector import QuorumDetector
from repro.data.registry import load_dataset
from repro.experiments.common import ExperimentSettings, evaluate_quorum_scores, run_quorum
from repro.metrics.classification import evaluate_top_k
from repro.metrics.stability import ranking_stability_curve, score_agreement

__all__ = [
    "EnsembleScalingResult",
    "run_ensemble_scaling",
    "RegisterSizeResult",
    "run_register_size_ablation",
    "BaselineComparisonResult",
    "run_baseline_comparison",
    "StabilityResult",
    "run_stability_analysis",
]


# --------------------------------------------------------------------- ensembles
@dataclass(frozen=True)
class EnsembleScalingResult:
    """F1 as a function of ensemble size and of shot count."""

    dataset: str
    f1_by_ensemble_size: Dict[int, float]
    f1_by_shots: Dict[Optional[int], float]

    def diminishing_returns(self) -> bool:
        """True when the largest ensemble is no worse than the smallest."""
        sizes = sorted(self.f1_by_ensemble_size)
        return self.f1_by_ensemble_size[sizes[-1]] >= self.f1_by_ensemble_size[sizes[0]] - 1e-9


def run_ensemble_scaling(settings: Optional[ExperimentSettings] = None,
                         dataset_name: str = "breast_cancer",
                         ensemble_sizes: Sequence[int] = (5, 20, 60),
                         shot_counts: Sequence[Optional[int]] = (256, 4096, None),
                         shots_ensemble: int = 30) -> EnsembleScalingResult:
    """Sweep ensemble size and shot count on one dataset."""
    settings = settings or ExperimentSettings()
    dataset = load_dataset(dataset_name, seed=settings.seed)
    f1_by_ensemble: Dict[int, float] = {}
    for size in ensemble_sizes:
        config = settings.quorum_config(dataset_name, ensemble_groups=int(size))
        scores, _ = run_quorum(dataset, config)
        f1_by_ensemble[int(size)] = evaluate_quorum_scores(dataset, scores).f1
    f1_by_shots: Dict[Optional[int], float] = {}
    for shots in shot_counts:
        config = settings.quorum_config(dataset_name, ensemble_groups=shots_ensemble,
                                        shots=shots)
        scores, _ = run_quorum(dataset, config)
        f1_by_shots[shots] = evaluate_quorum_scores(dataset, scores).f1
    return EnsembleScalingResult(dataset=dataset_name,
                                 f1_by_ensemble_size=f1_by_ensemble,
                                 f1_by_shots=f1_by_shots)


# ----------------------------------------------------------------- register size
@dataclass(frozen=True)
class RegisterSizeResult:
    """Detection quality as the encoding register grows (Section IV-F)."""

    dataset: str
    f1_by_num_qubits: Dict[int, float]
    features_per_circuit: Dict[int, int]
    circuit_qubits: Dict[int, int]


def run_register_size_ablation(settings: Optional[ExperimentSettings] = None,
                               dataset_name: str = "letter",
                               register_sizes: Sequence[int] = (2, 3, 4)
                               ) -> RegisterSizeResult:
    """Compare 2-, 3-, and 4-qubit encodings on one dataset.

    Larger registers fit more features per circuit (2^n - 1) and add more
    compression levels ("moments"), at the cost of wider circuits -- exactly the
    trade-off the paper's scalability section describes.
    """
    settings = settings or ExperimentSettings()
    dataset = load_dataset(dataset_name, seed=settings.seed)
    f1_by_size: Dict[int, float] = {}
    features: Dict[int, int] = {}
    widths: Dict[int, int] = {}
    for num_qubits in register_sizes:
        config = settings.quorum_config(dataset_name, num_qubits=int(num_qubits))
        scores, detector = run_quorum(dataset, config)
        f1_by_size[int(num_qubits)] = evaluate_quorum_scores(dataset, scores).f1
        features[int(num_qubits)] = detector.config.features_per_circuit
        widths[int(num_qubits)] = detector.config.total_circuit_qubits
    return RegisterSizeResult(dataset=dataset_name, f1_by_num_qubits=f1_by_size,
                              features_per_circuit=features, circuit_qubits=widths)


# ------------------------------------------------------------------- baselines
@dataclass(frozen=True)
class BaselineComparisonResult:
    """F1 of Quorum and every classical baseline per dataset."""

    f1_scores: Dict[str, Dict[str, float]]

    def quorum_rank(self, dataset: str) -> int:
        """1-based rank of Quorum among all methods on ``dataset`` (1 = best)."""
        scores = self.f1_scores[dataset]
        ordered = sorted(scores.values(), reverse=True)
        return ordered.index(scores["Quorum"]) + 1


def _classical_baselines(seed: int) -> Dict[str, object]:
    return {
        "Isolation Forest": IsolationForestDetector(num_trees=100, seed=seed),
        "Local Outlier Factor": LocalOutlierFactorDetector(num_neighbors=20),
        "HBOS": HBOSDetector(),
        "k-means": KMeansDetector(num_clusters=8, seed=seed),
        "PCA": PCAReconstructionDetector(num_components=3),
        "Autoencoder": AutoencoderDetector(epochs=120, seed=seed),
    }


def run_baseline_comparison(settings: Optional[ExperimentSettings] = None,
                            dataset_names: Sequence[str] = ("breast_cancer",
                                                            "power_plant")
                            ) -> BaselineComparisonResult:
    """Extended comparison: Quorum vs the classical unsupervised detectors."""
    settings = settings or ExperimentSettings()
    all_scores: Dict[str, Dict[str, float]] = {}
    for name in dataset_names:
        dataset = load_dataset(name, seed=settings.seed)
        per_method: Dict[str, float] = {}
        scores, _ = run_quorum(dataset, settings.quorum_config(name))
        per_method["Quorum"] = evaluate_quorum_scores(dataset, scores).f1
        for method_name, detector in _classical_baselines(settings.seed).items():
            baseline_scores = detector.fit_scores(dataset.data)
            report = evaluate_top_k(baseline_scores, dataset.labels,
                                    dataset.num_anomalies)
            per_method[method_name] = report.f1
        all_scores[name] = per_method
    return BaselineComparisonResult(f1_scores=all_scores)


# -------------------------------------------------------------------- stability
@dataclass(frozen=True)
class StabilityResult:
    """Ranking-stability diagnostics of the ensemble."""

    dataset: str
    stability_curve: Dict[int, float]
    cross_seed_agreement: Dict[str, float]

    def converged(self, threshold: float = 0.9) -> bool:
        """True when the final checkpoint correlates with the full ranking."""
        final = max(self.stability_curve)
        return self.stability_curve[final] >= threshold


def run_stability_analysis(settings: Optional[ExperimentSettings] = None,
                           dataset_name: str = "power_plant",
                           checkpoints: Sequence[int] = (5, 15, 30),
                           num_seeds: int = 3) -> StabilityResult:
    """Measure how quickly the ranking stabilizes and how well seeds agree."""
    settings = settings or ExperimentSettings()
    dataset = load_dataset(dataset_name, seed=settings.seed)
    max_members = max(checkpoints)
    config = settings.quorum_config(dataset_name, ensemble_groups=max_members)
    detector = QuorumDetector(config)
    detector.fit(dataset)
    deviations = [result.deviations for result in detector.member_results()]
    curve = ranking_stability_curve(deviations, detector.anomaly_scores(),
                                    checkpoints)

    score_vectors = []
    for offset in range(num_seeds):
        seeded = settings.quorum_config(
            dataset_name,
            ensemble_groups=min(15, max_members),
            seed=settings.seed + 1000 + offset,
        )
        scores, _ = run_quorum(dataset, seeded)
        score_vectors.append(scores)
    agreement = score_agreement(score_vectors, k=dataset.num_anomalies)
    return StabilityResult(dataset=dataset_name, stability_curve=curve,
                           cross_seed_agreement=agreement)
