"""Table I: dataset inventory and bucket sizing.

Reproduces the paper's Table I rows (samples, anomalies, features, target
probability of at least one anomaly per bucket) and additionally reports the
bucket size Quorum derives from that target and the probability it actually
achieves -- the quantities the bucketing machinery is responsible for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.bucketing import bucket_size_for_probability, probability_of_anomalous_bucket
from repro.data.registry import DATASET_SPECS, load_dataset
from repro.experiments.common import DEFAULT_DATASETS, markdown_table

__all__ = ["Table1Row", "Table1Result", "run_table1", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One dataset row of Table I plus the derived bucket size."""

    dataset: str
    samples: int
    anomalies: int
    features: int
    target_probability: float
    bucket_size: int
    achieved_probability: float


@dataclass(frozen=True)
class Table1Result:
    """All Table I rows."""

    rows: Tuple[Table1Row, ...]

    def row_for(self, dataset: str) -> Table1Row:
        """Row for one dataset name."""
        for row in self.rows:
            if row.dataset == dataset:
                return row
        raise KeyError(dataset)


def run_table1(dataset_names: Optional[Sequence[str]] = None,
               seed: int = 0) -> Table1Result:
    """Generate every dataset and compute its Table I row."""
    names = tuple(dataset_names) if dataset_names else DEFAULT_DATASETS
    rows: List[Table1Row] = []
    for name in names:
        spec = DATASET_SPECS[name]
        dataset = load_dataset(name, seed=seed)
        bucket_size = bucket_size_for_probability(
            dataset.num_samples, dataset.anomaly_fraction, spec.bucket_probability
        )
        achieved = probability_of_anomalous_bucket(
            dataset.num_samples, dataset.num_anomalies, bucket_size
        )
        rows.append(Table1Row(
            dataset=name,
            samples=dataset.num_samples,
            anomalies=dataset.num_anomalies,
            features=dataset.num_features,
            target_probability=spec.bucket_probability,
            bucket_size=bucket_size,
            achieved_probability=round(achieved, 3),
        ))
    return Table1Result(rows=tuple(rows))


def format_table1(result: Table1Result) -> str:
    """Markdown rendering in the paper's column order."""
    headers = ["Dataset", "Samples", "Anomalies", "Features",
               "Pr[Anomaly in Bucket]", "Bucket size", "Achieved Pr"]
    rows = [
        (DATASET_SPECS[row.dataset].display_name, row.samples, row.anomalies,
         row.features, row.target_probability, row.bucket_size,
         row.achieved_probability)
        for row in result.rows
    ]
    return markdown_table(headers, rows)
