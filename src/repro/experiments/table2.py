"""Table II: F1 scores across bucket-size targets (the bucket ablation).

For each dataset and each target probability ``p`` of at least one anomaly per
bucket, Quorum is rerun with the corresponding bucket size and its F1 (flagging as
many samples as there are anomalies) is recorded.  The paper's qualitative claims
to check: very small buckets (low ``p``) generally degrade F1, and moderate buckets
are often at least as good as the largest ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.data.registry import DATASET_SPECS, load_dataset
from repro.experiments.common import (
    DEFAULT_DATASETS,
    ExperimentSettings,
    evaluate_quorum_scores,
    markdown_table,
    run_quorum,
)

__all__ = ["Table2Result", "run_table2", "format_table2", "PAPER_BUCKET_PROBABILITIES"]

#: The p values of Table II.
PAPER_BUCKET_PROBABILITIES: Tuple[float, ...] = (0.5, 0.6, 0.75, 0.95, 0.98)


@dataclass(frozen=True)
class Table2Result:
    """F1 per dataset per bucket-size target probability."""

    probabilities: Tuple[float, ...]
    f1_scores: Dict[str, Tuple[float, ...]]
    bucket_sizes: Dict[str, Tuple[int, ...]]

    def f1_for(self, dataset: str, probability: float) -> float:
        """F1 of one (dataset, p) cell."""
        index = self.probabilities.index(probability)
        return self.f1_scores[dataset][index]

    def best_probability(self, dataset: str) -> float:
        """The p value with the highest F1 for a dataset."""
        scores = self.f1_scores[dataset]
        return self.probabilities[scores.index(max(scores))]


def run_table2(settings: Optional[ExperimentSettings] = None,
               dataset_names: Optional[Sequence[str]] = None,
               probabilities: Sequence[float] = PAPER_BUCKET_PROBABILITIES
               ) -> Table2Result:
    """Run the bucket-size ablation."""
    settings = settings or ExperimentSettings()
    names = tuple(dataset_names) if dataset_names else DEFAULT_DATASETS
    probabilities = tuple(probabilities)
    f1_scores: Dict[str, Tuple[float, ...]] = {}
    bucket_sizes: Dict[str, Tuple[int, ...]] = {}
    for name in names:
        dataset = load_dataset(name, seed=settings.seed)
        per_dataset_f1 = []
        per_dataset_bucket = []
        for probability in probabilities:
            config = settings.quorum_config(name, bucket_probability=probability)
            scores, detector = run_quorum(dataset, config)
            report = evaluate_quorum_scores(dataset, scores)
            per_dataset_f1.append(round(report.f1, 3))
            per_dataset_bucket.append(int(detector.diagnostics()["bucket_size"]))
        f1_scores[name] = tuple(per_dataset_f1)
        bucket_sizes[name] = tuple(per_dataset_bucket)
    return Table2Result(probabilities=probabilities, f1_scores=f1_scores,
                        bucket_sizes=bucket_sizes)


def format_table2(result: Table2Result) -> str:
    """Markdown table in the paper's layout (datasets x probabilities)."""
    headers = ["Dataset"] + [f"p = {p}" for p in result.probabilities]
    rows = []
    for name, scores in result.f1_scores.items():
        display = DATASET_SPECS[name].display_name if name in DATASET_SPECS else name
        rows.append((display, *(f"{value:.3f}" for value in scores)))
    return markdown_table(headers, rows)
