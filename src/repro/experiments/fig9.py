"""Fig. 9: detection-rate curves, noiseless vs Brisbane-like noisy simulation.

For every dataset, samples are sorted by Quorum's anomaly score and the fraction of
true anomalies captured within the top-x%% of the dataset is plotted against x.
The noiseless curves use the analytic engine; the noisy curves run the full
``2n+1``-qubit circuits through the density-matrix simulator with the Brisbane-like
noise model (gate depolarizing + thermal relaxation + readout error).

The paper's claims to check: steep initial gradients (breast cancer and power plant
reach ~80%+ within the top 10%), pen/letter reach ~60% within the top 20%, and the
noisy curves closely track the noiseless ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.data.registry import DATASET_SPECS, load_dataset
from repro.experiments.common import (
    DEFAULT_DATASETS,
    ExperimentSettings,
    markdown_table,
    run_quorum,
    stratified_subsample,
)
from repro.metrics.detection import DetectionCurve, detection_rate_curve

__all__ = ["Fig9Entry", "Fig9Result", "run_fig9", "format_fig9"]


@dataclass(frozen=True)
class Fig9Entry:
    """Noiseless and (optionally) noisy detection curves for one dataset.

    ``noiseless`` is the full-scale noiseless sweep.  ``noisy`` runs on a
    stratified subsample with a reduced ensemble (density-matrix simulation is
    expensive); ``noiseless_matched`` repeats the noiseless run at exactly that
    reduced scale, so the effect of hardware noise can be isolated from the
    effect of the smaller sweep.
    """

    dataset: str
    noiseless: DetectionCurve
    noisy: Optional[DetectionCurve] = None
    noiseless_matched: Optional[DetectionCurve] = None

    def degradation_at(self, fraction: float) -> Optional[float]:
        """Scale-matched noiseless-minus-noisy detection rate at a fraction."""
        if self.noisy is None:
            return None
        reference = self.noiseless_matched or self.noiseless
        return reference.rate_at(fraction) - self.noisy.rate_at(fraction)


@dataclass(frozen=True)
class Fig9Result:
    """All Fig. 9 curves."""

    entries: Tuple[Fig9Entry, ...]

    def entry_for(self, dataset: str) -> Fig9Entry:
        """Entry for one dataset name."""
        for entry in self.entries:
            if entry.dataset == dataset:
                return entry
        raise KeyError(dataset)


def run_fig9(settings: Optional[ExperimentSettings] = None,
             dataset_names: Optional[Sequence[str]] = None,
             include_noisy: bool = True) -> Fig9Result:
    """Compute the detection-rate curves.

    Noisy runs are drastically more expensive (every sample becomes a full
    density-matrix circuit simulation per ensemble member and compression level),
    so they run on a stratified subsample with a reduced ensemble --
    ``ExperimentSettings.noisy_subsample`` / ``noisy_ensemble_groups`` control the
    scale.
    """
    settings = settings or ExperimentSettings()
    names = tuple(dataset_names) if dataset_names else DEFAULT_DATASETS
    entries = []
    for name in names:
        dataset = load_dataset(name, seed=settings.seed)
        scores, _ = run_quorum(dataset, settings.quorum_config(name))
        noiseless_curve = detection_rate_curve(scores, dataset.labels)

        noisy_curve = None
        matched_curve = None
        if include_noisy:
            noisy_dataset = dataset
            if settings.noisy_subsample is not None:
                noisy_dataset = stratified_subsample(dataset,
                                                     settings.noisy_subsample,
                                                     settings.seed)
            noisy_config = settings.quorum_config(
                name,
                backend="density_matrix",
                noisy=True,
                ensemble_groups=settings.noisy_ensemble_groups,
            )
            noisy_scores, _ = run_quorum(noisy_dataset, noisy_config)
            noisy_curve = detection_rate_curve(noisy_scores, noisy_dataset.labels)
            # Same subsample and ensemble size, but without hardware noise --
            # the honest reference for the noise-resilience claim.
            matched_config = settings.quorum_config(
                name, ensemble_groups=settings.noisy_ensemble_groups,
            )
            matched_scores, _ = run_quorum(noisy_dataset, matched_config)
            matched_curve = detection_rate_curve(matched_scores,
                                                 noisy_dataset.labels)
        entries.append(Fig9Entry(dataset=name, noiseless=noiseless_curve,
                                 noisy=noisy_curve,
                                 noiseless_matched=matched_curve))
    return Fig9Result(entries=tuple(entries))


def format_fig9(result: Fig9Result,
                fractions: Sequence[float] = (0.05, 0.10, 0.20, 0.50)) -> str:
    """Markdown table of detection rates at selected dataset fractions."""
    headers = ["Dataset", "Variant"] + [f"top {int(100 * f)}%" for f in fractions]
    rows = []
    for entry in result.entries:
        display = DATASET_SPECS[entry.dataset].display_name
        rows.append((display, "noiseless",
                     *(f"{entry.noiseless.rate_at(f):.2f}" for f in fractions)))
        if entry.noiseless_matched is not None:
            rows.append((display, "noiseless (matched scale)",
                         *(f"{entry.noiseless_matched.rate_at(f):.2f}"
                           for f in fractions)))
        if entry.noisy is not None:
            rows.append((display, "noisy (Brisbane)",
                         *(f"{entry.noisy.rate_at(f):.2f}" for f in fractions)))
    return markdown_table(headers, rows)
