"""One-shot evaluation report: run every experiment and render a markdown summary.

This is the programmatic counterpart of ``EXPERIMENTS.md``: it runs Table I,
Fig. 8, Fig. 9, Fig. 10, and Table II at the requested scale and assembles their
formatted tables into a single document (optionally written to disk and
accompanied by a machine-readable JSON dump).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.experiments.common import ExperimentSettings
from repro.experiments.fig8 import Fig8Result, format_fig8, run_fig8
from repro.experiments.fig9 import Fig9Result, format_fig9, run_fig9
from repro.experiments.fig10 import Fig10Result, format_fig10, run_fig10
from repro.experiments.table1 import Table1Result, format_table1, run_table1
from repro.experiments.table2 import Table2Result, format_table2, run_table2
from repro.utils.serialization import save_json, to_jsonable

__all__ = ["EvaluationReport", "run_full_evaluation", "render_report"]


@dataclass(frozen=True)
class EvaluationReport:
    """Results of a full evaluation sweep."""

    settings: ExperimentSettings
    table1: Table1Result
    fig8: Fig8Result
    fig9: Fig9Result
    fig10: Fig10Result
    table2: Table2Result

    def to_jsonable(self) -> dict:
        """Machine-readable form of every result."""
        return {
            "settings": to_jsonable(self.settings),
            "table1": to_jsonable(self.table1),
            "fig8": to_jsonable(self.fig8),
            "fig9": to_jsonable(self.fig9),
            "fig10": to_jsonable(self.fig10),
            "table2": to_jsonable(self.table2),
        }


def run_full_evaluation(settings: Optional[ExperimentSettings] = None,
                        include_noisy: bool = True) -> EvaluationReport:
    """Run every experiment runner with shared settings."""
    settings = settings or ExperimentSettings()
    return EvaluationReport(
        settings=settings,
        table1=run_table1(seed=settings.seed),
        fig8=run_fig8(settings),
        fig9=run_fig9(settings, include_noisy=include_noisy),
        fig10=run_fig10(settings),
        table2=run_table2(settings),
    )


def render_report(report: EvaluationReport) -> str:
    """Markdown document covering every table and figure."""
    settings = report.settings
    header = (
        "# Quorum reproduction — evaluation report\n\n"
        f"Scale: {settings.ensemble_groups} ensemble members, "
        f"shots = {settings.shots}, seed = {settings.seed}; noisy runs use "
        f"{settings.noisy_ensemble_groups} members on a stratified subsample of "
        f"{settings.noisy_subsample} samples.\n"
    )
    sections = [
        header,
        "## Table I — datasets and bucket sizing\n\n" + format_table1(report.table1),
        "## Fig. 8 — Quorum vs QNN\n\n" + format_fig8(report.fig8),
        "## Fig. 9 — detection-rate curves (noiseless vs noisy)\n\n"
        + format_fig9(report.fig9),
        "## Fig. 10 — score separation (breast cancer)\n\n"
        + format_fig10(report.fig10),
        "## Table II — bucket-size ablation (F1)\n\n" + format_table2(report.table2),
    ]
    return "\n\n".join(sections) + "\n"


def write_report(report: EvaluationReport, markdown_path: Union[str, Path],
                 json_path: Optional[Union[str, Path]] = None) -> Path:
    """Write the rendered report (and optionally its JSON dump) to disk."""
    markdown_path = Path(markdown_path)
    markdown_path.parent.mkdir(parents=True, exist_ok=True)
    markdown_path.write_text(render_report(report), encoding="utf-8")
    if json_path is not None:
        save_json(report.to_jsonable(), json_path)
    return markdown_path
