"""Shared plumbing for the experiment runners.

The paper runs 1,000 ensemble members at 4,096 shots per circuit (over 100,000
circuit executions per dataset).  The runners here default to a scaled-down sweep
that preserves the qualitative results while finishing in minutes on a laptop; the
``ExperimentSettings`` dataclass makes the full-scale run a one-liner.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.qnn import QNNClassifier, QNNConfig
from repro.core.config import QuorumConfig
from repro.core.detector import QuorumDetector
from repro.data.dataset import Dataset
from repro.data.registry import DATASET_SPECS
from repro.metrics.classification import ClassificationReport, evaluate_flags, evaluate_top_k

__all__ = [
    "ExperimentSettings",
    "DEFAULT_DATASETS",
    "run_quorum",
    "run_qnn_baseline",
    "markdown_table",
]

DEFAULT_DATASETS: Tuple[str, ...] = ("breast_cancer", "pen_global", "letter",
                                     "power_plant")


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale knobs shared by all experiment runners.

    Attributes
    ----------
    ensemble_groups:
        Ensemble members per Quorum run (paper: 1,000).
    shots:
        Shots per circuit (paper: 4,096).
    seed:
        Master seed for dataset generation and detector randomness.
    noisy_ensemble_groups:
        Ensemble members for noisy (density-matrix) runs, which are far more
        expensive per circuit.
    noisy_subsample:
        Number of samples drawn (stratified) for noisy runs; ``None`` uses the
        whole dataset.
    qnn_epochs:
        Training epochs of the QNN baseline.
    qnn_train_fraction:
        Fraction of the dataset (with labels) given to the supervised QNN.
    executor:
        Executor strategy for the ensemble members (``auto``/``serial``/
        ``threads``/``processes``); defaults to the ``QUORUM_EXECUTOR``
        environment variable so the benchmark harness can sweep strategies
        without editing every experiment module.
    n_jobs:
        Ensemble workers (defaults to ``QUORUM_N_JOBS``; 1 = serial).
    compile_circuits:
        Execute compiled operator programs (default) or the gate-by-gate
        interpreted reference paths; defaults to the ``QUORUM_COMPILE``
        environment variable (set it to ``0`` to interpret).
    fused_members:
        Cross-member fused execution (``True``/``False``/``None`` = follow
        the executor choice); defaults to the ``QUORUM_FUSED_MEMBERS``
        environment variable (``1`` forces fusion on, ``0`` off, unset
        leaves it to the executor), mirroring the other execution knobs so
        the benchmark harness and CI can sweep it without editing modules.
    """

    ensemble_groups: int = 60
    shots: Optional[int] = 4096
    seed: int = 11
    noisy_ensemble_groups: int = 6
    noisy_subsample: Optional[int] = 140
    qnn_epochs: int = 60
    qnn_train_fraction: float = 0.6
    executor: str = field(
        default_factory=lambda: os.environ.get("QUORUM_EXECUTOR", "auto"))
    n_jobs: int = field(
        default_factory=lambda: int(os.environ.get("QUORUM_N_JOBS", "1")))
    compile_circuits: bool = field(
        default_factory=lambda: os.environ.get("QUORUM_COMPILE", "1") != "0")
    fused_members: Optional[bool] = field(
        default_factory=lambda: (
            None if os.environ.get("QUORUM_FUSED_MEMBERS") in (None, "")
            else os.environ.get("QUORUM_FUSED_MEMBERS") != "0"
        ))

    def quorum_config(self, dataset_name: str, **overrides: object) -> QuorumConfig:
        """Base Quorum config for ``dataset_name`` (Table I bucket probability)."""
        spec = DATASET_SPECS[dataset_name]
        base = QuorumConfig(
            ensemble_groups=self.ensemble_groups,
            shots=self.shots,
            bucket_probability=spec.bucket_probability,
            anomaly_fraction_estimate=spec.anomalies / spec.samples,
            seed=self.seed,
            executor=self.executor,
            n_jobs=self.n_jobs,
            compile_circuits=self.compile_circuits,
            fused_members=self.fused_members,
        )
        return base.with_overrides(**overrides) if overrides else base


def run_quorum(dataset: Dataset, config: QuorumConfig
               ) -> Tuple[np.ndarray, QuorumDetector]:
    """Fit a QuorumDetector and return (scores, detector)."""
    detector = QuorumDetector(config)
    detector.fit(dataset)
    return detector.anomaly_scores(), detector


def run_qnn_baseline(dataset: Dataset, settings: ExperimentSettings
                     ) -> Tuple[np.ndarray, ClassificationReport]:
    """Train the supervised QNN on a labeled split and evaluate on the full set.

    Returns the binary predictions over the whole dataset and the resulting
    classification report (the QNN bars of Fig. 8).
    """
    rng = np.random.default_rng(settings.seed)
    order = rng.permutation(dataset.num_samples)
    cut = int(settings.qnn_train_fraction * dataset.num_samples)
    train_indices = order[:cut]
    # Guarantee the training split holds at least one anomaly (a supervised
    # baseline cannot be trained on a single class).
    if dataset.labels[train_indices].sum() == 0:
        anomaly_index = int(dataset.anomaly_indices[0])
        train_indices = np.append(train_indices, anomaly_index)
    classifier = QNNClassifier(QNNConfig(epochs=settings.qnn_epochs,
                                         seed=settings.seed))
    classifier.fit(dataset.data[train_indices], dataset.labels[train_indices])
    predictions = classifier.predict(dataset.data)
    report = evaluate_flags(dataset.labels, predictions)
    return predictions, report


def evaluate_quorum_scores(dataset: Dataset, scores: np.ndarray
                           ) -> ClassificationReport:
    """Fig. 8 protocol for Quorum: flag as many samples as there are anomalies."""
    return evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)


def stratified_subsample(dataset: Dataset, size: int, seed: int) -> Dataset:
    """A label-stratified subsample (keeps the dataset's anomaly fraction)."""
    if size >= dataset.num_samples:
        return dataset
    rng = np.random.default_rng(seed)
    anomaly_indices = dataset.anomaly_indices
    normal_indices = np.flatnonzero(dataset.labels == 0)
    num_anomalies = max(1, int(round(dataset.anomaly_fraction * size)))
    num_anomalies = min(num_anomalies, anomaly_indices.shape[0])
    chosen_anomalies = rng.choice(anomaly_indices, size=num_anomalies, replace=False)
    chosen_normals = rng.choice(normal_indices, size=size - num_anomalies,
                                replace=False)
    chosen = np.concatenate([chosen_anomalies, chosen_normals])
    rng.shuffle(chosen)
    return dataset.subset(chosen, name_suffix=f"sub{size}")


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table (used by the format_* helpers)."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)
