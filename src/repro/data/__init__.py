"""Datasets, preprocessing, and anomaly injection.

The paper evaluates on four public datasets (Table I).  Network access is not
available in this environment, so :mod:`repro.data.datasets` generates synthetic
surrogates that match Table I's sample/anomaly/feature counts and the qualitative
separability ordering reported in the evaluation (breast cancer easiest, then power
plant, then pen, then letter).  The power-plant "plausible anomaly" injection
procedure described in the paper is implemented literally in
:mod:`repro.data.anomalies`.
"""

from repro.data.dataset import Dataset
from repro.data.registry import DATASET_SPECS, DatasetSpec, available_datasets, load_dataset
from repro.data.preprocessing import hash_feature, preprocess_records, strip_labels
from repro.data.anomalies import inject_plausible_anomalies

__all__ = [
    "Dataset",
    "DatasetSpec",
    "DATASET_SPECS",
    "available_datasets",
    "load_dataset",
    "hash_feature",
    "preprocess_records",
    "strip_labels",
    "inject_plausible_anomalies",
]
