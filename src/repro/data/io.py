"""CSV import/export for datasets.

Lets users bring their own tabular data into the pipeline (and archive the
synthetic surrogates for inspection) without any dependency beyond the standard
library: one label column, every other column a feature, non-numeric cells hashed
exactly as :mod:`repro.data.preprocessing` does.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.data.dataset import Dataset
from repro.data.preprocessing import hash_feature

__all__ = ["save_dataset_csv", "load_dataset_csv"]


def save_dataset_csv(dataset: Dataset, path: Union[str, Path],
                     label_column: str = "label") -> Path:
    """Write a dataset (features + label column) to ``path`` as CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    feature_names = dataset.feature_names or [
        f"f{index}" for index in range(dataset.num_features)
    ]
    if label_column in feature_names:
        raise ValueError(f"label column {label_column!r} collides with a feature name")
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(feature_names) + [label_column])
        for row, label in zip(dataset.data, dataset.labels):
            writer.writerow([f"{value:.10g}" for value in row] + [int(label)])
    return path


def load_dataset_csv(path: Union[str, Path], label_column: Optional[str] = "label",
                     name: Optional[str] = None,
                     hash_buckets: int = 10_000) -> Dataset:
    """Read a CSV file into a :class:`Dataset`.

    Parameters
    ----------
    path:
        CSV file with a header row.
    label_column:
        Column holding the binary anomaly label.  ``None`` means the file is
        unlabeled; all labels are set to 0 (the detector does not need them).
    name:
        Dataset name (defaults to the file stem).
    hash_buckets:
        Bucket count used when hashing non-numeric cells.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise ValueError(f"{path} is empty") from exc
        rows = [row for row in reader if row]
    if not rows:
        raise ValueError(f"{path} contains a header but no data rows")

    header = [column.strip() for column in header]
    if label_column is not None and label_column not in header:
        raise ValueError(f"label column {label_column!r} not found in {header}")
    label_index = header.index(label_column) if label_column is not None else None
    feature_names: List[str] = [column for index, column in enumerate(header)
                                if index != label_index]

    data = np.zeros((len(rows), len(feature_names)), dtype=float)
    labels = np.zeros(len(rows), dtype=int)
    for row_index, row in enumerate(rows):
        if len(row) != len(header):
            raise ValueError(
                f"row {row_index + 2} has {len(row)} cells, expected {len(header)}"
            )
        feature_position = 0
        for column_index, cell in enumerate(row):
            if column_index == label_index:
                labels[row_index] = _parse_label(cell)
                continue
            data[row_index, feature_position] = _parse_cell(cell, hash_buckets)
            feature_position += 1
    return Dataset(name=name or path.stem, data=data, labels=labels,
                   feature_names=feature_names,
                   metadata={"source": str(path), "label_column": label_column})


def _parse_cell(cell: str, hash_buckets: int) -> float:
    cell = cell.strip()
    if not cell:
        return 0.0
    try:
        return float(cell)
    except ValueError:
        return hash_feature(cell, hash_buckets)


def _parse_label(cell: str) -> int:
    cell = cell.strip().lower()
    if cell in {"1", "true", "anomaly", "outlier", "o", "yes"}:
        return 1
    if cell in {"", "0", "false", "normal", "n", "no"}:
        return 0
    try:
        return 1 if float(cell) >= 0.5 else 0
    except ValueError:
        return 0
