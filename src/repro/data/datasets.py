"""Synthetic surrogates for the paper's four evaluation datasets (Table I).

The original datasets (Goldstein & Uchida's breast-cancer, pen-global, and letter
benchmarks, plus UCI's combined-cycle power plant) are not redistributable /
downloadable in this offline environment.  Each generator below produces a
deterministic synthetic dataset that matches Table I's sample, anomaly, and feature
counts, and is tuned so that the *relative difficulty ordering* reported in the
paper holds: breast cancer is the most separable, followed by the power plant,
then pen-global, with letter the hardest.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.data.anomalies import inject_plausible_anomalies, scatter_anomalies
from repro.data.dataset import Dataset

__all__ = [
    "make_gaussian_anomaly_dataset",
    "make_breast_cancer_like",
    "make_pen_global_like",
    "make_letter_like",
    "make_power_plant_like",
]


def _random_covariance(dim: int, rng: np.random.Generator,
                       correlation: float = 0.5) -> np.ndarray:
    """A random symmetric positive-definite covariance with tunable correlations."""
    basis = rng.normal(size=(dim, dim))
    covariance = correlation * (basis @ basis.T) / dim + (1.0 - correlation) * np.eye(dim)
    return covariance


def make_gaussian_anomaly_dataset(name: str, num_samples: int, num_anomalies: int,
                                  num_features: int, num_clusters: int,
                                  separation: float, anomaly_spread: float,
                                  seed: Optional[int] = None,
                                  correlation: float = 0.5,
                                  cluster_scale: float = 4.0) -> Dataset:
    """Gaussian-mixture normal data with displaced-Gaussian anomalies.

    Parameters
    ----------
    name:
        Dataset name.
    num_samples:
        Total rows including anomalies.
    num_anomalies:
        Number of anomalous rows.
    num_features:
        Dimensionality.
    num_clusters:
        Number of normal-data Gaussian clusters.
    separation:
        Distance (in units of the average cluster scale) between an anomaly's
        center and its source cluster's center.  Larger = easier detection.
    anomaly_spread:
        Standard-deviation multiplier of the anomaly distribution relative to the
        normal clusters (spread-out anomalies are harder to isolate statistically).
    seed:
        RNG seed (datasets are deterministic given the seed).
    correlation:
        Strength of inter-feature correlations within each cluster.
    cluster_scale:
        Distance between normal cluster centers.
    """
    if num_anomalies >= num_samples:
        raise ValueError("num_anomalies must be smaller than num_samples")
    rng = np.random.default_rng(seed)
    num_normal = num_samples - num_anomalies

    centers = rng.normal(scale=cluster_scale, size=(num_clusters, num_features))
    covariances = [_random_covariance(num_features, rng, correlation)
                   for _ in range(num_clusters)]

    assignments = rng.integers(0, num_clusters, size=num_normal)
    normal_rows = np.empty((num_normal, num_features))
    for cluster in range(num_clusters):
        mask = assignments == cluster
        count = int(mask.sum())
        if count == 0:
            continue
        normal_rows[mask] = rng.multivariate_normal(
            centers[cluster], covariances[cluster], size=count
        )

    # Anomalies: displaced along a random direction from a randomly chosen cluster,
    # with their own (wider or narrower) spread.
    anomaly_rows = np.empty((num_anomalies, num_features))
    typical_scale = float(np.mean([np.sqrt(np.trace(c) / num_features)
                                   for c in covariances]))
    for row in range(num_anomalies):
        cluster = int(rng.integers(0, num_clusters))
        direction = rng.normal(size=num_features)
        direction /= np.linalg.norm(direction)
        center = centers[cluster] + separation * typical_scale * direction
        anomaly_rows[row] = center + anomaly_spread * typical_scale * rng.normal(
            size=num_features
        )

    data = np.vstack([normal_rows, anomaly_rows])
    labels = np.concatenate([np.zeros(num_normal, dtype=int),
                             np.ones(num_anomalies, dtype=int)])
    data, labels = scatter_anomalies(data, labels, rng)
    return Dataset(
        name=name,
        data=data,
        labels=labels,
        feature_names=[f"f{index}" for index in range(num_features)],
        metadata={
            "generator": "gaussian_mixture",
            "num_clusters": num_clusters,
            "separation": separation,
            "anomaly_spread": anomaly_spread,
            "seed": seed,
        },
    )


def make_breast_cancer_like(seed: Optional[int] = 0) -> Dataset:
    """Surrogate for the breast-cancer benchmark: 367 samples, 10 anomalies, 30 features.

    The real dataset's anomalies (malignant cases kept after downsampling) are well
    separated from the benign majority, so this surrogate uses a large displacement
    and a tight anomaly spread.
    """
    return make_gaussian_anomaly_dataset(
        name="breast_cancer",
        num_samples=367,
        num_anomalies=10,
        num_features=30,
        num_clusters=1,
        separation=4.5,
        anomaly_spread=2.5,
        seed=seed,
        correlation=0.6,
        cluster_scale=3.0,
    )


def make_pen_global_like(seed: Optional[int] = 0) -> Dataset:
    """Surrogate for pen-global: 809 samples, 90 anomalies, 16 features.

    Pen-global has a comparatively large anomaly fraction (~11%) of globally
    scattered outliers that partially overlap the normal digit clusters.
    """
    return make_gaussian_anomaly_dataset(
        name="pen_global",
        num_samples=809,
        num_anomalies=90,
        num_features=16,
        num_clusters=5,
        separation=2.6,
        anomaly_spread=2.0,
        seed=seed,
        correlation=0.5,
        cluster_scale=2.5,
    )


def make_letter_like(seed: Optional[int] = 0) -> Dataset:
    """Surrogate for the letter benchmark: 533 samples, 33 anomalies, 32 features.

    Letter is the hardest of the four: anomalies are letters from other classes, so
    they sit close to (and within the spread of) the normal clusters.
    """
    return make_gaussian_anomaly_dataset(
        name="letter",
        num_samples=533,
        num_anomalies=33,
        num_features=32,
        num_clusters=8,
        separation=1.8,
        anomaly_spread=1.4,
        seed=seed,
        correlation=0.4,
        cluster_scale=3.0,
    )


def _power_plant_normals(num_rows: int, rng: np.random.Generator) -> np.ndarray:
    """Physically motivated combined-cycle power-plant operating points.

    Features follow the UCI CCPP schema: ambient temperature (AT, deg C), exhaust
    vacuum (V, cm Hg), ambient pressure (AP, millibar), relative humidity (RH, %),
    and net electrical output (PE, MW).  PE is generated from the well-known
    near-linear dependence on AT and V plus noise, so the features are correlated
    the way the real plant's are.
    """
    ambient_temp = rng.uniform(2.0, 36.0, size=num_rows)
    vacuum = 30.0 + 1.2 * ambient_temp + rng.normal(scale=4.0, size=num_rows)
    vacuum = np.clip(vacuum, 25.0, 82.0)
    pressure = rng.normal(loc=1013.0, scale=5.5, size=num_rows)
    humidity = np.clip(95.0 - 0.8 * ambient_temp + rng.normal(scale=8.0,
                                                              size=num_rows),
                       25.0, 100.0)
    output = (495.0 - 1.8 * ambient_temp - 0.3 * (vacuum - 40.0)
              + 0.06 * (pressure - 1013.0) + rng.normal(scale=3.5, size=num_rows))
    return np.column_stack([ambient_temp, vacuum, pressure, humidity, output])


def make_power_plant_like(seed: Optional[int] = 0) -> Dataset:
    """Surrogate for the UCI combined-cycle power plant set with injected anomalies.

    970 normal operating points are generated from the physical model above and 30
    "plausible" anomalies are injected near the edges of each feature's plausible
    range, exactly as the paper describes doing for the real dataset.
    """
    rng = np.random.default_rng(seed)
    normals = _power_plant_normals(970, rng)
    plausible_ranges: List[Tuple[float, float]] = [
        (-10.0, 45.0),     # ambient temperature, deg C
        (20.0, 90.0),      # exhaust vacuum, cm Hg
        (990.0, 1040.0),   # ambient pressure, millibar
        (15.0, 100.0),     # relative humidity, %
        (400.0, 520.0),    # net output, MW
    ]
    data, labels = inject_plausible_anomalies(
        normals, num_anomalies=30, feature_ranges=plausible_ranges, rng=rng,
        edge_fraction=0.06,
    )
    data, labels = scatter_anomalies(data, labels, rng)
    return Dataset(
        name="power_plant",
        data=data,
        labels=labels,
        feature_names=["ambient_temp", "vacuum", "pressure", "humidity", "output"],
        metadata={"generator": "power_plant_physical", "seed": seed,
                  "plausible_ranges": plausible_ranges},
    )
