"""Dataset registry mirroring Table I of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.data.dataset import Dataset
from repro.data import datasets as generators

__all__ = ["DatasetSpec", "DATASET_SPECS", "available_datasets", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table I.

    Attributes
    ----------
    name:
        Registry key.
    display_name:
        Name as printed in the paper.
    samples, anomalies, features:
        Dataset dimensions from Table I.
    bucket_probability:
        The paper's per-dataset target probability of at least one anomaly per
        bucket (Table I, right-most column).
    """

    name: str
    display_name: str
    samples: int
    anomalies: int
    features: int
    bucket_probability: float


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "breast_cancer": DatasetSpec(
        name="breast_cancer", display_name="Breast Cancer",
        samples=367, anomalies=10, features=30, bucket_probability=0.75,
    ),
    "pen_global": DatasetSpec(
        name="pen_global", display_name="Pen-Global",
        samples=809, anomalies=90, features=16, bucket_probability=0.6,
    ),
    "letter": DatasetSpec(
        name="letter", display_name="Letter",
        samples=533, anomalies=33, features=32, bucket_probability=0.95,
    ),
    "power_plant": DatasetSpec(
        name="power_plant", display_name="Power Plant",
        samples=1000, anomalies=30, features=5, bucket_probability=0.75,
    ),
}

_GENERATORS: Dict[str, Callable[[Optional[int]], Dataset]] = {
    "breast_cancer": generators.make_breast_cancer_like,
    "pen_global": generators.make_pen_global_like,
    "letter": generators.make_letter_like,
    "power_plant": generators.make_power_plant_like,
}


def available_datasets() -> List[str]:
    """Names accepted by :func:`load_dataset`, in Table I order."""
    return list(DATASET_SPECS)


def load_dataset(name: str, seed: Optional[int] = 0) -> Dataset:
    """Load (generate) one of the four evaluation datasets by name.

    The returned dataset matches the corresponding :class:`DatasetSpec` exactly in
    sample, anomaly, and feature counts; generation is deterministic in ``seed``.
    """
    key = name.strip().lower().replace("-", "_").replace(" ", "_")
    if key not in _GENERATORS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    dataset = _GENERATORS[key](seed)
    spec = DATASET_SPECS[key]
    if dataset.num_samples != spec.samples or dataset.num_features != spec.features:
        raise RuntimeError(
            f"generator for {key} produced a dataset inconsistent with Table I"
        )
    return dataset
