"""Dataset preprocessing (Section IV-A): hashing, label stripping, validation.

The paper's pipeline "transform[s] all non-numeric features into float values
(e.g., via hashing), remov[es] any label data ... and perform[s] a range-based
normalization".  Normalization lives in :mod:`repro.encoding.normalization`; this
module covers the first two steps for raw record-style inputs.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["hash_feature", "preprocess_records", "strip_labels", "records_to_matrix"]


def hash_feature(value: object, buckets: int = 10_000) -> float:
    """Deterministically map a non-numeric value to a float in ``[0, 1)``.

    Uses a stable (process-independent) blake2 digest so that repeated runs and
    parallel workers agree on the encoding.
    """
    if isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
            value, bool):
        return float(value)
    digest = hashlib.blake2s(str(value).encode("utf-8"), digest_size=8).hexdigest()
    return (int(digest, 16) % buckets) / float(buckets)


def records_to_matrix(records: Sequence[Dict[str, object]],
                      feature_keys: Optional[Sequence[str]] = None,
                      hash_buckets: int = 10_000) -> Tuple[np.ndarray, List[str]]:
    """Convert a list of dict records into a float feature matrix.

    Non-numeric values are hashed with :func:`hash_feature`; missing keys become 0.
    """
    if not records:
        raise ValueError("no records provided")
    if feature_keys is None:
        feature_keys = sorted({key for record in records for key in record})
    feature_keys = list(feature_keys)
    matrix = np.zeros((len(records), len(feature_keys)), dtype=float)
    for row, record in enumerate(records):
        for col, key in enumerate(feature_keys):
            if key not in record or record[key] is None:
                continue
            matrix[row, col] = hash_feature(record[key], hash_buckets)
    return matrix, feature_keys


def strip_labels(records: Iterable[Dict[str, object]],
                 label_key: str) -> Tuple[List[Dict[str, object]], np.ndarray]:
    """Split label values out of record dicts.

    Returns the label-free records plus the binary label vector (anything truthy /
    equal to 1 / equal to ``"anomaly"`` counts as an anomaly).
    """
    cleaned: List[Dict[str, object]] = []
    labels: List[int] = []
    for record in records:
        record = dict(record)
        raw = record.pop(label_key, 0)
        if isinstance(raw, str):
            is_anomaly = raw.strip().lower() in {"1", "true", "anomaly", "outlier", "o"}
        else:
            is_anomaly = bool(raw)
        labels.append(1 if is_anomaly else 0)
        cleaned.append(record)
    return cleaned, np.asarray(labels, dtype=int)


def preprocess_records(records: Sequence[Dict[str, object]], label_key: str,
                       name: str = "records",
                       hash_buckets: int = 10_000) -> Dataset:
    """Full record-level preprocessing: strip labels, hash non-numerics, build a Dataset."""
    cleaned, labels = strip_labels(records, label_key)
    matrix, feature_keys = records_to_matrix(cleaned, hash_buckets=hash_buckets)
    return Dataset(name=name, data=matrix, labels=labels,
                   feature_names=feature_keys,
                   metadata={"hash_buckets": hash_buckets, "label_key": label_key})
