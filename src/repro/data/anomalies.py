"""Anomaly injection utilities.

The paper's power-plant dataset has no native anomaly labels; the authors
"inserted 'plausible' anomalies into the dataset based on ranges of values that are
possible for each feature".  :func:`inject_plausible_anomalies` implements that
procedure: anomalous rows take values near the edges of (slightly widened)
per-feature plausible ranges, so they remain physically believable while sitting in
low-density regions of the data.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["inject_plausible_anomalies", "scatter_anomalies"]


def inject_plausible_anomalies(data: np.ndarray, num_anomalies: int,
                               feature_ranges: Optional[Sequence[Tuple[float, float]]] = None,
                               rng: Optional[np.random.Generator] = None,
                               edge_fraction: float = 0.08,
                               widen: float = 0.15) -> Tuple[np.ndarray, np.ndarray]:
    """Append ``num_anomalies`` plausible-but-extreme rows to ``data``.

    Parameters
    ----------
    data:
        Normal samples, shape (samples, features).
    num_anomalies:
        Number of anomalous rows to append.
    feature_ranges:
        Per-feature (low, high) plausible ranges; inferred from the data (and
        widened by ``widen``) when omitted.
    rng:
        Random generator.
    edge_fraction:
        Each anomalous feature value is drawn uniformly within this fraction of the
        plausible range, measured from one of its ends.
    widen:
        Fractional widening applied to inferred ranges so injected values can sit
        slightly outside the observed data without being physically impossible.

    Returns
    -------
    (data_with_anomalies, labels)
        The stacked matrix and the corresponding binary labels.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("data must be 2-D")
    if num_anomalies < 0:
        raise ValueError("num_anomalies must be non-negative")
    rng = rng or np.random.default_rng()
    num_features = data.shape[1]
    if feature_ranges is None:
        lows = data.min(axis=0)
        highs = data.max(axis=0)
        spans = np.where(highs > lows, highs - lows, 1.0)
        lows = lows - widen * spans
        highs = highs + widen * spans
        feature_ranges = list(zip(lows, highs))
    if len(feature_ranges) != num_features:
        raise ValueError("feature_ranges length must match the feature count")

    anomalies = np.empty((num_anomalies, num_features), dtype=float)
    for row in range(num_anomalies):
        for col, (low, high) in enumerate(feature_ranges):
            span = high - low
            width = edge_fraction * span
            if rng.random() < 0.5:
                anomalies[row, col] = rng.uniform(low, low + width)
            else:
                anomalies[row, col] = rng.uniform(high - width, high)
    stacked = np.vstack([data, anomalies])
    labels = np.concatenate([np.zeros(data.shape[0], dtype=int),
                             np.ones(num_anomalies, dtype=int)])
    return stacked, labels


def scatter_anomalies(data: np.ndarray, labels: np.ndarray,
                      rng: Optional[np.random.Generator] = None
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Shuffle rows so injected anomalies are not clustered at the end."""
    data = np.asarray(data, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if data.shape[0] != labels.shape[0]:
        raise ValueError("data and labels must align")
    rng = rng or np.random.default_rng()
    order = rng.permutation(data.shape[0])
    return data[order], labels[order]
