"""The Dataset container shared by detectors, baselines, and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """A tabular anomaly-detection dataset.

    Attributes
    ----------
    name:
        Human-readable dataset name.
    data:
        Feature matrix of shape ``(num_samples, num_features)``.
    labels:
        Ground-truth anomaly labels (1 = anomaly, 0 = normal).  Labels are used
        only for evaluation; detectors never see them.
    feature_names:
        Optional per-column names.
    metadata:
        Free-form extras (e.g. generation parameters).
    """

    name: str
    data: np.ndarray
    labels: np.ndarray
    feature_names: Optional[List[str]] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=float)
        self.labels = np.asarray(self.labels, dtype=int)
        if self.data.ndim != 2:
            raise ValueError("data must be a 2-D array (samples, features)")
        if self.labels.ndim != 1:
            raise ValueError("labels must be a 1-D array")
        if self.data.shape[0] != self.labels.shape[0]:
            raise ValueError("data and labels must have the same number of samples")
        if not set(np.unique(self.labels)).issubset({0, 1}):
            raise ValueError("labels must be binary (0 = normal, 1 = anomaly)")
        if self.feature_names is not None:
            if len(self.feature_names) != self.data.shape[1]:
                raise ValueError("feature_names length must match the feature count")

    # ------------------------------------------------------------------- sizes
    @property
    def num_samples(self) -> int:
        """Number of rows."""
        return int(self.data.shape[0])

    @property
    def num_features(self) -> int:
        """Number of columns."""
        return int(self.data.shape[1])

    @property
    def num_anomalies(self) -> int:
        """Number of ground-truth anomalies."""
        return int(self.labels.sum())

    @property
    def anomaly_fraction(self) -> float:
        """Fraction of samples that are anomalous."""
        return self.num_anomalies / self.num_samples

    @property
    def anomaly_indices(self) -> np.ndarray:
        """Row indices of the ground-truth anomalies."""
        return np.flatnonzero(self.labels == 1)

    # ---------------------------------------------------------------- utilities
    def features_only(self) -> np.ndarray:
        """A copy of the feature matrix (what an unsupervised detector may see)."""
        return self.data.copy()

    def subset(self, indices: Sequence[int], name_suffix: str = "subset") -> "Dataset":
        """A new dataset restricted to ``indices`` (labels carried along)."""
        indices = np.asarray(indices, dtype=int)
        return Dataset(
            name=f"{self.name}-{name_suffix}",
            data=self.data[indices].copy(),
            labels=self.labels[indices].copy(),
            feature_names=list(self.feature_names) if self.feature_names else None,
            metadata=dict(self.metadata),
        )

    def shuffled(self, seed: Optional[int] = None) -> "Dataset":
        """A row-shuffled copy (useful to destroy any generation ordering)."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(self.num_samples)
        return self.subset(order, name_suffix="shuffled")

    def summary(self) -> Dict[str, object]:
        """Dictionary matching a Table I row for this dataset."""
        return {
            "name": self.name,
            "samples": self.num_samples,
            "anomalies": self.num_anomalies,
            "features": self.num_features,
            "anomaly_fraction": round(self.anomaly_fraction, 4),
        }

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, samples={self.num_samples}, "
            f"features={self.num_features}, anomalies={self.num_anomalies})"
        )
