"""Amplitude encoding with an overflow state (Section IV-B of the paper).

A sample's (normalized, feature-selected) values are squared to obtain
probabilities; whatever probability mass is missing to reach 1 is assigned to the
*overflow state*, the last computational basis state.  The square roots of those
probabilities are the amplitudes of the encoded quantum state.

Two encoding routes are provided:

* :func:`state_preparation_circuit` synthesizes an explicit gate-level circuit
  (multiplexed RY rotations + CX) preparing the state -- this is what the paper's
  "amplitude embedding" compiles to and what the noisy simulations consume.
* ``QuantumCircuit.initialize`` consumes the amplitudes directly; the simulators
  treat it as an exact state preparation (faster, used for noiseless sweeps).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.quantum.circuit import QuantumCircuit

__all__ = [
    "amplitude_probabilities",
    "amplitudes_from_features",
    "state_preparation_circuit",
    "AmplitudeEncoder",
]

_TOLERANCE = 1e-9


def amplitude_probabilities(features: Sequence[float], num_qubits: int) -> np.ndarray:
    """Squared features padded with the overflow state, as a probability vector.

    Parameters
    ----------
    features:
        At most ``2**num_qubits - 1`` normalized feature values in ``[0, 1]`` whose
        squares sum to at most 1.
    num_qubits:
        Size of the target register.

    Returns
    -------
    numpy.ndarray
        Length ``2**num_qubits`` probability vector; the last entry is the overflow
        probability.
    """
    features = np.asarray(features, dtype=float).ravel()
    dim = 2 ** num_qubits
    if features.shape[0] > dim - 1:
        raise ValueError(
            f"{features.shape[0]} features do not fit in {num_qubits} qubits "
            f"(at most {dim - 1} plus the overflow state)"
        )
    if np.any(features < -_TOLERANCE):
        raise ValueError("features must be non-negative after normalization")
    probabilities = np.zeros(dim, dtype=float)
    probabilities[: features.shape[0]] = np.clip(features, 0.0, None) ** 2
    total = probabilities.sum()
    if total > 1.0 + 1e-6:
        raise ValueError(
            f"squared features sum to {total:.6f} > 1; normalize the data first"
        )
    probabilities[-1] += max(1.0 - total, 0.0)
    return probabilities / probabilities.sum()


def amplitudes_from_features(features: Sequence[float], num_qubits: int) -> np.ndarray:
    """Amplitude vector (square roots of :func:`amplitude_probabilities`)."""
    return np.sqrt(amplitude_probabilities(features, num_qubits))


def _conditional_angles(amplitudes: np.ndarray, target_qubit: int,
                        num_qubits: int) -> List[float]:
    """RY angles of the multiplexor acting on ``target_qubit``.

    The multiplexor is controlled by all more-significant qubits
    (``target_qubit + 1 .. num_qubits - 1``); entry ``m`` of the returned list is
    the angle used when those controls read the little-endian pattern ``m``.
    """
    probabilities = amplitudes ** 2
    num_controls = num_qubits - 1 - target_qubit
    angles: List[float] = []
    for pattern in range(2 ** num_controls):
        prob_zero = 0.0
        prob_one = 0.0
        for index, probability in enumerate(probabilities):
            high_bits = index >> (target_qubit + 1)
            if high_bits != pattern:
                continue
            if (index >> target_qubit) & 1:
                prob_one += probability
            else:
                prob_zero += probability
        if prob_zero + prob_one < _TOLERANCE:
            angles.append(0.0)
            continue
        angles.append(2.0 * math.atan2(math.sqrt(prob_one), math.sqrt(prob_zero)))
    return angles


def _apply_multiplexed_ry(circuit: QuantumCircuit, angles: Sequence[float],
                          controls: Sequence[int], target: int) -> None:
    """Recursively decompose a uniformly controlled RY into RY and CX gates."""
    if len(angles) != 2 ** len(controls):
        raise ValueError("angle count must be 2**len(controls)")
    if not controls:
        if abs(angles[0]) > _TOLERANCE:
            circuit.ry(angles[0], target)
        return
    half = len(angles) // 2
    low = list(angles[:half])   # most-significant control = 0
    high = list(angles[half:])  # most-significant control = 1
    first = [(a + b) / 2.0 for a, b in zip(low, high)]
    second = [(a - b) / 2.0 for a, b in zip(low, high)]
    last_control = controls[-1]
    _apply_multiplexed_ry(circuit, first, controls[:-1], target)
    circuit.cx(last_control, target)
    _apply_multiplexed_ry(circuit, second, controls[:-1], target)
    circuit.cx(last_control, target)


def state_preparation_circuit(amplitudes: Sequence[float],
                              num_qubits: int = None) -> QuantumCircuit:
    """Gate-level preparation of a state with non-negative real amplitudes.

    Uses the Mottonen-style scheme: an RY rotation on the most significant qubit
    followed by multiplexed RY rotations working down to qubit 0.  Only
    non-negative real amplitudes are supported (which is all Quorum needs, since
    its amplitudes are square roots of probabilities).
    """
    amplitudes = np.asarray(amplitudes, dtype=float).ravel()
    if np.any(amplitudes < -_TOLERANCE):
        raise ValueError("state preparation supports non-negative amplitudes only")
    size = amplitudes.shape[0]
    inferred = int(round(math.log2(size)))
    if 2 ** inferred != size:
        raise ValueError(f"amplitude vector length {size} is not a power of two")
    if num_qubits is None:
        num_qubits = inferred
    elif num_qubits != inferred:
        raise ValueError("num_qubits inconsistent with the amplitude vector")
    norm = np.linalg.norm(amplitudes)
    if abs(norm - 1.0) > 1e-6:
        raise ValueError("amplitudes must be normalized")
    circuit = QuantumCircuit(num_qubits, 0 if num_qubits == 0 else num_qubits,
                             name="state_prep")
    for target in reversed(range(num_qubits)):
        controls = list(range(target + 1, num_qubits))
        angles = _conditional_angles(amplitudes, target, num_qubits)
        _apply_multiplexed_ry(circuit, angles, controls, target)
    return circuit


@dataclass(frozen=True)
class AmplitudeEncoder:
    """Encoder bound to a register size, exposing both encoding routes.

    Attributes
    ----------
    num_qubits:
        Register size; ``2**num_qubits - 1`` features fit (plus overflow).
    """

    num_qubits: int

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise ValueError("the encoder needs at least one qubit")

    @property
    def max_features(self) -> int:
        """Number of data features that fit alongside the overflow state."""
        return 2 ** self.num_qubits - 1

    def probabilities(self, features: Sequence[float]) -> np.ndarray:
        """Probability vector (squared features + overflow)."""
        return amplitude_probabilities(features, self.num_qubits)

    def amplitudes(self, features: Sequence[float]) -> np.ndarray:
        """Amplitude vector for the encoded state."""
        return amplitudes_from_features(features, self.num_qubits)

    def encoding_circuit(self, features: Sequence[float],
                         gate_level: bool = False) -> QuantumCircuit:
        """Circuit preparing the encoded state on a fresh register.

        Parameters
        ----------
        features:
            Normalized feature values.
        gate_level:
            When True, synthesize explicit RY/CX gates; otherwise emit a single
            ``initialize`` instruction (exact, faster to simulate).
        """
        amplitudes = self.amplitudes(features)
        if gate_level:
            return state_preparation_circuit(amplitudes, self.num_qubits)
        circuit = QuantumCircuit(self.num_qubits, self.num_qubits, name="amp_encode")
        circuit.initialize(amplitudes, list(range(self.num_qubits)))
        return circuit
