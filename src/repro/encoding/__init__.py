"""Classical-to-quantum data encoding: normalization and amplitude embedding."""

from repro.encoding.normalization import QuorumNormalizer, normalize_dataset
from repro.encoding.amplitude import (
    AmplitudeEncoder,
    amplitude_probabilities,
    amplitudes_from_features,
    state_preparation_circuit,
)

__all__ = [
    "QuorumNormalizer",
    "normalize_dataset",
    "AmplitudeEncoder",
    "amplitude_probabilities",
    "amplitudes_from_features",
    "state_preparation_circuit",
]
