"""Range-based feature normalization (Section IV-A of the paper).

Given a dataset with ``M`` features, every feature is scaled so that its maximum
value becomes ``1 / M``.  This guarantees that the sum of squared feature values of
any sample is at most 1, which is what allows the squared values to be interpreted
as probability amplitudes with a non-negative "overflow state" absorbing the rest.

Two modes are provided:

* ``"range"`` (default) -- min-max scale each feature to ``[0, 1/M]``.  This is the
  robust interpretation of the paper's "range-based normalization" and also handles
  negative raw values.
* ``"max"`` -- the literal formula from the paper, ``raw / (max * M)``; only valid
  when the raw values are non-negative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["QuorumNormalizer", "normalize_dataset"]

_MODES = ("range", "max")


@dataclass
class QuorumNormalizer:
    """Fit/transform normalizer implementing Quorum's per-feature scaling.

    Parameters
    ----------
    mode:
        ``"range"`` (min-max scaling, default) or ``"max"`` (paper's literal
        ``raw / max`` numerator; requires non-negative data).
    target_max:
        Value each feature's maximum is mapped to.  Defaults to ``1 / M`` (the
        paper's formula).  The detector passes ``1 / sqrt(m)`` (with ``m`` the
        per-circuit feature capacity) instead, which satisfies the same constraint
        the paper states -- the squared selected features summing to at most 1 --
        while leaving far more probability mass on the data amplitudes than the
        literal ``1 / M`` scaling does for wide datasets (see DESIGN.md).
    """

    mode: str = "range"
    target_max: Optional[float] = None
    feature_min_: Optional[np.ndarray] = field(default=None, repr=False)
    feature_max_: Optional[np.ndarray] = field(default=None, repr=False)
    num_features_: Optional[int] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.target_max is not None and not 0.0 < self.target_max <= 1.0:
            raise ValueError("target_max must lie in (0, 1]")

    # ----------------------------------------------------------------- fitting
    def fit(self, data: np.ndarray) -> "QuorumNormalizer":
        """Learn per-feature ranges from ``data`` of shape (samples, features)."""
        data = self._validate(data)
        self.num_features_ = data.shape[1]
        self.feature_min_ = data.min(axis=0)
        self.feature_max_ = data.max(axis=0)
        if self.mode == "max" and np.any(data < 0):
            raise ValueError(
                "mode='max' (the paper's literal formula) requires non-negative "
                "features; use mode='range' for signed data"
            )
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Scale ``data`` so that each feature lies in ``[0, 1/M]``."""
        if self.feature_min_ is None or self.feature_max_ is None:
            raise RuntimeError("normalizer must be fit before transform")
        data = self._validate(data)
        if data.shape[1] != self.num_features_:
            raise ValueError(
                f"expected {self.num_features_} features, got {data.shape[1]}"
            )
        ceiling = self.effective_target_max()
        if self.mode == "max":
            scale = np.where(self.feature_max_ > 0, self.feature_max_, 1.0)
            normalized = data / scale * ceiling
        else:
            span = self.feature_max_ - self.feature_min_
            safe_span = np.where(span > 0, span, 1.0)
            normalized = (data - self.feature_min_) / safe_span * ceiling
        # Clip to guard against transform() of unseen data slightly outside the
        # fitted range (the quantum embedding requires values in [0, ceiling]).
        return np.clip(normalized, 0.0, ceiling)

    def effective_target_max(self) -> float:
        """The per-feature ceiling used by ``transform`` (``1/M`` by default)."""
        if self.target_max is not None:
            return float(self.target_max)
        if self.num_features_ is None:
            raise RuntimeError("normalizer must be fit before transform")
        return 1.0 / float(self.num_features_)

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its normalized form."""
        return self.fit(data).transform(data)

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _validate(data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError("expected a 2-D array of shape (samples, features)")
        if data.shape[0] == 0 or data.shape[1] == 0:
            raise ValueError("dataset must contain at least one sample and feature")
        if not np.all(np.isfinite(data)):
            raise ValueError("dataset contains NaN or infinite values")
        return data


def normalize_dataset(data: np.ndarray, mode: str = "range") -> np.ndarray:
    """One-shot convenience wrapper around :class:`QuorumNormalizer`."""
    return QuorumNormalizer(mode=mode).fit_transform(data)
