"""Scoring sessions: sticky execution contexts with TTL expiry.

A session binds a client to one registered model plus an execution mode:

``batch`` (default)
    Stateless micro-batched scoring -- each request flows through the
    scorer's coalescing queue exactly like ``POST /v1/models/{id}/score``,
    so concurrent sessions share fused batches.  The session is bookkeeping
    (affinity, TTL, request counters), not an execution constraint.

``dedicated``
    Sequential, **stateful** scoring: the session owns one restored
    post-planning RNG per ensemble member
    (:meth:`~repro.serving.scorer.OnlineScorer.fresh_member_rngs`) and every
    request advances those generators in place
    (:meth:`~repro.serving.scorer.OnlineScorer.score_stateful`).  Requests
    within the session execute one at a time under the session lock.  The
    determinism contract: two dedicated sessions fed the same request
    sequence produce bitwise-identical score sequences, and a fresh
    session whose first request is the full training set in ``replay`` mode
    reproduces the fit scores bitwise.

Sessions expire after ``ttl_s`` seconds of inactivity.  Expired ids are
remembered in a bounded tombstone table so clients get the precise
``session_expired`` (410) rather than ``session_not_found`` (404).  The
clock is injectable so expiry is deterministic under test.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.serving.models import (
    ApiError,
    ScoreRequest,
    SessionCreateRequest,
    SessionInfo,
)
from repro.serving.registry import ModelRegistry
from repro.serving.scorer import ScoreResult

__all__ = ["Session", "SessionManager"]

#: How many expired session ids the tombstone table remembers.
TOMBSTONE_CAPACITY = 1024

#: How long one batch-mode session request may wait on the micro-batch queue.
SESSION_SCORE_TIMEOUT_S = 300.0


@dataclass
class Session:
    """One live session (internal record; the API shape is SessionInfo)."""

    session_id: str
    model_id: str
    mode: str
    ttl_s: float
    created_at: float
    last_used_at: float
    requests: int = 0
    #: Dedicated mode only: the sticky per-member generators.
    member_rngs: Optional[list] = None
    #: Serializes dedicated-mode requests (sticky RNG draws must not race).
    lock: threading.Lock = field(default_factory=threading.Lock)

    def info(self) -> SessionInfo:
        return SessionInfo(session_id=self.session_id, model_id=self.model_id,
                           mode=self.mode, ttl_s=self.ttl_s,
                           created_at=self.created_at,
                           last_used_at=self.last_used_at,
                           requests=self.requests)


class SessionManager:
    """Lock-protected session table over a :class:`ModelRegistry`."""

    def __init__(self, registry: ModelRegistry, default_ttl_s: float = 600.0,
                 clock: Callable[[], float] = time.time) -> None:
        if default_ttl_s <= 0:
            raise ValueError("default_ttl_s must be positive")
        self.registry = registry
        self.default_ttl_s = float(default_ttl_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}
        self._tombstones: "OrderedDict[str, float]" = OrderedDict()
        self._closed = False

    # ---------------------------------------------------------------- create
    def create(self, request: SessionCreateRequest) -> Session:
        """Open a session bound to a registered model.

        Resolves the model *now* so an unknown id fails with 404 at creation
        rather than on the first score call.
        """
        entry = self.registry.get(request.model_id)
        now = self._clock()
        session = Session(
            session_id=uuid.uuid4().hex,
            model_id=entry.model_id,
            mode=request.mode,
            ttl_s=float(request.ttl_s or self.default_ttl_s),
            created_at=now,
            last_used_at=now,
            member_rngs=(entry.scorer.fresh_member_rngs()
                         if request.mode == "dedicated" else None),
        )
        with self._lock:
            if self._closed:
                raise ApiError("shutting_down",
                               "the session manager is shutting down")
            self._gc_locked()
            self._sessions[session.session_id] = session
        return session

    # ---------------------------------------------------------------- lookup
    def get(self, session_id: str) -> Session:
        """Live session by id; expired -> 410, unknown -> 404."""
        with self._lock:
            self._gc_locked()
            session = self._sessions.get(session_id)
            if session is not None:
                return session
            if session_id in self._tombstones:
                raise ApiError(
                    "session_expired",
                    f"session {session_id} expired after {self._ttl_hint(session_id)}",
                    detail={"session_id": session_id})
            raise ApiError("session_not_found",
                           f"no session with id {session_id!r}")

    def _ttl_hint(self, session_id: str) -> str:
        ttl = self._tombstones.get(session_id)
        return f"{ttl:.0f}s of inactivity" if ttl is not None else "its TTL"

    # ---------------------------------------------------------------- scoring
    def score(self, session_id: str, request: ScoreRequest,
              timeout_s: float = SESSION_SCORE_TIMEOUT_S) -> ScoreResult:
        """Execute one score request in the session's mode."""
        session = self.get(session_id)
        entry = self.registry.get(session.model_id)  # 404 if unloaded meanwhile
        try:
            if session.mode == "dedicated":
                assert session.member_rngs is not None
                with session.lock:
                    result = entry.scorer.score_stateful(
                        request.samples, session.member_rngs,
                        mode=request.mode)
            else:
                result = entry.scorer.submit(
                    request.samples, mode=request.mode).result(
                        timeout=timeout_s)
        except (TypeError, ValueError) as error:
            raise ApiError("bad_request", str(error)) from None
        self._commit_use(session, count_request=True)
        return result

    def touch(self, session_id: str) -> Session:
        """Refresh a session's idle timer without scoring."""
        session = self.get(session_id)
        self._commit_use(session, count_request=False)
        return session

    def _commit_use(self, session: Session, count_request: bool) -> None:
        """Record a use, re-validating liveness under ONE lock acquisition.

        Between :meth:`get` and this commit the session may have been GC'd by
        a concurrent access (or by the clock itself while a slow score ran).
        Mutating the stale record would resurrect a tombstoned session --
        a dedicated session could keep scoring (and advancing its sticky
        RNGs) after clients were already told it expired.  Re-check
        membership and expiry atomically; a session that died mid-flight
        answers ``session_expired``.
        """
        with self._lock:
            self._gc_locked()
            live = self._sessions.get(session.session_id)
            if live is not session:
                if session.session_id in self._tombstones:
                    raise ApiError(
                        "session_expired",
                        f"session {session.session_id} expired while the "
                        f"request was in flight",
                        detail={"session_id": session.session_id})
                raise ApiError(
                    "session_not_found",
                    f"session {session.session_id} was closed while the "
                    f"request was in flight")
            if count_request:
                session.requests += 1
            session.last_used_at = self._clock()

    # -------------------------------------------------------------- lifecycle
    def close_session(self, session_id: str) -> Session:
        """Explicitly end a session (its id does NOT become a tombstone)."""
        with self._lock:
            self._gc_locked()
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise ApiError("session_not_found",
                           f"no session with id {session_id!r}")
        return session

    def list(self) -> List[Session]:
        with self._lock:
            self._gc_locked()
            return sorted(self._sessions.values(),
                          key=lambda session: session.created_at)

    def __len__(self) -> int:
        with self._lock:
            self._gc_locked()
            return len(self._sessions)

    def _gc_locked(self) -> None:
        now = self._clock()
        expired = [session_id for session_id, session in self._sessions.items()
                   if now - session.last_used_at > session.ttl_s]
        for session_id in expired:
            session = self._sessions.pop(session_id)
            self._tombstones[session_id] = session.ttl_s
            self._tombstones.move_to_end(session_id)
        while len(self._tombstones) > TOMBSTONE_CAPACITY:
            self._tombstones.popitem(last=False)

    def gc(self) -> None:
        """Expire idle sessions (also runs on every access)."""
        with self._lock:
            self._gc_locked()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._sessions.clear()
            self._tombstones.clear()
