"""Async job manager: long-running work behind ``POST /v1/jobs``.

The synchronous score path holds one HTTP connection open per request, which
is wrong for minutes-long work (a full-dataset replay, a fresh fit).
:class:`JobManager` runs that work on a bounded thread pool instead:
``submit`` validates the request, enqueues it, and immediately returns a
:class:`Job` with a uuid id; clients poll ``status``, fetch ``result``, or
``cancel``.  Finished jobs are garbage-collected after a TTL so a long-lived
server does not accumulate every result ever produced.

Job kinds
---------
``replay_dataset``
    Score the (full) training set in ``replay`` mode against a registered
    model.  Routed through the scorer's micro-batch queue, so the result is
    **bitwise identical** to an in-process ``OnlineScorer`` replay.
``score``
    Bulk ``reference`` (or ``replay``) scoring as a job -- the asynchronous
    twin of ``POST /v1/models/{id}/score`` for payloads too large to wait on.
``fit``
    Train-as-a-job: fit a fresh :class:`QuorumDetector` on submitted samples
    and register the resulting artifact in the model registry (optionally
    persisting it to disk), so new models come online without a restart.

Everything is lock-protected; the clock is injectable so TTL expiry is
deterministic under test.
"""

from __future__ import annotations

import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.serving.models import (
    JOB_KINDS,
    ApiError,
    JobInfo,
    JobSubmitRequest,
)
from repro.serving.registry import ModelRegistry
from repro.serving.scorer import SCORING_MODES
from repro.serving.telemetry import MetricsRegistry, default_registry

__all__ = ["Job", "JobManager"]

#: Statuses that end a job's lifecycle (eligible for TTL garbage collection).
TERMINAL_STATES = ("succeeded", "failed", "cancelled")

#: QuorumConfig overrides a ``fit`` job may set; anything else is rejected at
#: submit time so a typo fails fast instead of fitting a default detector.
FIT_CONFIG_KEYS = (
    "ensemble_groups", "shots", "seed", "num_qubits", "backend",
    "simulation_backend", "compile_circuits", "noisy", "bucket_probability",
    "anomaly_fraction_estimate",
)

#: How long one in-job scoring call may wait on the micro-batch queue.
JOB_SCORE_TIMEOUT_S = 3600.0


@dataclass
class Job:
    """One unit of asynchronous work and its lifecycle record."""

    job_id: str
    kind: str
    model_id: Optional[str]
    created_at: float
    status: str = "queued"
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, object]] = None
    error: Optional[Dict[str, object]] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    future: Optional[object] = None  # concurrent.futures.Future

    @property
    def queued_s(self) -> Optional[float]:
        """Submit-to-start wait (to finish, for jobs cancelled unstarted)."""
        reference = self.started_at if self.started_at is not None \
            else self.finished_at
        if reference is None:
            return None
        return max(0.0, reference - self.created_at)

    @property
    def run_s(self) -> Optional[float]:
        """Start-to-finish execution time (None until both are known)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return max(0.0, self.finished_at - self.started_at)

    def info(self) -> JobInfo:
        return JobInfo(job_id=self.job_id, kind=self.kind, status=self.status,
                       model_id=self.model_id, created_at=self.created_at,
                       started_at=self.started_at,
                       finished_at=self.finished_at, error=self.error,
                       queued_s=self.queued_s, run_s=self.run_s)


class JobManager:
    """Bounded worker pool + lock-protected job table with TTL expiry.

    Parameters
    ----------
    registry:
        The model registry jobs score against (and that ``fit`` jobs extend).
    workers:
        Worker-pool size; queued jobs beyond it wait their turn.
    ttl_s:
        How long a *finished* job (and its result) stays retrievable.
    clock:
        Injectable time source; tests advance a fake clock to exercise TTL
        expiry without sleeping.
    metrics:
        Telemetry registry for job duration histograms and outcome counters;
        defaults to the process-global registry.
    """

    def __init__(self, registry: ModelRegistry, workers: int = 2,
                 ttl_s: float = 900.0,
                 clock: Callable[[], float] = time.time,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.registry = registry
        self.ttl_s = float(ttl_s)
        self.workers = int(workers)
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._pool = ThreadPoolExecutor(max_workers=self.workers,
                                        thread_name_prefix="quorum-job")
        self._closed = False
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_finished = self.metrics.counter(
            "jobs_finished_total", "jobs reaching a terminal status")
        self._h_queue_wait = self.metrics.histogram(
            "job_queue_wait_seconds", "submit-to-start wait on the job pool")
        self._h_run = self.metrics.histogram(
            "job_run_seconds", "job execution time (start to finish)")

    # ------------------------------------------------------------- submission
    def submit(self, request: JobSubmitRequest) -> Job:
        """Validate and enqueue one job; returns immediately with its record."""
        if request.kind not in JOB_KINDS:
            raise ApiError("bad_request",
                           f"unknown job kind {request.kind!r}; expected one "
                           f"of {JOB_KINDS}")
        work = self._build_work(request)
        return self.submit_fn(request.kind, work, model_id=request.model_id)

    def submit_fn(self, kind: str,
                  work: Callable[[threading.Event], Dict[str, object]],
                  model_id: Optional[str] = None) -> Job:
        """Enqueue an arbitrary work callable (tests inject controllable work).

        ``work`` receives the job's cancel event and returns the JSON-ready
        result payload.
        """
        with self._lock:
            if self._closed:
                raise ApiError("shutting_down",
                               "the job manager is shutting down")
            self._gc_locked()
            job = Job(job_id=uuid.uuid4().hex, kind=kind, model_id=model_id,
                      created_at=self._clock())
            self._jobs[job.job_id] = job
            job.future = self._pool.submit(self._run, job, work)
        return job

    def _build_work(self, request: JobSubmitRequest
                    ) -> Callable[[threading.Event], Dict[str, object]]:
        """Validate kind-specific params and close over the actual work."""
        params = request.params
        if request.kind in ("replay_dataset", "score"):
            samples = params.get("samples")
            allowed = ("samples",) if request.kind == "replay_dataset" \
                else ("samples", "mode")
            unknown = sorted(set(params) - set(allowed))
            if unknown:
                raise ApiError("bad_request",
                               f"unknown param(s) {unknown} for a "
                               f"{request.kind} job",
                               detail={"allowed": list(allowed)})
            if not isinstance(samples, list) or not samples:
                raise ApiError("bad_request",
                               f"a {request.kind} job requires a non-empty "
                               '"samples" matrix in params')
            mode = "replay" if request.kind == "replay_dataset" \
                else params.get("mode", "reference")
            if mode not in SCORING_MODES:
                raise ApiError("bad_request",
                               f"unknown scoring mode {mode!r}; expected one "
                               f"of {SCORING_MODES}")
            # Resolve now so an unknown model fails at submit time (404),
            # not as a failed job the client has to poll to discover.
            self.registry.get(request.model_id)
            model_key = request.model_id

            def work(cancel_event: threading.Event) -> Dict[str, object]:
                entry = self.registry.get(model_key)
                result = entry.scorer.submit(samples, mode=mode).result(
                    timeout=JOB_SCORE_TIMEOUT_S)
                return {
                    "scores": result.scores.tolist(),
                    "num_runs": result.num_runs,
                    "num_samples": result.num_samples,
                    "mode": result.mode,
                    "model_id": entry.model_id,
                    "schema_version": entry.artifact.schema_version,
                }

            return work

        # kind == "fit"
        allowed = ("samples", "config", "register_as", "save_path")
        unknown = sorted(set(params) - set(allowed))
        if unknown:
            raise ApiError("bad_request",
                           f"unknown param(s) {unknown} for a fit job",
                           detail={"allowed": list(allowed)})
        samples = params.get("samples")
        if not isinstance(samples, list) or not samples:
            raise ApiError("bad_request",
                           'a fit job requires a non-empty "samples" matrix '
                           "in params")
        config = params.get("config", {})
        if not isinstance(config, dict):
            raise ApiError("bad_request", "fit params.config must be an object")
        bad_keys = sorted(set(config) - set(FIT_CONFIG_KEYS))
        if bad_keys:
            raise ApiError("bad_request",
                           f"unsupported fit config key(s) {bad_keys}",
                           detail={"allowed": list(FIT_CONFIG_KEYS)})
        register_as = params.get("register_as")
        if register_as is not None and (not isinstance(register_as, str)
                                        or not register_as):
            raise ApiError("bad_request",
                           "fit params.register_as must be a non-empty string")
        save_path = params.get("save_path")
        if save_path is not None and (not isinstance(save_path, str)
                                      or not save_path):
            raise ApiError("bad_request",
                           "fit params.save_path must be a non-empty string")

        def fit_work(cancel_event: threading.Event) -> Dict[str, object]:
            from repro.core.detector import QuorumDetector
            from repro.serving.artifact import ModelArtifact, save_model

            try:
                detector = QuorumDetector(**config)
                detector.fit(np.asarray(samples, dtype=float))
                artifact = ModelArtifact.from_detector(detector)
            except (TypeError, ValueError) as error:
                raise ApiError("bad_request",
                               f"fit job failed: {error}") from None
            saved_to = None
            if save_path is not None:
                saved_to = str(save_model(artifact, save_path))
            entry = self.registry.register(artifact, model_id=register_as,
                                           path=saved_to)
            return {
                "model_id": entry.model_id,
                "sha256": entry.sha256,
                "saved_to": saved_to,
                "summary": entry.artifact.summary(),
            }

        return fit_work

    # -------------------------------------------------------------- execution
    def _run(self, job: Job,
             work: Callable[[threading.Event], Dict[str, object]]) -> None:
        with self._lock:
            if job.cancel_event.is_set() or job.status == "cancelled":
                self._finish_locked(job, "cancelled")
                return
            job.status = "running"
            job.started_at = self._clock()
        try:
            result = work(job.cancel_event)
        except ApiError as error:
            with self._lock:
                job.error = {"code": error.code, "message": error.message}
                self._finish_locked(job, "failed")
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            with self._lock:
                job.error = {"code": "internal",
                             "message": f"{type(error).__name__}: {error}"}
                self._finish_locked(job, "failed")
        else:
            with self._lock:
                if job.cancel_event.is_set():
                    # Cancelled mid-run: the work unit is not interruptible,
                    # but the contract is "no result after cancel".
                    self._finish_locked(job, "cancelled")
                else:
                    job.result = result
                    self._finish_locked(job, "succeeded")

    def _finish_locked(self, job: Job, status: str) -> None:
        job.status = status
        job.finished_at = self._clock()
        self._m_finished.inc(status=status)
        queued_s = job.queued_s
        if queued_s is not None:
            self._h_queue_wait.observe(queued_s)
        run_s = job.run_s
        if run_s is not None:
            self._h_run.observe(run_s)

    # ----------------------------------------------------------------- access
    def get(self, job_id: str) -> Job:
        with self._lock:
            self._gc_locked()
            job = self._jobs.get(job_id)
            if job is None:
                raise ApiError("job_not_found", f"no job with id {job_id!r} "
                               "(finished jobs expire after "
                               f"{self.ttl_s:.0f}s)")
            return job

    def result(self, job_id: str) -> Dict[str, object]:
        """The result payload of a succeeded job.

        Raises ``job_not_done`` (409) while the job is queued/running or was
        cancelled, and re-raises a failed job's error with its original code.
        """
        job = self.get(job_id)
        with self._lock:
            if job.status == "succeeded":
                assert job.result is not None
                return job.result
            if job.status == "failed":
                error = job.error or {"code": "internal",
                                      "message": "job failed"}
                raise ApiError(str(error.get("code", "internal")),
                               str(error.get("message", "job failed")),
                               detail={"job_id": job.job_id})
            if job.status == "cancelled":
                raise ApiError("job_not_done",
                               f"job {job_id} was cancelled; no result",
                               detail={"status": job.status})
            raise ApiError("job_not_done",
                           f"job {job_id} is {job.status}; poll "
                           "GET /v1/jobs/{id} until it finishes",
                           detail={"status": job.status})

    def cancel(self, job_id: str) -> Job:
        """Cancel a job (idempotent; finished jobs are left untouched).

        A queued job is cancelled immediately; a running job has its cancel
        event set -- the work is not preempted, but its result is discarded
        and the terminal status becomes ``cancelled``.
        """
        job = self.get(job_id)
        with self._lock:
            if job.status in TERMINAL_STATES:
                return job
            job.cancel_event.set()
            future = job.future
            if job.status == "queued" and future is not None \
                    and future.cancel():
                self._finish_locked(job, "cancelled")
            return job

    def list(self) -> List[Job]:
        with self._lock:
            self._gc_locked()
            return sorted(self._jobs.values(), key=lambda job: job.created_at)

    def counts(self) -> Dict[str, int]:
        """``{status: count}`` over live (non-GC'd) jobs."""
        counts = {status: 0 for status in
                  ("queued", "running", "succeeded", "failed", "cancelled")}
        with self._lock:
            self._gc_locked()
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    # ---------------------------------------------------------------- expiry
    def _gc_locked(self) -> None:
        now = self._clock()
        expired = [job_id for job_id, job in self._jobs.items()
                   if job.status in TERMINAL_STATES
                   and job.finished_at is not None
                   and now - job.finished_at > self.ttl_s]
        for job_id in expired:
            del self._jobs[job_id]

    def gc(self) -> None:
        """Drop finished jobs past their TTL (also runs on every access)."""
        with self._lock:
            self._gc_locked()

    # -------------------------------------------------------------- lifecycle
    def close(self, wait: bool = True) -> None:
        """Stop accepting jobs, cancel the queue, and (optionally) wait."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for job in self._jobs.values():
                if job.status == "queued":
                    job.cancel_event.set()
                    if job.future is not None and job.future.cancel():
                        self._finish_locked(job, "cancelled")
        self._pool.shutdown(wait=wait, cancel_futures=True)

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
