"""Fault injection for the fleet: the disturbance half of the chaos suite.

In the spirit of characterizing a system by deliberately disturbing it, this
module provides the faults the supervisor must survive -- each one mapping to
a recovery path in :mod:`repro.serving.supervisor`:

* :class:`FaultInjector` delivers **process faults** (SIGKILL = crash,
  SIGSTOP = hang, SIGCONT = recovery) to a replica by pid or
  :class:`~repro.serving.loadtest.ReplicaProcess`, and drives the server's
  ``/v1/_debug/delay`` hook (enabled with ``debug_hooks=True``) to make a
  replica **slow** without stopping it.

* :class:`ChaosGate` is a tiny TCP forwarder placed *between* the proxy and
  one replica to inject **network faults** the process itself cannot fake:

  - ``refuse()`` closes the listening socket, so new connects are genuinely
    refused (``ECONNREFUSED``, not a reset) -- the fault behind the proxy's
    idempotent connect-refused failover;
  - ``cut_responses(after_bytes)`` relays each backend response only up to a
    byte budget and then severs the pair -- the mid-response-disconnect that
    must surface as a synthesized ``502``, never a truncated body;
  - ``restore()`` rebinds the same port and resumes transparent forwarding.

Everything is stdlib-only and self-cleaning (daemon pump threads, sockets
closed on :meth:`ChaosGate.close`), so chaos tests stay CI-safe.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import threading
from typing import List, Optional, Tuple, Union

__all__ = ["ChaosGate", "FaultInjector"]

#: Forwarding modes of a :class:`ChaosGate`.
_PASS = "pass"
_REFUSE = "refuse"
_CUT = "cut"


class ChaosGate:
    """A TCP forwarder to one backend that can misbehave on command.

    Sits between the proxy and a replica: the proxy is given the *gate's*
    address as the backend, so network faults can be injected and removed
    without touching the replica process::

        gate = ChaosGate(replica_host, replica_port).start()
        proxy.add_backend(gate.address)
        gate.refuse()            # new connects -> ECONNREFUSED
        gate.restore()           # transparent again, same port
        gate.cut_responses(64)   # responses die after 64 bytes
    """

    def __init__(self, backend_host: str, backend_port: int,
                 host: str = "127.0.0.1", port: int = 0,
                 connect_timeout_s: float = 10.0) -> None:
        self.backend_host = backend_host
        self.backend_port = int(backend_port)
        self._host = host
        self._port = int(port)  # pinned after the first bind
        self._connect_timeout_s = float(connect_timeout_s)
        self._mode = _PASS
        self._cut_after = 0
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._pairs: List[Tuple[socket.socket, socket.socket]] = []

    # ---------------------------------------------------------------- lifecycle
    def start(self) -> "ChaosGate":
        with self._lock:
            if self._listener is not None:
                raise RuntimeError("the gate is already started")
            self._bind_locked()
        return self

    def _bind_locked(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(64)
        self._port = listener.getsockname()[1]  # pin the ephemeral port
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, args=(listener,),
            name="chaos-gate", daemon=True)
        self._accept_thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        if self._port == 0:
            raise RuntimeError("the gate is not started")
        return self._host, self._port

    def close(self) -> None:
        self._closed.set()
        with self._lock:
            self._close_listener_locked()
            pairs, self._pairs = self._pairs, []
        for pair in pairs:
            for sock in pair:
                self._quietly_close(sock)

    def _close_listener_locked(self) -> None:
        if self._listener is not None:
            try:
                # Wake a thread blocked in accept() (close() alone does not).
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._quietly_close(self._listener)
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    # -------------------------------------------------------------------- modes
    @property
    def mode(self) -> str:
        return self._mode

    def refuse(self) -> None:
        """New connections are refused (the listener is closed).

        Existing pairs keep forwarding -- exactly like a process whose port
        went away between the proxy's keep-alive requests.
        """
        with self._lock:
            self._mode = _REFUSE
            self._close_listener_locked()

    def cut_responses(self, after_bytes: int = 64) -> None:
        """Each backend response is severed after ``after_bytes`` bytes.

        ``after_bytes`` must be small enough to bite inside the response
        (head + body) you expect; the default cuts inside any scoring
        response's headers.  Applies to pairs created from now on.
        """
        if after_bytes < 0:
            raise ValueError("after_bytes cannot be negative")
        with self._lock:
            if self._listener is None and not self._closed.is_set():
                self._bind_locked()
            self._mode = _CUT
            self._cut_after = int(after_bytes)

    def restore(self) -> None:
        """Back to transparent forwarding (rebinding the same port)."""
        with self._lock:
            if self._closed.is_set():
                raise RuntimeError("the gate is closed")
            self._mode = _PASS
            if self._listener is None:
                self._bind_locked()

    # ------------------------------------------------------------------- pumps
    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._closed.is_set():
            try:
                client, _ = listener.accept()
            except OSError:
                return  # listener closed (refuse() or close())
            try:
                backend = socket.create_connection(
                    (self.backend_host, self.backend_port),
                    timeout=self._connect_timeout_s)
            except OSError:
                self._quietly_close(client)
                continue
            backend.settimeout(None)
            client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            backend.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._pairs.append((client, backend))
            threading.Thread(target=self._pump, args=(client, backend, False),
                             daemon=True).start()
            threading.Thread(target=self._pump, args=(backend, client, True),
                             daemon=True).start()

    def _pump(self, source: socket.socket, sink: socket.socket,
              is_response: bool) -> None:
        """Relay one direction; in cut mode the response side is bounded."""
        relayed = 0
        try:
            while not self._closed.is_set():
                budget = 65536
                if is_response and self._mode == _CUT:
                    budget = max(1, self._cut_after - relayed)
                chunk = source.recv(budget)
                if not chunk:
                    break
                sink.sendall(chunk)
                relayed += len(chunk)
                if (is_response and self._mode == _CUT
                        and relayed >= self._cut_after):
                    break  # sever mid-response
        except OSError:
            pass
        finally:
            # Half-close is useless to an HTTP pair mid-message: drop both.
            self._quietly_close(source)
            self._quietly_close(sink)

    @staticmethod
    def _quietly_close(sock: socket.socket) -> None:
        # shutdown() before close(): the peer pump thread blocked in recv()
        # on this socket holds a kernel reference, so a bare close() would
        # neither send the FIN nor wake that thread -- the client would wait
        # for an EOF that never comes.
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass


class FaultInjector:
    """Process- and latency-level faults against fleet replicas.

    Signals take a pid or anything with a ``pid`` attribute (a
    :class:`~repro.serving.loadtest.ReplicaProcess`); the delay hook takes
    the replica's ``host:port`` (requires the server to run with
    ``debug_hooks=True``).
    """

    def __init__(self, timeout_s: float = 10.0) -> None:
        self.timeout_s = float(timeout_s)

    # ------------------------------------------------------------ process level
    @staticmethod
    def _pid(target: Union[int, object]) -> int:
        if isinstance(target, int):
            return target
        pid = getattr(target, "pid", None)
        if pid is None:
            raise TypeError(f"cannot extract a pid from {target!r}")
        return int(pid)

    def kill(self, target: Union[int, object]) -> None:
        """SIGKILL: the crash fault (no drain, no goodbye)."""
        os.kill(self._pid(target), signal.SIGKILL)

    def pause(self, target: Union[int, object]) -> None:
        """SIGSTOP: the hang fault -- the process is alive but answers
        nothing (its listen backlog still accepts connects, which is what
        makes hangs nastier than crashes)."""
        os.kill(self._pid(target), signal.SIGSTOP)

    def resume(self, target: Union[int, object]) -> None:
        """SIGCONT: recovery from :meth:`pause`."""
        os.kill(self._pid(target), signal.SIGCONT)

    # ------------------------------------------------------------ latency level
    def set_delay(self, address: str, delay_s: float) -> float:
        """Make every request to the replica at ``address`` sleep
        ``delay_s`` seconds (0 clears); returns the applied value."""
        payload = json.dumps({"delay_s": delay_s})
        status, body = self._request(address, "POST", "/v1/_debug/delay",
                                     payload)
        if status != 200:
            raise RuntimeError(
                f"delay hook on {address} answered {status}: {body!r} "
                f"(is the replica running with debug hooks enabled?)")
        return float(json.loads(body)["delay_s"])

    def clear_delay(self, address: str) -> None:
        self.set_delay(address, 0.0)

    def get_delay(self, address: str) -> float:
        status, body = self._request(address, "GET", "/v1/_debug/delay")
        if status != 200:
            raise RuntimeError(
                f"delay hook on {address} answered {status}: {body!r}")
        return float(json.loads(body)["delay_s"])

    def _request(self, address: str, method: str, path: str,
                 body: Optional[str] = None) -> Tuple[int, bytes]:
        host, _, port = address.rpartition(":")
        connection = http.client.HTTPConnection(host, int(port),
                                                timeout=self.timeout_s)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()
