"""Persistent model artifacts: save a fitted detector, restore a scorer.

The Quorum detector is transductive -- ``fit`` scores the dataset it is given
-- but everything an ensemble member *is* (feature subset, bucket partition,
random ansatz angles, post-planning RNG state, fit-time bucket statistics) is
frozen the moment planning finishes.  This module serializes that frozen state
into a versioned on-disk bundle so a fresh process can score new samples (or
bit-identically replay the training set) without refitting:

* :func:`save_model` writes a fitted :class:`~repro.core.detector.QuorumDetector`
  (or a prebuilt :class:`ModelArtifact`) to one JSON file.
* :func:`load_model` reads the bundle back with strict validation -- corrupt
  files, schema-version mismatches, and dtype mismatches raise dedicated
  errors instead of producing silently wrong scores.
* :class:`ModelArtifact` is the in-memory form: it rebuilds the fitted
  normalizer, each member's :class:`~repro.core.ensemble.MemberPlan`, and each
  member's frozen per-level bucket reference statistics for the online scorer
  (:mod:`repro.serving.scorer`).

The bundle also records the noise-model fingerprint the ensemble was fitted
under and the library versions that produced it.  The fingerprint is
re-derived from the stored config at load time and compared, so a noisy model
saved under one calibration cannot silently serve under another.
"""

from __future__ import annotations

import hashlib
import json
import platform
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.core.bucketing import BucketAssignment
from repro.core.config import QuorumConfig
from repro.core.detector import QuorumDetector
from repro.core.ensemble import MemberPlan
from repro.encoding.normalization import QuorumNormalizer
from repro.utils.serialization import (
    coerce_float_array,
    coerce_int_array,
    to_jsonable,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "SCHEMA_VERSION",
    "ArtifactError",
    "ArtifactCorruptError",
    "ArtifactVersionError",
    "ArtifactDtypeError",
    "MemberArtifact",
    "ModelArtifact",
    "save_model",
    "load_model",
    "noise_fingerprint_hex",
]

#: Format marker written into (and required from) every bundle.
ARTIFACT_FORMAT = "quorum-repro/model"

#: Bump on any change to the bundle layout that an old loader cannot read.
SCHEMA_VERSION = 1


class ArtifactError(Exception):
    """Base class for every model-artifact failure."""


class ArtifactCorruptError(ArtifactError):
    """The bundle is unreadable or structurally broken (bad JSON, missing keys)."""


class ArtifactVersionError(ArtifactError):
    """The bundle's schema version is not one this loader understands."""


class ArtifactDtypeError(ArtifactError):
    """A stored array failed strict dtype/shape validation."""


def noise_fingerprint_hex(config: QuorumConfig) -> Optional[str]:
    """Content hash of the noise model ``config`` fits under (``None`` if noiseless).

    Serialized into the bundle and re-derived at load time: a mismatch means
    the noise calibration changed between save and load, which would silently
    shift every noisy probability the scorer produces.
    """
    if not config.noisy:
        return None
    from repro.quantum.backends import FakeBrisbane

    model = FakeBrisbane(num_qubits=config.total_circuit_qubits).to_noise_model()
    return hashlib.sha256(repr(model.fingerprint()).encode()).hexdigest()


def _library_versions() -> Dict[str, str]:
    import repro

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "quorum-repro": repro.__version__,
    }


def _require(payload: Mapping, key: str, context: str):
    if not isinstance(payload, Mapping):
        raise ArtifactCorruptError(f"model artifact field {context} is not an "
                                   "object")
    if key not in payload:
        raise ArtifactCorruptError(f"model artifact is missing {context}.{key}")
    return payload[key]


def _float_array(value, name: str, shape=None) -> np.ndarray:
    try:
        return coerce_float_array(value, name=name, shape=shape)
    except TypeError as error:
        raise ArtifactDtypeError(str(error)) from None
    except ValueError as error:
        raise ArtifactDtypeError(str(error)) from None


def _int_array(value, name: str, shape=None) -> np.ndarray:
    try:
        return coerce_int_array(value, name=name, shape=shape)
    except TypeError as error:
        raise ArtifactDtypeError(str(error)) from None
    except ValueError as error:
        raise ArtifactDtypeError(str(error)) from None


def _int_scalar(value, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ArtifactDtypeError(f"{name} must be an integer, got {value!r}")
    return int(value)


@dataclass
class MemberArtifact:
    """One frozen ensemble member: plan state plus fit-time reference statistics.

    Attributes
    ----------
    member_index / member_seed:
        Position and seed of the member (diagnostics; the stored state is
        authoritative, the seed is never re-derived from).
    selected_features:
        Feature indices of the member's random projection.
    bucket_size / buckets:
        The member's fit-time random partition of training-sample indices.
    angles:
        The random ansatz angles drawn at planning time.
    rng_state:
        Bit-generator state of the member RNG immediately after planning --
        restoring a generator from it replays fit-time shot noise bit for bit.
    reference:
        Per-compression-level per-bucket ``(means, stds)`` of the fit-time
        SWAP-test outputs; the frozen statistics unseen samples are scored
        against.
    """

    member_index: int
    member_seed: int
    selected_features: np.ndarray
    bucket_size: int
    buckets: Tuple[Tuple[int, ...], ...]
    angles: np.ndarray
    rng_state: Dict[str, object]
    reference: Dict[int, Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict)

    def bucket_assignment(self) -> BucketAssignment:
        """The member's fit-time bucket partition."""
        return BucketAssignment(buckets=self.buckets)

    def build_ansatz(self, config: QuorumConfig) -> RandomAutoencoderAnsatz:
        """Rebuild the member's ansatz from the stored angles (never re-drawn)."""
        return RandomAutoencoderAnsatz(
            num_qubits=config.num_qubits,
            num_layers=config.num_layers,
            entanglement=config.entanglement,
            angles_=self.angles,
        )

    def restored_rng(self) -> np.random.Generator:
        """A fresh generator positioned exactly after the member's planning draws."""
        state = json.loads(json.dumps(self.rng_state))  # defensive deep copy
        bit_generator_name = state.get("bit_generator", "PCG64")
        bit_generator_cls = getattr(np.random, str(bit_generator_name), None)
        # The subclass check matters: np.random holds plenty of callables
        # (seed, normal, ...) besides bit generators, and a corrupt artifact
        # must not be able to invoke an arbitrary one of them.
        if not (isinstance(bit_generator_cls, type)
                and issubclass(bit_generator_cls, np.random.BitGenerator)):
            raise ArtifactCorruptError(
                f"unknown bit generator {bit_generator_name!r} in member "
                f"{self.member_index}"
            )
        rng = np.random.Generator(bit_generator_cls())
        try:
            rng.bit_generator.state = state
        except (KeyError, TypeError, ValueError) as error:
            raise ArtifactCorruptError(
                f"invalid RNG state for member {self.member_index}: {error}"
            ) from None
        return rng

    def build_plan(self, config: QuorumConfig) -> MemberPlan:
        """The member as an executable :class:`~repro.core.ensemble.MemberPlan`."""
        return MemberPlan(
            member_index=self.member_index,
            member_seed=self.member_seed,
            selected_features=self.selected_features,
            bucket_size=self.bucket_size,
            buckets=self.bucket_assignment(),
            ansatz=self.build_ansatz(config),
            rng=self.restored_rng(),
            rng_state=dict(self.rng_state),
        )


@dataclass
class ModelArtifact:
    """Everything needed to restore a fitted Quorum ensemble in a new process."""

    config: QuorumConfig
    normalizer_mode: str
    normalizer_target_max: Optional[float]
    feature_min: np.ndarray
    feature_max: np.ndarray
    num_features: int
    num_samples: int
    num_runs: int
    bucket_size: int
    levels: Tuple[int, ...]
    members: List[MemberArtifact]
    noise_fingerprint: Optional[str] = None
    library_versions: Dict[str, str] = field(default_factory=_library_versions)
    created_at: str = ""
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------ construction
    @classmethod
    def from_detector(cls, detector: QuorumDetector) -> "ModelArtifact":
        """Snapshot a fitted detector (raises if it has not been fit)."""
        scores = detector.scores()
        normalizer = detector.normalizer
        if normalizer is None or normalizer.feature_min_ is None:
            raise ArtifactError("the detector has no fitted normalizer")
        plans = detector.member_plans()
        results = detector.member_results()
        members: List[MemberArtifact] = []
        for plan, result in zip(plans, results):
            if plan.rng_state is None:
                raise ArtifactError(
                    f"member {plan.member_index} carries no RNG snapshot; "
                    "refit with this version to save the model"
                )
            reference = {
                int(level): (np.array(means, dtype=float),
                             np.array(stds, dtype=float))
                for level, (means, stds) in result.bucket_statistics.items()
            }
            members.append(MemberArtifact(
                member_index=plan.member_index,
                member_seed=plan.member_seed,
                selected_features=np.asarray(plan.selected_features, dtype=int),
                bucket_size=plan.bucket_size,
                buckets=plan.buckets.buckets,
                angles=np.asarray(plan.ansatz.angles_, dtype=float),
                rng_state=dict(plan.rng_state),
                reference=reference,
            ))
        metadata = scores.metadata
        return cls(
            config=detector.config,
            normalizer_mode=normalizer.mode,
            normalizer_target_max=normalizer.target_max,
            feature_min=np.asarray(normalizer.feature_min_, dtype=float),
            feature_max=np.asarray(normalizer.feature_max_, dtype=float),
            num_features=int(normalizer.num_features_),
            num_samples=int(scores.num_samples),
            num_runs=int(scores.num_runs),
            bucket_size=int(metadata.get("bucket_size", 0)),
            levels=tuple(detector.config.effective_compression_levels),
            members=members,
            noise_fingerprint=noise_fingerprint_hex(detector.config),
            library_versions=_library_versions(),
            created_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        )

    # -------------------------------------------------------------- restoring
    def build_normalizer(self) -> QuorumNormalizer:
        """The fitted normalizer, ready to ``transform`` unseen raw features."""
        normalizer = QuorumNormalizer(mode=self.normalizer_mode,
                                      target_max=self.normalizer_target_max)
        normalizer.feature_min_ = self.feature_min.copy()
        normalizer.feature_max_ = self.feature_max.copy()
        normalizer.num_features_ = self.num_features
        return normalizer

    def build_plans(self) -> List[MemberPlan]:
        """Executable plans for every member, with restored RNGs."""
        return [member.build_plan(self.config) for member in self.members]

    def summary(self) -> Dict[str, object]:
        """Operator-facing summary (served by ``GET /model``)."""
        return {
            "format": ARTIFACT_FORMAT,
            "schema_version": self.schema_version,
            "created_at": self.created_at,
            "library_versions": dict(self.library_versions),
            "noise_fingerprint": self.noise_fingerprint,
            "ensemble_groups": len(self.members),
            "compression_levels": list(self.levels),
            "bucket_size": self.bucket_size,
            "num_samples_fit": self.num_samples,
            "num_runs": self.num_runs,
            "num_features": self.num_features,
            "backend": self.config.backend,
            "simulation_backend": self.config.simulation_backend,
            "compile_circuits": self.config.compile_circuits,
            "noisy": self.config.noisy,
            "shots": self.config.shots,
        }

    def content_sha256(self) -> str:
        """Canonical sha256 of the bundle content (the registry's model key).

        Hashes the JSON payload with sorted keys, so the digest is stable
        across file formatting (indentation, key order) and identical for an
        artifact loaded from disk and the same artifact still in memory --
        which is what lets :class:`~repro.serving.registry.ModelRegistry` key
        fit-as-a-job results and ``load_model`` results uniformly.
        """
        canonical = json.dumps(self.to_payload(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------- (de)coding
    def to_payload(self) -> Dict[str, object]:
        """The bundle as plain JSON types."""
        members = []
        for member in self.members:
            members.append({
                "member_index": member.member_index,
                "member_seed": member.member_seed,
                "selected_features": to_jsonable(member.selected_features),
                "bucket_size": member.bucket_size,
                "buckets": to_jsonable(member.buckets),
                "angles": to_jsonable(member.angles),
                "rng_state": to_jsonable(member.rng_state),
                "reference": {
                    str(level): {"bucket_means": to_jsonable(means),
                                 "bucket_stds": to_jsonable(stds)}
                    for level, (means, stds) in member.reference.items()
                },
            })
        return {
            "format": ARTIFACT_FORMAT,
            "schema_version": self.schema_version,
            "created_at": self.created_at,
            "library_versions": dict(self.library_versions),
            "config": to_jsonable(self.config.to_dict()),
            "noise_fingerprint": self.noise_fingerprint,
            "normalizer": {
                "mode": self.normalizer_mode,
                "target_max": self.normalizer_target_max,
                "feature_min": to_jsonable(self.feature_min),
                "feature_max": to_jsonable(self.feature_max),
                "num_features": self.num_features,
            },
            "fit": {
                "num_samples": self.num_samples,
                "num_runs": self.num_runs,
                "bucket_size": self.bucket_size,
                "compression_levels": list(self.levels),
            },
            "members": members,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ModelArtifact":
        """Decode and strictly validate a bundle payload."""
        if not isinstance(payload, Mapping):
            raise ArtifactCorruptError("model artifact root is not an object")
        fmt = _require(payload, "format", "artifact")
        if fmt != ARTIFACT_FORMAT:
            raise ArtifactCorruptError(
                f"not a quorum-repro model artifact (format={fmt!r})"
            )
        version = _require(payload, "schema_version", "artifact")
        if not isinstance(version, int):
            raise ArtifactCorruptError("schema_version must be an integer")
        if version != SCHEMA_VERSION:
            raise ArtifactVersionError(
                f"model artifact uses schema version {version}; this loader "
                f"supports version {SCHEMA_VERSION}"
            )
        try:
            config = QuorumConfig.from_dict(_require(payload, "config",
                                                     "artifact"))
        except (TypeError, ValueError) as error:
            raise ArtifactCorruptError(f"invalid config: {error}") from None

        normalizer = _require(payload, "normalizer", "artifact")
        fit = _require(payload, "fit", "artifact")
        num_features = _int_scalar(_require(normalizer, "num_features",
                                            "normalizer"), "num_features")
        feature_min = _float_array(_require(normalizer, "feature_min",
                                            "normalizer"),
                                   "normalizer.feature_min", (num_features,))
        feature_max = _float_array(_require(normalizer, "feature_max",
                                            "normalizer"),
                                   "normalizer.feature_max", (num_features,))
        levels = tuple(
            _int_scalar(level, "fit.compression_levels[*]")
            for level in _require(fit, "compression_levels", "fit")
        )
        if not levels:
            raise ArtifactCorruptError("fit.compression_levels is empty")
        num_samples = _int_scalar(_require(fit, "num_samples", "fit"),
                                  "fit.num_samples")
        if num_samples < 1:
            raise ArtifactCorruptError("fit.num_samples must be positive")

        raw_members = _require(payload, "members", "artifact")
        if not isinstance(raw_members, list) or not raw_members:
            raise ArtifactCorruptError("artifact holds no ensemble members")
        members: List[MemberArtifact] = []
        for position, raw in enumerate(raw_members):
            context = f"members[{position}]"
            if not isinstance(raw, Mapping):
                raise ArtifactCorruptError(f"{context} is not an object")
            buckets_raw = _require(raw, "buckets", context)
            if not isinstance(buckets_raw, list) or not buckets_raw:
                raise ArtifactCorruptError(f"{context}.buckets is empty")
            buckets = tuple(
                tuple(int(index) for index
                      in _int_array(bucket, f"{context}.buckets[{b}]"))
                for b, bucket in enumerate(buckets_raw)
            )
            num_buckets = len(buckets)
            # Buckets must partition the training samples exactly once: a
            # negative, out-of-range, or duplicated index would not fail
            # loudly at scoring time -- it would silently shift replay-mode
            # z-scores (Python negative indexing) or crash mid-request.
            flat = np.concatenate([np.asarray(bucket, dtype=int)
                                   for bucket in buckets])
            if (flat.shape[0] != num_samples
                    or not np.array_equal(np.sort(flat),
                                          np.arange(num_samples))):
                raise ArtifactCorruptError(
                    f"{context}.buckets is not a partition of the "
                    f"{num_samples} training samples"
                )
            reference_raw = _require(raw, "reference", context)
            reference: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
            for level in levels:
                level_raw = _require(reference_raw, str(level),
                                     f"{context}.reference")
                means = _float_array(
                    _require(level_raw, "bucket_means",
                             f"{context}.reference[{level}]"),
                    f"{context}.reference[{level}].bucket_means",
                    (num_buckets,))
                stds = _float_array(
                    _require(level_raw, "bucket_stds",
                             f"{context}.reference[{level}]"),
                    f"{context}.reference[{level}].bucket_stds",
                    (num_buckets,))
                reference[int(level)] = (means, stds)
            rng_state = _require(raw, "rng_state", context)
            if not isinstance(rng_state, Mapping):
                raise ArtifactCorruptError(f"{context}.rng_state is not an object")
            angles = _float_array(_require(raw, "angles", context),
                                  f"{context}.angles")
            expected_angles = 2 * config.num_qubits * config.num_layers
            if angles.shape != (expected_angles,):
                raise ArtifactDtypeError(
                    f"{context}.angles has shape {angles.shape}, expected "
                    f"({expected_angles},)"
                )
            selected = _int_array(_require(raw, "selected_features", context),
                                  f"{context}.selected_features")
            if (selected.size == 0 or selected.min() < 0
                    or selected.max() >= num_features):
                raise ArtifactCorruptError(
                    f"{context}.selected_features holds indices outside "
                    f"[0, {num_features})"
                )
            if np.unique(selected).size != selected.size:
                raise ArtifactCorruptError(
                    f"{context}.selected_features holds duplicate indices")
            if selected.size > config.features_per_circuit:
                raise ArtifactCorruptError(
                    f"{context}.selected_features holds {selected.size} "
                    f"indices but the register fits "
                    f"{config.features_per_circuit}"
                )
            member = MemberArtifact(
                member_index=_int_scalar(_require(raw, "member_index", context),
                                         f"{context}.member_index"),
                member_seed=_int_scalar(_require(raw, "member_seed", context),
                                        f"{context}.member_seed"),
                selected_features=selected,
                bucket_size=_int_scalar(_require(raw, "bucket_size", context),
                                        f"{context}.bucket_size"),
                buckets=buckets,
                angles=angles,
                rng_state=dict(rng_state),
                reference=reference,
            )
            # Restoring the RNG is the only consumer of rng_state, so proving
            # it restorable *now* keeps the contract that corrupt bundles fail
            # at load time, not on the first scoring request.
            member.restored_rng()
            members.append(member)

        # The member list and level sweep must agree with the stored config --
        # a truncated bundle would otherwise load cleanly and silently serve
        # scores from a smaller ensemble than the config claims.
        if len(members) != config.ensemble_groups:
            raise ArtifactCorruptError(
                f"artifact holds {len(members)} members but the stored config "
                f"says ensemble_groups={config.ensemble_groups}"
            )
        if levels != config.effective_compression_levels:
            raise ArtifactCorruptError(
                f"artifact levels {levels} disagree with the stored config's "
                f"compression sweep {config.effective_compression_levels}"
            )

        stored_fingerprint = payload.get("noise_fingerprint")
        expected_fingerprint = noise_fingerprint_hex(config)
        if stored_fingerprint != expected_fingerprint:
            raise ArtifactError(
                "noise-model fingerprint mismatch: the artifact was saved "
                f"under {stored_fingerprint!r} but this process derives "
                f"{expected_fingerprint!r} from the stored config -- the noise "
                "calibration changed between save and load"
            )

        versions = payload.get("library_versions") or {}
        return cls(
            config=config,
            normalizer_mode=str(_require(normalizer, "mode", "normalizer")),
            normalizer_target_max=normalizer.get("target_max"),
            feature_min=feature_min,
            feature_max=feature_max,
            num_features=num_features,
            num_samples=num_samples,
            num_runs=_int_scalar(_require(fit, "num_runs", "fit"),
                                 "fit.num_runs"),
            bucket_size=_int_scalar(_require(fit, "bucket_size", "fit"),
                                    "fit.bucket_size"),
            levels=levels,
            members=members,
            noise_fingerprint=stored_fingerprint,
            library_versions={str(k): str(v) for k, v in versions.items()},
            created_at=str(payload.get("created_at", "")),
            schema_version=version,
        )


def save_model(model: Union[QuorumDetector, ModelArtifact],
               path: Union[str, Path]) -> Path:
    """Write a fitted detector (or prebuilt artifact) as one JSON bundle."""
    artifact = (model if isinstance(model, ModelArtifact)
                else ModelArtifact.from_detector(model))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(artifact.to_payload(), handle, indent=1)
        handle.write("\n")
    return path


def load_model(path: Union[str, Path]) -> ModelArtifact:
    """Read a bundle written by :func:`save_model`, validating strictly.

    Raises
    ------
    ArtifactCorruptError
        Unreadable file, invalid JSON, wrong format marker, or missing keys.
    ArtifactVersionError
        The bundle's schema version differs from :data:`SCHEMA_VERSION`.
    ArtifactDtypeError
        A stored array holds the wrong dtype or shape.
    ArtifactError
        The re-derived noise-model fingerprint does not match the stored one.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ArtifactCorruptError(f"cannot read model artifact: {error}") from None
    except UnicodeDecodeError as error:
        raise ArtifactCorruptError(
            f"model artifact is not valid UTF-8: {error}") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ArtifactCorruptError(
            f"model artifact is not valid JSON: {error}") from None
    try:
        return ModelArtifact.from_payload(payload)
    except ArtifactError:
        raise
    except (TypeError, KeyError, AttributeError, IndexError) as error:
        # Backstop for structurally bizarre payloads (e.g. a scalar where an
        # object is expected deep in a member): the strict-error contract says
        # every corrupt bundle surfaces as an ArtifactError, never a raw
        # traceback.
        raise ArtifactCorruptError(
            f"model artifact is structurally invalid: "
            f"{type(error).__name__}: {error}") from None
